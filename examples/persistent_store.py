"""Persist a labeled document and query it after reload — no re-labeling.

Demonstrates the storage layer: a document is labeled once, saved as a
bundle (XML + bit-exact label stream + scheme config), reloaded in a
"new process", queried with both the general engine and the twig
evaluator, and updated — all without ever re-labeling the persisted
nodes.

Run:  python examples/persistent_store.py
"""

import tempfile
from pathlib import Path

from repro.datasets import build_play
from repro.labeling import make_scheme
from repro.query import QueryEngine, evaluate_twig
from repro.storage import load_labeled, save_labeled
from repro.updates import UpdateEngine
from repro.xmltree import Node, merge_adjacent_text


def main() -> None:
    # --- "first process": build, label, save --------------------------
    document = build_play("archive", 2_000, seed=12)
    merge_adjacent_text(document.root)
    labeled = make_scheme("V-CDBS-Containment").label_document(document)
    bundle = Path(tempfile.gettempdir()) / "archive.rpro"
    save_labeled(labeled, bundle)
    print(
        f"saved {labeled.node_count()} nodes "
        f"({labeled.total_label_bits() // 8:,} label bytes) to {bundle}"
    )

    # --- "second process": reload and use -----------------------------
    restored = load_labeled(bundle)
    engine = QueryEngine(restored)
    speeches = engine.count("//act/scene/speech")
    print(f"reloaded; //act/scene/speech matches {speeches} speeches")

    # Twig evaluation agrees with the general engine.
    twig_query = "//scene[./title]/speech[./speaker]/line"
    general = engine.evaluate(twig_query)
    twig = evaluate_twig(restored, twig_query)
    print(
        f"twig evaluator: {len(twig)} lines "
        f"(general engine agrees: {[id(n) for n in twig] == [id(n) for n in general]})"
    )

    # The reloaded labels are first-class: dynamic updates still work.
    updates = UpdateEngine(restored, with_storage=False)
    act1 = restored.document.elements_by_tag("act")[0]
    result = updates.insert_child(act1, Node.element("scene"), index=1)
    print(
        f"inserted a scene after reload: re-labeled "
        f"{result.stats.relabeled_nodes} nodes (CDBS keeps its promise)"
    )

    bundle.unlink()


if __name__ == "__main__":
    main()
