"""Quickstart: label an XML document, query it, update it — no re-labels.

Run:  python examples/quickstart.py
"""

from repro.labeling import make_scheme
from repro.query import QueryEngine
from repro.updates import UpdateEngine
from repro.xmltree import Node, parse_document, serialize_document


def main() -> None:
    # 1. Parse a document with the built-in parser.
    document = parse_document(
        """
        <playlist name="road trip">
          <track><title>Opening</title><artist>A</artist></track>
          <track><title>Middle</title><artist>B</artist></track>
          <track><title>Closing</title><artist>C</artist></track>
        </playlist>
        """
    )
    print(f"parsed {document.node_count()} nodes")

    # 2. Label it with the paper's headline scheme: V-CDBS containment.
    scheme = make_scheme("V-CDBS-Containment")
    labeled = scheme.label_document(document)
    for track in document.elements_by_tag("track"):
        label = labeled.label_of(track)
        print(
            f"  <track> {track.text_content()[:12]!r:16} "
            f"start={label.start.to01():>10} end={label.end.to01():>10}"
        )

    # 3. Query through labels only.
    engine = QueryEngine(labeled)
    titles = engine.evaluate("/playlist/track/title")
    print("titles:", [t.text_content() for t in titles])

    # 4. Insert a track between the first two — zero nodes re-labeled
    #    (Theorem 3.1: a middle code always exists).
    updates = UpdateEngine(labeled, with_storage=False)
    new_track = Node.element("track")
    new_track.append_child(Node.element("title")).append_child(
        Node.text("Surprise")
    )
    result = updates.insert_after(document.elements_by_tag("track")[0], new_track)
    print(
        f"inserted {result.stats.inserted_nodes} nodes, "
        f"re-labeled {result.stats.relabeled_nodes} existing nodes"
    )

    # 5. Order is intact — the query engine sees the new document order.
    titles = engine.evaluate("/playlist/track/title")
    print("titles now:", [t.text_content() for t in titles])

    # 6. Serialize the updated document back to XML.
    print(serialize_document(document, pretty=True))


if __name__ == "__main__":
    main()
