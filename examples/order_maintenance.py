"""Order maintenance beyond XML: CDBS/QED as fractional-indexing keys.

Property 5.1 of the paper: the encoding is orthogonal to labeling
schemes and applies to *any* application that must keep items ordered
under insertion — here, a collaborative task list whose rank keys live
in a key-value store that can only compare strings bytewise.

The demo also shows the one failure mode (Section 6): pathological
skewed insertion overflows a CDBS length field, while the QED backend
absorbs it forever.

Run:  python examples/order_maintenance.py
"""

from repro.core.orderkeys import OrderKeyFactory
from repro.errors import LengthFieldOverflow


def show(store: dict) -> None:
    for key_text in sorted(store):
        print(f"  {key_text:>14}  {store[key_text]}")


def main() -> None:
    factory = OrderKeyFactory("cdbs", max_code_bits=32)

    # Bulk-create a ranked list; str(key) is safe to persist anywhere
    # that sorts strings bytewise.
    tasks = ["write intro", "run experiments", "draft figures"]
    keys = factory.initial(len(tasks))
    store = {str(k): task for k, task in zip(keys, tasks)}
    print("initial list:")
    show(store)

    # Insert between two neighbours — no existing key changes.
    middle = factory.between(keys[0], keys[1])
    store[str(middle)] = "review related work"
    print("\nafter inserting between items 1 and 2:")
    show(store)

    # Move-to-front and append are just boundary insertions.
    store[str(factory.before(keys[0]))] = "URGENT: fix build"
    store[str(factory.after(keys[-1]))] = "submit"
    print("\nafter front/back insertions:")
    show(store)

    # Pathological skew: always insert at the same spot.  The CDBS
    # backend's length field eventually overflows...
    left, right = keys[0], keys[1]
    count = 0
    try:
        while True:
            right = factory.between(left, right)
            count += 1
    except LengthFieldOverflow as error:
        print(f"\nCDBS overflowed after {count} skewed inserts: {error}")

    # ... while QED (Section 6) never does.
    qed = OrderKeyFactory("qed")
    left, right = qed.initial(2)
    for _ in range(10_000):
        right = qed.between(left, right)
    print(
        f"QED absorbed 10,000 skewed inserts; final key is "
        f"{right.storage_bits} bits and still sorts correctly: "
        f"{left < right}"
    )


if __name__ == "__main__":
    main()
