"""Host a labeled document in a (miniature) relational database.

The labeling schemes the paper studies were designed so XML could live
in an RDBMS: shred the nodes into a table whose label columns are
indexable, and XPath axes compile to index operations.  This example
shreds Hamlet under three scheme families and shows the *physical
plans* each one admits — the architectural reason containment labels
(and hence CDBS) are range-scan friendly while Prime must probe.

Run:  python examples/relational_hosting.py
"""

from repro.datasets import build_hamlet
from repro.labeling import make_scheme
from repro.obs import OBS
from repro.relational import RelationalQueryEngine, shred

QUERIES = {
    "descendant sweep": "/play//line",
    "child navigation": "/play/act/scene/speech",
    "twig filter": "//scene[./title]/speech",
}


def main() -> None:
    document = build_hamlet()
    for scheme_name in ("V-CDBS-Containment", "QED-Prefix", "Prime"):
        labeled = make_scheme(scheme_name).label_document(document)
        with OBS.span("hosting.shred", op="shred") as shredding:
            engine = RelationalQueryEngine(shred(labeled))
        shred_ms = 1000 * shredding.seconds
        print(f"\n=== {scheme_name} (shredded in {shred_ms:.0f} ms) ===")
        for title, query in QUERIES.items():
            with OBS.span("hosting.query", op="query") as timing:
                count = engine.count(query)
            elapsed = 1000 * timing.seconds
            stats = engine.stats
            print(
                f"  {title:18s} {count:>5} rows in {elapsed:6.1f} ms | "
                f"plan: {stats.range_scans} range scans, "
                f"{stats.point_lookups} point lookups, "
                f"{stats.table_scans} table scans, "
                f"{stats.rows_examined} rows examined"
            )


if __name__ == "__main__":
    main()
