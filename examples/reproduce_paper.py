"""Reproduce every table and figure of the paper in one run.

A thin convenience wrapper over ``python -m repro.bench``; prints the
paper's artifacts at laptop scale (pass ``--full`` for the full
Table 2 corpus sizes — slow in pure Python).

Run:  python examples/reproduce_paper.py [--full] [--only E1 E5 ...]
"""

import sys

from repro.bench.__main__ import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
