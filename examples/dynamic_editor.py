"""A dynamic XML editor session: the paper's motivating workload.

Simulates an editor working on a Shakespeare-sized play while the
document stays labeled and queryable: scene insertions, speech edits,
deletions — comparing what each labeling scheme pays per edit.  This is
Section 7.3/7.4 of the paper as a user-facing scenario.

Run:  python examples/dynamic_editor.py
"""

from repro.datasets import build_hamlet
from repro.labeling import make_scheme
from repro.obs import OBS
from repro.query import QueryEngine
from repro.updates import UpdateEngine
from repro.xmltree import Node


def make_speech(speaker: str, lines: list[str]) -> Node:
    speech = Node.element("speech")
    speech.append_child(Node.element("speaker")).append_child(Node.text(speaker))
    for line in lines:
        speech.append_child(Node.element("line")).append_child(Node.text(line))
    return speech


def editing_session(scheme_name: str) -> None:
    document = build_hamlet()
    scheme = make_scheme(scheme_name)
    labeled = scheme.label_document(document)
    engine = UpdateEngine(labeled, with_storage=True)
    queries = QueryEngine(labeled)

    print(f"\n=== editing with {scheme_name} ===")
    # Observability on for the session: every edit's cost units land in
    # the ledger, attributed to the op (insert/delete) that paid them.
    with OBS.capture(), OBS.span("editor.session") as session:
        # 1. The editor drafts a new speech at the top of act 3, scene 1.
        scene = queries.evaluate("/play/act[3]/scene[1]")[0]
        draft = make_speech(
            "HAMLET", ["To be, or not to be, that is the question"]
        )
        first = engine.insert_child(scene, draft, index=1)

        # 2. Revises it: adds a follow-up speech right after.
        follow = make_speech(
            "HAMLET", ["Whether 'tis nobler in the mind to suffer"]
        )
        engine.insert_after(draft, follow)

        # 3. Deletes a stage direction somewhere later.
        stagedirs = queries.evaluate("/play/act[4]//stagedir")
        if stagedirs:
            engine.delete(stagedirs[0])

        # 4. Inserts 25 rapid-fire line edits at the same spot (skew!).
        for i in range(25):
            engine.insert_child(
                draft, Node.element("line"), index=len(draft.children)
            )

    totals = engine.totals
    ledger = OBS.ledger
    print(
        f"  28 edits in {session.seconds * 1000:.1f} ms wall "
        f"(modelled I/O included per-op)"
    )
    print(
        f"  nodes inserted={totals.inserted_nodes} deleted={totals.deleted_nodes} "
        f"re-labeled={totals.relabeled_nodes} sc-recomputed={totals.sc_recomputed}"
    )
    print(
        f"  ledger: {ledger.total('middle.bits_generated')} middle bits, "
        f"{ledger.total('pager.pages_written')} pages written, "
        f"{ledger.total('orderindex.rotations')} treap rotations "
        f"({ledger.op_total('insert', 'pager.pages_written')} of those "
        f"page writes from inserts)"
    )
    # The document is still fully queryable, in order.
    speeches = queries.evaluate("/play/act[3]/scene[1]/speech")
    speakers = [s.children[0].text_content() for s in speeches[:3]]
    print(f"  act 3 scene 1 now opens with speeches by: {speakers}")


def main() -> None:
    for scheme_name in (
        "V-CDBS-Containment",  # the paper's scheme: zero re-labels
        "QED-Prefix",          # dynamic, overflow-free
        "V-Binary-Containment",  # the baseline that re-labels thousands
        "Prime",               # re-labels nothing but recomputes SC values
    ):
        editing_session(scheme_name)


if __name__ == "__main__":
    main()
