"""The exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    InvalidCodeError,
    LengthFieldOverflow,
    NotOrderedError,
    PrecisionExhausted,
    RelabelRequired,
    ReproError,
    UnsupportedOperationError,
    XMLParseError,
    XPathSyntaxError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidCodeError("x"),
            NotOrderedError("x"),
            RelabelRequired("x"),
            LengthFieldOverflow(10, 7),
            PrecisionExhausted(1.0, 1.0000001),
            XMLParseError("bad", 3),
            XPathSyntaxError("bad"),
            UnsupportedOperationError("x"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_relabel_triggers(self):
        assert isinstance(LengthFieldOverflow(10, 7), RelabelRequired)
        assert isinstance(PrecisionExhausted(1.0, 2.0), RelabelRequired)
        assert not isinstance(InvalidCodeError("x"), RelabelRequired)

    def test_value_error_compat(self):
        # Callers used to ValueError semantics can still catch these.
        assert isinstance(InvalidCodeError("x"), ValueError)
        assert isinstance(XMLParseError("bad", 0), ValueError)
        assert isinstance(XPathSyntaxError("bad"), ValueError)


class TestPayloads:
    def test_overflow_fields(self):
        error = LengthFieldOverflow(300, 255)
        assert error.code_bits == 300
        assert error.max_bits == 255
        assert "300" in str(error)

    def test_precision_fields(self):
        error = PrecisionExhausted(1.5, 1.5000001)
        assert error.left == 1.5
        assert "1.5" in str(error)

    def test_xml_parse_position(self):
        error = XMLParseError("unexpected", 42)
        assert error.position == 42
        assert "offset 42" in str(error)
