"""FaultRegistry: arming, hit counting, batch ordinals, observability."""

from __future__ import annotations

import pytest

from repro.errors import PersistentFault, TransientFault
from repro.faults import FAULTS, TRANSIENT, FaultPlan
from repro.obs import OBS


class TestArming:
    def test_disabled_by_default_and_hits_are_free(self):
        assert not FAULTS.enabled
        FAULTS.hit("pager.page_write", count=1000)  # no plan: no-op
        assert FAULTS.hits_of("pager.page_write") == 0

    def test_armed_context_disarms_on_exit(self):
        with FAULTS.armed(FaultPlan.single("label.write", at=99)):
            assert FAULTS.enabled
        assert not FAULTS.enabled
        assert FAULTS.plan is None

    def test_armed_context_disarms_when_fault_propagates(self):
        with pytest.raises(PersistentFault):
            with FAULTS.armed(FaultPlan.single("label.write", at=1)):
                FAULTS.hit("label.write")
        assert not FAULTS.enabled

    def test_arming_resets_site_counters(self):
        with FAULTS.armed(FaultPlan.single("label.write", at=5)):
            FAULTS.hit("label.write", count=3)
            assert FAULTS.hits_of("label.write") == 3
        with FAULTS.armed(FaultPlan.single("label.write", at=5)):
            assert FAULTS.hits_of("label.write") == 0


class TestHits:
    def test_fires_at_exact_ordinal(self):
        with FAULTS.armed(FaultPlan.single("middle.assign", at=3)):
            FAULTS.hit("middle.assign")
            FAULTS.hit("middle.assign")
            with pytest.raises(PersistentFault):
                FAULTS.hit("middle.assign")

    def test_unarmed_sites_are_counted_but_never_raise(self):
        with FAULTS.armed(FaultPlan.single("label.write", at=1)):
            FAULTS.hit("pager.page_write", count=7)
            assert FAULTS.hits_of("pager.page_write") == 7

    def test_batch_advances_counter_to_raising_ordinal(self):
        with FAULTS.armed(FaultPlan.single("pager.page_write", at=3)):
            with pytest.raises(PersistentFault):
                FAULTS.hit("pager.page_write", count=10)
            # the counter stops at the raising hit, not the batch end,
            # so a retried batch sees fresh ordinals
            assert FAULTS.hits_of("pager.page_write") == 3

    def test_transient_clears_for_a_retried_batch(self):
        plan = FaultPlan.single(
            "pager.page_write", at=2, kind=TRANSIENT, fires=1
        )
        with FAULTS.armed(plan):
            with pytest.raises(TransientFault):
                FAULTS.hit("pager.page_write", count=4)
            FAULTS.hit("pager.page_write", count=4)  # retry succeeds

    def test_persistent_keeps_firing_on_retry(self):
        with FAULTS.armed(FaultPlan.single("pager.page_write", at=2)):
            for _ in range(3):
                with pytest.raises(PersistentFault):
                    FAULTS.hit("pager.page_write", count=4)

    def test_injected_faults_are_counted(self):
        with OBS.capture():
            with FAULTS.armed(FaultPlan.single("label.write", at=1)):
                with pytest.raises(PersistentFault):
                    FAULTS.hit("label.write")
            assert OBS.counter("faults.injected").value == 1
