"""Safety net: never leak an armed fault plan into another test."""

import pytest

from repro.faults import FAULTS


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()
