"""CRASH fault points: SimulatedCrash semantics and serialization."""

from __future__ import annotations

import pytest

from repro.errors import InjectedFault, SimulatedCrash, UpdateAborted
from repro.faults import CRASH, WAL_CRASH_SITES, FaultPlan, FaultPoint


class TestCrashPoint:
    def test_crash_fires_forever_from_ordinal(self):
        point = FaultPoint("wal.fsync", at=2, kind=CRASH)
        assert point.error_for(1) is None
        assert isinstance(point.error_for(2), SimulatedCrash)
        assert isinstance(point.error_for(99), SimulatedCrash)

    def test_crash_is_an_injected_fault_but_not_an_abort(self):
        error = FaultPoint("wal.append", kind=CRASH).error_for(1)
        assert isinstance(error, InjectedFault)
        assert not isinstance(error, UpdateAborted)

    def test_plan_crash_constructor(self):
        plan = FaultPlan.crash("wal.checkpoint_write", at=3, note="cell")
        point = plan.point_for("wal.checkpoint_write")
        assert point is not None
        assert point.kind == CRASH
        assert point.at == 3

    def test_crash_round_trips_through_dict(self):
        plan = FaultPlan.crash("wal.checkpoint_truncate", at=2)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_wal_crash_sites_cover_the_protocol(self):
        assert WAL_CRASH_SITES == (
            "wal.append",
            "wal.fsync",
            "wal.checkpoint_write",
            "wal.checkpoint_truncate",
        )

    def test_unknown_kind_still_rejected(self):
        with pytest.raises(ValueError):
            FaultPoint("wal.fsync", kind="explode")
