"""FaultPoint / FaultPlan: validation, firing semantics, serialization."""

from __future__ import annotations

import pytest

from repro.errors import PersistentFault, TransientFault
from repro.faults import (
    KNOWN_SITES,
    PERSISTENT,
    TRANSIENT,
    FaultPlan,
    FaultPoint,
)


class TestFaultPoint:
    def test_ordinal_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPoint("pager.page_write", at=0)

    def test_kind_must_be_known(self):
        with pytest.raises(ValueError):
            FaultPoint("pager.page_write", kind="flaky")

    def test_fires_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPoint("pager.page_write", fires=0)

    def test_persistent_fires_forever_from_ordinal(self):
        point = FaultPoint("label.write", at=3, kind=PERSISTENT)
        assert point.error_for(1) is None
        assert point.error_for(2) is None
        assert isinstance(point.error_for(3), PersistentFault)
        assert isinstance(point.error_for(100), PersistentFault)

    def test_transient_clears_after_fires_window(self):
        point = FaultPoint("label.write", at=2, kind=TRANSIENT, fires=2)
        assert point.error_for(1) is None
        assert isinstance(point.error_for(2), TransientFault)
        assert isinstance(point.error_for(3), TransientFault)
        assert point.error_for(4) is None

    def test_dict_round_trip(self):
        point = FaultPoint("middle.assign", at=5, kind=TRANSIENT, fires=3)
        assert FaultPoint.from_dict(point.to_dict()) == point

    def test_from_dict_defaults(self):
        point = FaultPoint.from_dict({"site": "relabel.step"})
        assert point == FaultPoint("relabel.step", at=1, kind=TRANSIENT)


class TestFaultPlan:
    def test_single(self):
        plan = FaultPlan.single("pager.page_write", at=4)
        assert plan.point_for("pager.page_write").at == 4
        assert plan.point_for("pager.page_write").kind == PERSISTENT
        assert plan.point_for("label.write") is None

    def test_rejects_duplicate_sites(self):
        with pytest.raises(ValueError):
            FaultPlan(
                points=(
                    FaultPoint("label.write"),
                    FaultPoint("label.write", at=2),
                )
            )

    def test_seeded_is_deterministic(self):
        assert FaultPlan.seeded(42) == FaultPlan.seeded(42)
        plans = {FaultPlan.seeded(seed).points for seed in range(64)}
        assert len(plans) > 1  # the seed actually varies the plan

    def test_seeded_stays_inside_known_sites(self):
        for seed in range(32):
            plan = FaultPlan.seeded(seed, max_at=8)
            (point,) = plan.points
            assert point.site in KNOWN_SITES
            assert 1 <= point.at <= 8

    def test_dict_round_trip(self):
        plan = FaultPlan.seeded(7, kind=TRANSIENT)
        restored = FaultPlan.from_dict(plan.to_dict())
        assert restored == plan
        assert restored.seed == 7

    def test_from_dict_of_empty_payload(self):
        plan = FaultPlan.from_dict({})
        assert plan.points == ()
        assert plan.seed is None
