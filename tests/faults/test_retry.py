"""RetryPolicy math and the page store's bounded transient retry."""

from __future__ import annotations

import pytest

from repro.errors import TransientFault, UpdateAborted
from repro.faults import DEFAULT_RETRY_POLICY, FAULTS, TRANSIENT, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.labeling import make_scheme
from repro.obs import OBS
from repro.updates import UpdateEngine
from repro.xmltree import Node, parse_document


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_seconds=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_base_seconds=0.01, backoff_factor=3.0
        )
        assert policy.backoff_seconds(1) == pytest.approx(0.01)
        assert policy.backoff_seconds(2) == pytest.approx(0.03)
        assert policy.backoff_seconds(3) == pytest.approx(0.09)
        with pytest.raises(ValueError):
            policy.backoff_seconds(0)

    def test_total_backoff(self):
        policy = RetryPolicy(backoff_base_seconds=0.001, backoff_factor=2.0)
        assert policy.total_backoff_seconds(3) == pytest.approx(0.007)
        assert policy.total_backoff_seconds(0) == 0

    def test_default_policy(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 3


def build_engine():
    doc = parse_document("<r><a><b/><c/></a><d/></r>")
    labeled = make_scheme("V-CDBS-Containment").label_document(doc)
    return UpdateEngine(labeled, with_storage=True), doc


class TestPageStoreRetry:
    def test_blip_is_absorbed_and_costed(self):
        """A short transient burst commits the op after a modeled backoff."""
        engine, doc = build_engine()
        plan = FaultPlan.single(
            "pager.page_write", at=1, kind=TRANSIENT, fires=1
        )
        with OBS.capture():
            with FAULTS.armed(plan):
                result = engine.insert_before(
                    doc.root.children[1], Node.element("x")
                )
            assert OBS.counter("retry.attempts").value == 1
            assert OBS.counter("txn.rollbacks").value == 0
        assert doc.root.children[1].name == "x"
        backoff = engine.store.pages.retry_backoff_seconds
        assert backoff == pytest.approx(
            DEFAULT_RETRY_POLICY.backoff_seconds(1)
        )
        # the modeled delay is folded into the op's I/O time
        assert result.io_seconds >= backoff

    def test_exhausted_retries_abort_the_transaction(self):
        engine, doc = build_engine()
        plan = FaultPlan.single(
            "pager.page_write", at=1, kind=TRANSIENT, fires=50
        )
        before = [child.name for child in doc.root.children]
        with FAULTS.armed(plan):
            with pytest.raises(UpdateAborted) as excinfo:
                engine.insert_before(doc.root.children[1], Node.element("x"))
        assert isinstance(excinfo.value.__cause__, TransientFault)
        assert [child.name for child in doc.root.children] == before

    def test_custom_policy_bounds_attempts(self):
        doc = parse_document("<r><a/><b/></r>")
        labeled = make_scheme("V-CDBS-Containment").label_document(doc)
        engine = UpdateEngine(labeled, with_storage=True)
        engine.store.pages.retry = RetryPolicy(max_attempts=5)
        plan = FaultPlan.single(
            "pager.page_write", at=1, kind=TRANSIENT, fires=4
        )
        with OBS.capture():
            with FAULTS.armed(plan):
                engine.insert_before(doc.root.children[1], Node.element("x"))
            assert OBS.counter("retry.attempts").value == 4
