"""XmlStore: the integrated front door."""

from __future__ import annotations

import pytest

from repro.store import StoreError, XmlStore
from repro.xmltree import Node


@pytest.fixture()
def store() -> XmlStore:
    s = XmlStore(scheme="V-CDBS-Containment")
    s.add_document("<play><act><scene/></act><act/></play>", name="p1")
    s.add_document("<play><act/></play>", name="p2")
    return s


class TestDocuments:
    def test_add_and_list(self, store):
        assert store.document_names() == ["p1", "p2"]
        assert len(store) == 2
        assert list(store) == ["p1", "p2"]

    def test_duplicate_name_rejected(self, store):
        with pytest.raises(StoreError):
            store.add_document("<x/>", name="p1")

    def test_unknown_document(self, store):
        with pytest.raises(StoreError):
            store.document("nope")

    def test_remove(self, store):
        store.remove_document("p2")
        assert store.document_names() == ["p1"]

    def test_add_prebuilt_document(self):
        from repro.xmltree import parse_document

        s = XmlStore()
        s.add_document(parse_document("<r/>", name="mine"))
        assert s.document_names() == ["mine"]


class TestQueries:
    def test_query_across_store(self, store):
        assert store.count("/play/act") == 3

    def test_query_single_document(self, store):
        assert store.count("/play/act", document="p1") == 2
        assert store.count("/play/act", document="p2") == 1

    def test_query_unknown_document(self, store):
        with pytest.raises(StoreError):
            store.query("/play", document="zzz")


class TestUpdates:
    def test_insert_child(self, store):
        result = store.insert_xml(
            "/play/act/scene", "<speech><line>hi</line></speech>"
        )
        assert result.stats.inserted_nodes == 3
        assert store.count("//speech/line") == 1
        assert store.totals.relabeled_nodes == 0

    def test_insert_before_and_after(self, store):
        acts = store.query("/play/act", document="p1")
        store.insert_xml(acts[0], "<prologue/>", position="before")
        store.insert_xml(acts[-1], "<epilogue/>", position="after")
        names = [c.name for c in store.document("p1").root.children]
        assert names == ["prologue", "act", "act", "epilogue"]

    def test_insert_bad_position(self, store):
        with pytest.raises(StoreError):
            store.insert_xml("/play/act[1]", "<x/>", position="inside")

    def test_target_query_must_be_unique(self, store):
        with pytest.raises(StoreError):
            store.insert_xml("/play/act", "<x/>")  # 3 matches
        with pytest.raises(StoreError):
            store.insert_xml("//nothing", "<x/>")

    def test_delete(self, store):
        store.delete("/play/act/scene")
        assert store.count("//scene") == 0
        assert store.totals.deleted_nodes == 1

    def test_move(self, store):
        acts = store.query("/play/act", document="p1")
        store.move(acts[1], before=acts[0])
        first = store.document("p1").root.children[0]
        assert not first.children  # the empty act moved to the front

    def test_move_across_documents_rejected(self, store):
        act_p1 = store.query("/play/act", document="p1")[0]
        act_p2 = store.query("/play/act", document="p2")[0]
        with pytest.raises(StoreError):
            store.move(act_p2, before=act_p1)

    def test_foreign_node_rejected(self, store):
        with pytest.raises(StoreError):
            store.delete(Node.element("alien"))

    def test_updates_visible_in_export(self, store):
        store.insert_xml("/play/act/scene", "<speech/>")
        assert "<speech/>" in store.export_xml("p1")


class TestStats:
    def test_stats(self, store):
        stats = store.stats()
        assert stats["documents"] == 2
        assert stats["nodes"] == 6
        assert stats["scheme"] == "V-CDBS-Containment"
        assert stats["label_bits"] > 0

    def test_static_scheme_counts_relabels(self):
        s = XmlStore(scheme="V-Binary-Containment")
        s.add_document("<r><a/><b/></r>", name="d")
        s.insert_xml("/r/a", "<n/>", position="before")
        assert s.stats()["relabeled_nodes"] > 0


class TestPersistence:
    def test_save_load_roundtrip(self, store, tmp_path):
        store.insert_xml("/play/act/scene", "<speech><line>x</line></speech>")
        store.save(tmp_path / "bundles")
        reloaded = XmlStore.load(tmp_path / "bundles")
        assert sorted(reloaded.document_names()) == ["p1", "p2"]
        assert reloaded.scheme_name == "V-CDBS-Containment"
        assert reloaded.count("//speech/line") == 1
        # Reloaded stores keep absorbing updates without re-labels.
        reloaded.insert_xml("//speech", "<line>y</line>")
        assert reloaded.totals.relabeled_nodes == 0

    def test_load_empty_directory(self, tmp_path):
        with pytest.raises(StoreError):
            XmlStore.load(tmp_path)

    def test_load_mixed_schemes_rejected(self, tmp_path):
        first = XmlStore(scheme="V-CDBS-Containment")
        first.add_document("<r/>", name="a")
        first.save(tmp_path)
        second = XmlStore(scheme="QED-Prefix")
        second.add_document("<r/>", name="b")
        second.save(tmp_path)
        with pytest.raises(StoreError):
            XmlStore.load(tmp_path)

    @pytest.mark.parametrize(
        "scheme", ["QED-Prefix", "Prime", "F-CDBS-Containment"]
    )
    def test_other_schemes_roundtrip(self, scheme, tmp_path):
        s = XmlStore(scheme=scheme)
        s.add_document("<r><a>x</a><b/></r>", name="doc")
        s.save(tmp_path)
        reloaded = XmlStore.load(tmp_path)
        assert reloaded.count("/r/a") == 1
