"""Containment scheme specifics: update paths and Table 4 semantics."""

from __future__ import annotations

import pytest

from repro.labeling import make_scheme
from repro.labeling.containment import (
    qed_containment,
    v_binary_containment,
    v_cdbs_containment,
)
from repro.xmltree import Node, parse_document


@pytest.fixture()
def doc():
    return parse_document("<r><a><b/><c/></a><d/></r>")


class TestBulkLabeling:
    def test_intervals_nest(self, doc):
        scheme = v_binary_containment()
        labeled = scheme.label_document(doc)
        root_label = labeled.label_of(doc.root)
        for node in doc.root.descendants():
            assert scheme.is_ancestor(root_label, labeled.label_of(node))

    def test_levels(self, doc):
        scheme = v_binary_containment()
        labeled = scheme.label_document(doc)
        assert labeled.label_of(doc.root).level == 1
        a = doc.root.children[0]
        assert labeled.label_of(a).level == 2
        assert labeled.label_of(a.children[0]).level == 3

    def test_integer_starts_are_preorder(self, doc):
        scheme = v_binary_containment()
        labeled = scheme.label_document(doc)
        starts = [labeled.label_of(n).start for n in doc.pre_order()]
        assert starts == sorted(starts)

    def test_uses_2n_values(self, doc):
        scheme = v_binary_containment()
        labeled = scheme.label_document(doc)
        values = set()
        for label in labeled.labels.values():
            values.add(label.start)
            values.add(label.end)
        assert values == set(range(1, 2 * doc.node_count() + 1))


class TestDynamicInsert:
    def test_cdbs_insert_no_relabel(self, doc):
        scheme = v_cdbs_containment()
        labeled = scheme.label_document(doc)
        target_parent = doc.root.children[0]
        stats = scheme.insert_subtree(labeled, target_parent, 1, Node.element("x"))
        assert stats.relabeled_nodes == 0
        assert stats.inserted_nodes == 1
        assert stats.labels_written == 1
        assert stats.neighbor_bits_modified == 1

    def test_qed_insert_two_bits(self, doc):
        scheme = qed_containment()
        labeled = scheme.label_document(doc)
        stats = scheme.insert_subtree(labeled, doc.root, 0, Node.element("x"))
        assert stats.neighbor_bits_modified == 2

    def test_insert_subtree_labels_all_nodes(self, doc):
        scheme = v_cdbs_containment()
        labeled = scheme.label_document(doc)
        subtree = Node.element("s")
        child = subtree.append_child(Node.element("t"))
        child.append_child(Node.text("deep"))
        stats = scheme.insert_subtree(labeled, doc.root, 1, subtree)
        assert stats.inserted_nodes == 3
        # The new subtree nests correctly inside the root interval.
        assert scheme.is_parent(
            labeled.label_of(doc.root), labeled.label_of(subtree)
        )
        assert scheme.is_parent(
            labeled.label_of(subtree), labeled.label_of(child)
        )

    def test_insert_at_every_gap(self):
        doc = parse_document("<r><a/><b/><c/></r>")
        scheme = v_cdbs_containment()
        labeled = scheme.label_document(doc)
        for position, index in enumerate((0, 2, 4, 6)):
            stats = scheme.insert_subtree(
                labeled, doc.root, index, Node.element(f"n{position}")
            )
            assert stats.relabeled_nodes == 0
        names = [c.name for c in doc.root.children]
        assert names == ["n0", "a", "n1", "b", "n2", "c", "n3"]
        keys = [
            scheme.order_key(labeled.label_of(n))
            for n in labeled.nodes_in_order
        ]
        assert keys == sorted(keys)

    def test_unknown_parent_rejected(self, doc):
        scheme = v_cdbs_containment()
        labeled = scheme.label_document(doc)
        with pytest.raises(ValueError):
            scheme.insert_subtree(labeled, Node.element("alien"), 0, Node.element("x"))


class TestRelabelFallback:
    def test_vbinary_insert_counts_paper_rule(self, doc):
        """Re-labels = ancestors + everything after, in document order."""
        scheme = v_binary_containment()
        labeled = scheme.label_document(doc)
        a = doc.root.children[0]
        # Insert before <c/> (a's second child): ancestors {r, a} plus
        # following nodes {c, d} -> 4 re-labels.
        stats = scheme.insert_subtree(labeled, a, 1, Node.element("x"))
        assert stats.relabeled_nodes == 4
        assert stats.inserted_nodes == 1

    def test_vbinary_append_at_very_end_no_relabel(self, doc):
        scheme = v_binary_containment()
        labeled = scheme.label_document(doc)
        # Inserting as the root's last child: only the root's own end
        # value moves -> exactly 1 re-label (the root ancestor).
        stats = scheme.insert_subtree(
            labeled, doc.root, len(doc.root.children), Node.element("x")
        )
        assert stats.relabeled_nodes == 1

    def test_relabel_restores_invariants(self, doc):
        scheme = v_binary_containment()
        labeled = scheme.label_document(doc)
        scheme.insert_subtree(labeled, doc.root, 0, Node.element("x"))
        for node in doc.root.descendants():
            assert scheme.is_ancestor(
                labeled.label_of(doc.root), labeled.label_of(node)
            )
        keys = [
            scheme.order_key(labeled.label_of(n))
            for n in labeled.nodes_in_order
        ]
        assert keys == sorted(keys)


class TestDelete:
    def test_delete_drops_labels(self, doc):
        scheme = v_cdbs_containment()
        labeled = scheme.label_document(doc)
        victim = doc.root.children[0]
        count_before = len(labeled.labels)
        stats = scheme.delete_subtree(labeled, victim)
        assert stats.deleted_nodes == 3
        assert len(labeled.labels) == count_before - 3
        assert victim.parent is None

    def test_delete_preserves_remaining_order(self, doc):
        scheme = v_cdbs_containment()
        labeled = scheme.label_document(doc)
        scheme.delete_subtree(labeled, doc.root.children[0])
        keys = [
            scheme.order_key(labeled.label_of(n))
            for n in labeled.nodes_in_order
        ]
        assert keys == sorted(keys)

    def test_insert_into_deletion_gap_no_relabel_for_vbinary(self, doc):
        """Deletions reopen integer gaps that V-Binary can reuse."""
        scheme = v_binary_containment()
        labeled = scheme.label_document(doc)
        a = doc.root.children[0]
        scheme.delete_subtree(labeled, a.children[0])  # frees 2 values
        stats = scheme.insert_subtree(labeled, a, 0, Node.element("x"))
        assert stats.relabeled_nodes == 0
