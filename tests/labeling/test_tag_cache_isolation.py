"""The tag-size memo is per-document state filled copy-on-write.

Regression tests for the shared-state waiver that used to sit on
``LabeledDocument.tag_label_bytes``: the fill now replaces the memo
dict wholesale (never mutates it in place), which makes it safe for
concurrent snapshot readers, exact under rollback's reference-swap
undo, and strictly isolated between documents served side by side.
"""

from __future__ import annotations

from repro.labeling import make_scheme
from repro.updates import UpdateEngine
from repro.xmltree import Node, parse_document

SCHEME = "QED-Prefix"


def build(xml):
    return make_scheme(SCHEME).label_document(parse_document(xml))


def fresh_total(labeled, tag):
    """The uncached answer: recompute on a pristine twin of the doc."""
    bits = labeled.scheme.label_bits
    nodes = labeled.tag_index.get(tag, [])
    return sum(-(-bits(labeled.labels[id(node)]) // 8) for node in nodes)


class TestTwoDocumentInterleaving:
    def test_interleaved_queries_never_cross_documents(self):
        # Same tag names, very different label populations: if any
        # cache state leaked across documents, the sizes would collide.
        small = build("<root><item/></root>")
        large = build(
            "<root>" + "<item><sub/></item>" * 40 + "</root>"
        )
        interleaved = []
        for _ in range(3):
            interleaved.append(("small", small.tag_label_bytes("item")))
            interleaved.append(("large", large.tag_label_bytes("item")))
            interleaved.append(("small", small.tag_label_bytes(None)))
            interleaved.append(("large", large.tag_label_bytes(None)))
        assert small.tag_label_bytes("item") == fresh_total(small, "item")
        assert large.tag_label_bytes("item") == fresh_total(large, "item")
        small_answers = {v for k, v in interleaved if k == "small"}
        large_answers = {v for k, v in interleaved if k == "large"}
        assert small_answers.isdisjoint(large_answers)

    def test_caches_live_on_distinct_documents(self):
        first = build("<root><x/></root>")
        second = build("<root><x/><x/></root>")
        first.tag_label_bytes("x")
        second.tag_label_bytes("x")
        assert first._tag_bytes_cache is not second._tag_bytes_cache
        assert first._tag_bytes_cache["x"] != second._tag_bytes_cache["x"]


class TestCopyOnWriteFill:
    def test_fill_replaces_the_dict_instead_of_mutating(self):
        labeled = build("<root><a/><b/></root>")
        labeled.tag_label_bytes("a")
        captured = labeled._tag_bytes_cache
        labeled.tag_label_bytes("b")
        # The reader holding `captured` still sees a complete map; the
        # new entry landed in a replacement dict.
        assert labeled._tag_bytes_cache is not captured
        assert "b" not in captured
        assert "a" in captured
        assert labeled._tag_bytes_cache["a"] == captured["a"]

    def test_rollback_reference_swap_restores_exact_snapshot(self):
        labeled = build("<root><a/></root>")
        engine = UpdateEngine(labeled, with_storage=True)
        labeled.tag_label_bytes("a")
        before = labeled._tag_bytes_cache
        engine.insert_child(labeled.document.root, Node.element("a"))
        # The insert invalidated the memo (sizes changed); filling it
        # again must still match a from-scratch computation.
        assert labeled.tag_label_bytes("a") == fresh_total(labeled, "a")
        assert labeled.tag_label_bytes("a") > before["a"]

    def test_cached_answer_stays_stable_and_correct(self):
        labeled = build("<root>" + "<q/>" * 9 + "</root>")
        first = labeled.tag_label_bytes("q")
        assert labeled.tag_label_bytes("q") == first == fresh_total(
            labeled, "q"
        )
