"""Cross-scheme invariants: every scheme must decide every relationship
exactly as the tree does (DESIGN.md invariants 5–7)."""

from __future__ import annotations

import random

import pytest

from repro.errors import UnsupportedOperationError
from repro.labeling import make_scheme, scheme_names
from repro.xmltree.node import NodeKind

from tests.conftest import make_small_document

ALL = tuple(scheme_names())


@pytest.fixture(scope="module", params=ALL)
def labeled(request):
    document = make_small_document(seed=77, size=180)
    scheme = make_scheme(request.param)
    return scheme.label_document(document)


def _sample_pairs(nodes, rng, count=400):
    for _ in range(count):
        yield rng.choice(nodes), rng.choice(nodes)


class TestRelationshipAgreement:
    def test_every_node_labeled(self, labeled):
        assert len(labeled.labels) == labeled.document.node_count()

    def test_ancestor_agrees_with_tree(self, labeled):
        rng = random.Random(1)
        nodes = labeled.nodes_in_order
        scheme = labeled.scheme
        for a, b in _sample_pairs(nodes, rng):
            expected = a.is_ancestor_of(b)
            got = scheme.is_ancestor(labeled.label_of(a), labeled.label_of(b))
            assert got == expected, (a, b)

    def test_parent_agrees_with_tree(self, labeled):
        rng = random.Random(2)
        nodes = labeled.nodes_in_order
        scheme = labeled.scheme
        for a, b in _sample_pairs(nodes, rng):
            expected = b.parent is a
            got = scheme.is_parent(labeled.label_of(a), labeled.label_of(b))
            assert got == expected, (a, b)

    def test_order_key_realises_document_order(self, labeled):
        scheme = labeled.scheme
        keys = [scheme.order_key(labeled.label_of(n)) for n in labeled.nodes_in_order]
        assert all(a < b for a, b in zip(keys, keys[1:]))

    def test_sibling_agrees_with_tree_when_supported(self, labeled):
        rng = random.Random(3)
        nodes = labeled.nodes_in_order
        scheme = labeled.scheme
        try:
            scheme.is_sibling(labeled.label_of(nodes[1]), labeled.label_of(nodes[2]))
        except UnsupportedOperationError:
            pytest.skip(f"{scheme.name} has no label-only sibling test")
        for a, b in _sample_pairs(nodes, rng, count=300):
            expected = a is not b and a.parent is not None and a.parent is b.parent
            got = scheme.is_sibling(labeled.label_of(a), labeled.label_of(b))
            assert got == expected, (a, b)

    def test_level_when_supported(self, labeled):
        scheme = labeled.scheme
        try:
            scheme.level_of(labeled.label_of(labeled.document.root))
        except UnsupportedOperationError:
            pytest.skip(f"{scheme.name} labels do not record levels")
        for node in labeled.nodes_in_order[:100]:
            assert scheme.level_of(labeled.label_of(node)) == node.depth + 1

    def test_label_bits_positive(self, labeled):
        scheme = labeled.scheme
        for node in labeled.nodes_in_order:
            if node.parent is None and scheme.family == "prefix":
                continue  # the prefix root label is empty (0 bits)
            assert scheme.label_bits(labeled.label_of(node)) >= 0
        assert labeled.total_label_bits() > 0


class TestDynamicInsertAgreement:
    """After a dynamic insertion, the same invariants must still hold."""

    @pytest.mark.parametrize("name", ALL)
    def test_insert_then_verify(self, name):
        from repro.xmltree.node import Node

        document = make_small_document(seed=99, size=120)
        scheme = make_scheme(name)
        labeled = scheme.label_document(document)
        rng = random.Random(5)
        elements = [
            n for n in labeled.nodes_in_order if n.kind is NodeKind.ELEMENT
        ]
        for step in range(8):
            parent = rng.choice(elements)
            index = rng.randint(0, len(parent.children))
            subtree = Node.element("new")
            subtree.append_child(Node.text(f"t{step}"))
            scheme.insert_subtree(labeled, parent, index, subtree)
            elements.append(subtree)
        # Full re-verification of all three relationship predicates.
        nodes = labeled.nodes_in_order
        assert len(labeled.labels) == len(nodes)
        keys = [scheme.order_key(labeled.label_of(n)) for n in nodes]
        assert all(a < b for a, b in zip(keys, keys[1:]))
        for a, b in _sample_pairs(nodes, rng, count=300):
            assert scheme.is_ancestor(
                labeled.label_of(a), labeled.label_of(b)
            ) == a.is_ancestor_of(b)
            assert scheme.is_parent(
                labeled.label_of(a), labeled.label_of(b)
            ) == (b.parent is a)

    @pytest.mark.parametrize("name", ALL)
    def test_delete_then_verify(self, name):
        document = make_small_document(seed=101, size=150)
        scheme = make_scheme(name)
        labeled = scheme.label_document(document)
        rng = random.Random(7)
        for _ in range(5):
            deletable = [
                n
                for n in labeled.nodes_in_order
                if n.parent is not None and n.kind is NodeKind.ELEMENT
            ]
            scheme.delete_subtree(labeled, rng.choice(deletable))
        nodes = labeled.nodes_in_order
        assert len(labeled.labels) == len(nodes)
        keys = [scheme.order_key(labeled.label_of(n)) for n in nodes]
        assert all(a < b for a, b in zip(keys, keys[1:]))
        for a, b in _sample_pairs(nodes, rng, count=200):
            assert scheme.is_ancestor(
                labeled.label_of(a), labeled.label_of(b)
            ) == a.is_ancestor_of(b)
