"""Gapped-interval containment (Li & Moon, the paper's reference [11])."""

from __future__ import annotations

import pytest

from repro.errors import RelabelRequired
from repro.labeling.codecs import GappedIntegerCodec
from repro.labeling.containment import gapped_containment
from repro.updates import UpdateEngine, run_skewed_insertions
from repro.xmltree import Node, parse_document


class TestCodec:
    def test_bulk_spacing(self):
        codec = GappedIntegerCodec(gap=10)
        assert codec.bulk(4) == [10, 20, 30, 40]

    def test_bad_gap(self):
        with pytest.raises(ValueError):
            GappedIntegerCodec(gap=0)

    def test_between_bisects(self):
        codec = GappedIntegerCodec(gap=10)
        codec.bulk(4)
        assert codec.between(10, 20) == 15

    def test_gap_exhaustion(self):
        codec = GappedIntegerCodec(gap=4)
        codec.bulk(2)
        left, right = 4, 8
        inserted = 0
        with pytest.raises(RelabelRequired):
            for _ in range(10):
                right = codec.between(left, right)
                inserted += 1
        assert inserted == 2  # 4 < 6 < 7 < 8, then nothing between 4,5? -> log2(gap)

    def test_append_at_end(self):
        codec = GappedIntegerCodec(gap=8)
        codec.bulk(3)
        assert codec.between(24, None) == 32

    def test_bits_grow_with_gap(self):
        small = GappedIntegerCodec(gap=2)
        large = GappedIntegerCodec(gap=64)
        small_values = small.bulk(100)
        large_values = large.bulk(100)
        assert large.bits(large_values[-1]) > small.bits(small_values[-1])


class TestScheme:
    def test_relationships(self):
        doc = parse_document("<r><a><b/></a><c/></r>")
        scheme = gapped_containment(gap=8)
        labeled = scheme.label_document(doc)
        a, c = doc.root.children
        assert scheme.is_parent(labeled.label_of(doc.root), labeled.label_of(a))
        assert scheme.is_ancestor(labeled.label_of(a), labeled.label_of(a.children[0]))
        assert not scheme.is_ancestor(labeled.label_of(a), labeled.label_of(c))

    def test_absorbs_inserts_until_gap_dries(self):
        doc = parse_document("<r><a/><b/></r>")
        scheme = gapped_containment(gap=16)
        labeled = scheme.label_document(doc)
        engine = UpdateEngine(labeled, with_storage=False)
        report = run_skewed_insertions(engine, doc.root.children[1], 20)
        # log2(16) ~ 4 free inserts between consecutive multiples, then
        # periodic re-labels; far fewer than one per insert.
        assert 0 < report.relabel_events < 20

    def test_more_gap_fewer_relabels(self):
        def events(gap):
            doc = parse_document("<r><a/><b/></r>")
            scheme = gapped_containment(gap=gap)
            labeled = scheme.label_document(doc)
            engine = UpdateEngine(labeled, with_storage=False)
            return run_skewed_insertions(
                engine, doc.root.children[1], 40
            ).relabel_events

        assert events(64) < events(4)
