"""compact_labels: the offline vacuum for churned documents."""

from __future__ import annotations

import pytest

from repro.labeling import compact_labels, make_scheme, scheme_names
from repro.query import QueryEngine, evaluate_reference
from repro.updates import UpdateEngine, run_skewed_insertions, table4_cases
from repro.xmltree import parse_document


class TestCompaction:
    def test_restores_bulk_sizes_after_skew(self, fresh_hamlet):
        scheme = make_scheme("V-CDBS-Containment")
        labeled = scheme.label_document(fresh_hamlet)
        engine = UpdateEngine(labeled, with_storage=False)
        run_skewed_insertions(engine, table4_cases(fresh_hamlet)[2], 120)
        worst_before = max(
            scheme.label_bits(label) for label in labeled.labels.values()
        )
        changed = compact_labels(labeled)
        worst_after = max(
            scheme.label_bits(label) for label in labeled.labels.values()
        )
        assert changed > 0
        assert worst_after < worst_before / 3

    def test_noop_on_fresh_document(self):
        document = parse_document("<r><a/><b/></r>")
        labeled = make_scheme("V-CDBS-Containment").label_document(document)
        assert compact_labels(labeled) == 0

    @pytest.mark.parametrize(
        "scheme_name", ["V-CDBS-Containment", "QED-Prefix", "Prime"]
    )
    def test_queries_unchanged_after_compaction(self, scheme_name):
        document = parse_document(
            "<r>" + "<s><t/><u/></s>" * 8 + "</r>"
        )
        scheme = make_scheme(scheme_name)
        labeled = scheme.label_document(document)
        engine = UpdateEngine(labeled, with_storage=False)
        target = document.elements_by_tag("t")[3]
        run_skewed_insertions(engine, target, 30)
        expected = [id(n) for n in evaluate_reference(document, "//note")]
        compact_labels(labeled)
        got = [id(n) for n in QueryEngine(labeled).evaluate("//note")]
        assert got == expected
        keys = [
            scheme.order_key(labeled.label_of(n))
            for n in labeled.nodes_in_order
        ]
        assert keys == sorted(keys)

    def test_updates_keep_working_after_compaction(self, fresh_hamlet):
        from repro.xmltree import Node

        scheme = make_scheme("V-CDBS-Containment")
        labeled = scheme.label_document(fresh_hamlet)
        engine = UpdateEngine(labeled, with_storage=False)
        run_skewed_insertions(engine, table4_cases(fresh_hamlet)[0], 50)
        compact_labels(labeled)
        result = engine.insert_child(fresh_hamlet.root, Node.element("x"), 0)
        assert result.stats.relabeled_nodes == 0
