"""RelabelRequired recovery: overflow-driven re-labels leave clean state.

Section 6 of the paper: when a CDBS length field overflows (or float
precision runs out), the scheme falls back to a full re-label.  These
tests force each trigger with deliberately tight codec capacities and
assert the fallback leaves every integrity invariant intact, the cost
ledger reconciled with the returned stats — and, combined with the
transaction layer, that a fault *during* the fallback rolls the whole
operation back.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    LengthFieldOverflow,
    PrecisionExhausted,
    UpdateAborted,
)
from repro.faults import FAULTS, FaultPlan
from repro.labeling.containment import (
    f_cdbs_containment,
    float_point_containment,
    v_cdbs_containment,
)
from repro.labeling.prefix import cdbs_prefix
from repro.obs import OBS
from repro.updates import UpdateEngine, run_skewed_insertions
from repro.verify import verify_integrity
from repro.xmltree import parse_document

from tests.updates.stateutil import full_snapshot

XML = "<r><a/><b/><c/><d/></r>"

# (scheme factory, skewed insertions needed to trip the fallback)
TIGHT_SCHEMES = [
    pytest.param(lambda: v_cdbs_containment(field_bits=3), 40, id="v-cdbs"),
    pytest.param(f_cdbs_containment, 40, id="f-cdbs"),
    pytest.param(lambda: cdbs_prefix(max_code_bits=7), 40, id="cdbs-prefix"),
    pytest.param(float_point_containment, 80, id="float-point"),
]


def build_engine(factory):
    doc = parse_document(XML)
    labeled = factory().label_document(doc)
    return UpdateEngine(labeled, with_storage=True), doc


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


class TestTriggers:
    """The tight configs really do raise the documented errors."""

    def test_v_cdbs_length_field_overflow(self):
        codec = v_cdbs_containment(field_bits=3).codec
        left = codec.bulk(4)[0]
        with pytest.raises(LengthFieldOverflow):
            for _ in range(20):
                left = codec.between(left, None)

    def test_cdbs_prefix_length_field_overflow(self):
        policy = cdbs_prefix(max_code_bits=7).policy
        left = policy.bulk(4)[0]
        with pytest.raises(LengthFieldOverflow):
            for _ in range(20):
                left = policy.between(left, None)

    def test_float_point_precision_exhausted(self):
        codec = float_point_containment().codec
        left, right = codec.bulk(4)[:2]
        with pytest.raises(PrecisionExhausted):
            for _ in range(100):
                left = codec.between(left, right)


class TestRecovery:
    @pytest.mark.parametrize("factory, count", TIGHT_SCHEMES)
    def test_fallback_leaves_integrity_clean(self, factory, count):
        engine, doc = build_engine(factory)
        report = run_skewed_insertions(engine, doc.root.children[1], count)
        # the tight capacity really forced at least one full re-label
        assert report.relabel_events > 0
        assert verify_integrity(engine.labeled, engine.store) == []
        keys = [
            engine.scheme.order_key(engine.labeled.label_of(node))
            for node in engine.labeled.nodes_in_order
        ]
        assert keys == sorted(keys)

    @pytest.mark.parametrize("factory, count", TIGHT_SCHEMES)
    def test_fallback_costs_are_reconciled(self, factory, count):
        engine, doc = build_engine(factory)
        with OBS.capture():
            report = run_skewed_insertions(
                engine, doc.root.children[1], count
            )
            totals = dict(OBS.ledger.totals)
        assert report.relabel_events > 0
        assert totals.get("engine.nodes_relabeled", 0) == sum(
            result.stats.relabeled_nodes for result in report.results
        )
        assert totals.get("engine.nodes_inserted", 0) == count
        assert totals.get("engine.pages_touched", 0) == sum(
            result.pages_touched for result in report.results
        )

    @pytest.mark.parametrize("factory, count", TIGHT_SCHEMES[:3])
    def test_fault_during_fallback_rolls_back(self, factory, count):
        """A relabel.step fault mid-fallback unwinds the whole insert."""
        engine, doc = build_engine(factory)
        target = doc.root.children[1]
        aborted = False
        for _ in range(count):
            before = full_snapshot(engine)
            try:
                with FAULTS.armed(FaultPlan.single("relabel.step", at=2)):
                    run_skewed_insertions(engine, target, 1)
            except UpdateAborted:
                aborted = True
                assert full_snapshot(engine) == before
                assert (
                    verify_integrity(engine.labeled, engine.store) == []
                )
                break
        assert aborted, "tight capacity never forced the relabel fallback"
