"""Batch run minting equals sequential Algorithm-2 chains, per scheme.

``between_run`` on the CDBS codecs routes to the packed batch kernel
(:func:`repro.core.bitstring.encode_run`).  These properties pin the
kernel to the semantics it replaced: for V-CDBS, F-CDBS and the
CDBS(UTF8) prefix policy, a batch of ``count`` codes must be
*indistinguishable* from ``count`` sequential :meth:`between` calls in
Algorithm 2's bisection order — same codes, same ledger charges, same
first-overflow exception — and a replaced ``between`` (instance
monkeypatch or subclass override) must win back control of minting.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LengthFieldOverflow
from repro.labeling.codecs import FCDBSCodec, IntervalCodec, VCDBSCodec
from repro.labeling.prefix import CDBSComponentPolicy, ComponentPolicy
from repro.obs import OBS


def sequential_run(codec, left, right, count):
    """The pre-batch oracle: one ``between`` call per code.

    Dispatches to the *generic* base-class ``between_run`` — literally a
    chain of ``codec.between`` calls in bisection order — bypassing any
    batch override on ``codec``'s class.
    """
    base = (
        ComponentPolicy
        if isinstance(codec, ComponentPolicy)
        else IntervalCodec
    )
    return base.between_run(codec, left, right, count)


def make_codecs():
    fcdbs = FCDBSCodec()
    fcdbs.bulk(64)  # fix the global width like a real bulk load does
    return [
        pytest.param(VCDBSCodec(), id="v-cdbs"),
        pytest.param(fcdbs, id="f-cdbs"),
        pytest.param(CDBSComponentPolicy(), id="cdbs-prefix"),
    ]


CODECS = make_codecs()


class TestBatchEqualsSequential:
    @pytest.mark.parametrize("codec", CODECS)
    @settings(max_examples=40, deadline=None)
    @given(
        bulk=st.integers(min_value=2, max_value=48),
        count=st.integers(min_value=0, max_value=90),
        pick=st.integers(min_value=0, max_value=10**9),
    )
    def test_gap_between_bulk_codes(self, codec, bulk, count, pick):
        codes = codec.bulk(bulk)
        index = pick % (len(codes) - 1)
        left, right = codes[index], codes[index + 1]
        try:
            expected = sequential_run(codec, left, right, count)
        except LengthFieldOverflow as overflow:
            with pytest.raises(LengthFieldOverflow) as caught:
                codec.between_run(left, right, count)
            assert caught.value.code_bits == overflow.code_bits
            assert caught.value.max_bits == overflow.max_bits
            return
        assert codec.between_run(left, right, count) == expected

    @pytest.mark.parametrize("codec", CODECS)
    @settings(max_examples=30, deadline=None)
    @given(count=st.integers(min_value=0, max_value=120))
    def test_unbounded_gap(self, codec, count):
        assert codec.between_run(None, None, count) == sequential_run(
            codec, None, None, count
        )

    @pytest.mark.parametrize("codec", CODECS)
    @settings(max_examples=25, deadline=None)
    @given(
        bulk=st.integers(min_value=1, max_value=48),
        count=st.integers(min_value=1, max_value=60),
    )
    def test_half_open_gaps(self, codec, bulk, count):
        codes = codec.bulk(bulk)
        for left, right in ((None, codes[0]), (codes[-1], None)):
            try:
                expected = sequential_run(codec, left, right, count)
            except LengthFieldOverflow as overflow:
                with pytest.raises(LengthFieldOverflow) as caught:
                    codec.between_run(left, right, count)
                assert caught.value.code_bits == overflow.code_bits
                assert caught.value.max_bits == overflow.max_bits
                continue
            assert codec.between_run(left, right, count) == expected

    @pytest.mark.parametrize("codec", CODECS)
    def test_empty_run(self, codec):
        assert codec.between_run(None, None, 0) == []

    @pytest.mark.parametrize("codec", CODECS)
    def test_negative_count_rejected(self, codec):
        with pytest.raises(ValueError, match="non-negative"):
            codec.between_run(None, None, -1)


class TestLedgerParity:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("count", [1, 2, 17, 64])
    def test_batch_charges_match_sequential(self, codec, count):
        """The ledger cannot tell a batch from a chain of ``between``."""
        saved = OBS.enabled
        try:
            OBS.reset()
            OBS.enabled = True
            codec.between_run(None, None, count)
            batch_totals = dict(OBS.ledger.totals)
            OBS.reset()
            sequential_run(codec, None, None, count)
            sequential_totals = dict(OBS.ledger.totals)
        finally:
            OBS.enabled = saved
            OBS.reset()
        assert batch_totals == sequential_totals


class TestOverflowBoundaries:
    def test_vcdbs_boundary_is_exact(self):
        """``field_bits=3`` caps codes at 7 bits: 127 codes fit (the
        longest bulk code of 1..n is ``bit_length(n)`` bits), 128 does
        not — and batch and sequential agree on both sides."""
        codec = VCDBSCodec(field_bits=3)
        assert codec.max_code_bits == 7
        fits = codec.between_run(None, None, 127)
        assert fits == sequential_run(codec, None, None, 127)
        assert max(len(code) for code in fits) == 7
        with pytest.raises(LengthFieldOverflow) as batch:
            codec.between_run(None, None, 128)
        with pytest.raises(LengthFieldOverflow) as seq:
            sequential_run(codec, None, None, 128)
        assert (batch.value.code_bits, batch.value.max_bits) == (
            seq.value.code_bits,
            seq.value.max_bits,
        ) == (8, 7)

    def test_fcdbs_boundary_is_exact(self):
        codec = FCDBSCodec()
        codec.bulk(64)  # width 8
        assert codec.width == 8
        fits = codec.between_run(None, None, 255)
        assert fits == sequential_run(codec, None, None, 255)
        assert all(len(code) == 8 for code in fits)
        with pytest.raises(LengthFieldOverflow):
            codec.between_run(None, None, 256)
        with pytest.raises(LengthFieldOverflow):
            sequential_run(codec, None, None, 256)

    def test_prefix_policy_boundary_is_exact(self):
        policy = CDBSComponentPolicy(max_code_bits=6)
        fits = policy.between_run(None, None, 63)
        assert fits == sequential_run(policy, None, None, 63)
        with pytest.raises(LengthFieldOverflow) as batch:
            policy.between_run(None, None, 64)
        with pytest.raises(LengthFieldOverflow) as seq:
            sequential_run(policy, None, None, 64)
        assert batch.value.code_bits == seq.value.code_bits == 7


class TestReplacedBetweenKeepsControl:
    """The batch kernel must step aside when ``between`` is replaced."""

    def test_instance_monkeypatch_governs_minting(self):
        codec = VCDBSCodec()
        calls = []

        def fake_between(left, right):
            calls.append((left, right))
            return VCDBSCodec.between(codec, left, right)

        codec.between = fake_between
        result = codec.between_run(None, None, 9)
        assert len(calls) == 9
        assert result == sequential_run(VCDBSCodec(), None, None, 9)

    def test_raising_monkeypatch_propagates(self):
        codec = VCDBSCodec()

        class Boom(RuntimeError):
            pass

        def boom(left, right):
            raise Boom

        codec.between = boom
        with pytest.raises(Boom):
            codec.between_run(None, None, 3)

    def test_subclass_override_governs_minting(self):
        calls = []

        class Counting(VCDBSCodec):
            def between(self, left, right):
                calls.append((left, right))
                return super().between(left, right)

        result = Counting().between_run(None, None, 9)
        assert len(calls) == 9
        assert result == sequential_run(VCDBSCodec(), None, None, 9)

    def test_prefix_policy_monkeypatch_governs_minting(self):
        policy = CDBSComponentPolicy()
        calls = []

        def fake_between(left, right):
            calls.append((left, right))
            return CDBSComponentPolicy.between(policy, left, right)

        policy.between = fake_between
        result = policy.between_run(None, None, 5)
        assert len(calls) == 5
        assert result == sequential_run(CDBSComponentPolicy(), None, None, 5)
