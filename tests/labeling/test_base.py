"""LabeledDocument index maintenance and UpdateStats accounting."""

from __future__ import annotations

import pytest

from repro.labeling import UpdateStats, make_scheme
from repro.labeling.containment import v_cdbs_containment
from repro.xmltree import Node, parse_document


class TestUpdateStats:
    def test_defaults(self):
        stats = UpdateStats()
        assert stats.inserted_nodes == 0
        assert stats.relabeled_nodes == 0

    def test_merge(self):
        first = UpdateStats(inserted_nodes=1, labels_written=1)
        second = UpdateStats(relabeled_nodes=5, labels_written=5, sc_recomputed=2)
        merged = first.merge(second)
        assert merged.inserted_nodes == 1
        assert merged.relabeled_nodes == 5
        assert merged.labels_written == 6
        assert merged.sc_recomputed == 2


@pytest.fixture()
def labeled():
    doc = parse_document("<r><a><b/></a><a><c/></a></r>")
    return v_cdbs_containment().label_document(doc)


class TestIndexes:
    def test_tag_index_in_document_order(self, labeled):
        a_nodes = labeled.tag_index["a"]
        positions = {id(n): i for i, n in enumerate(labeled.nodes_in_order)}
        assert positions[id(a_nodes[0])] < positions[id(a_nodes[1])]

    def test_register_subtree_splices_order(self, labeled):
        doc = labeled.document
        scheme = labeled.scheme
        subtree = Node.element("a")
        scheme.insert_subtree(labeled, doc.root, 1, subtree)
        assert len(labeled.tag_index["a"]) == 3
        # Order list is exactly the tree's pre-order.
        assert [id(n) for n in labeled.nodes_in_order] == [
            id(n) for n in doc.pre_order()
        ]

    def test_unregister_subtree(self, labeled):
        doc = labeled.document
        victim = doc.root.children[0]
        removed = labeled.unregister_subtree(victim)
        assert len(removed) == 2
        assert len(labeled.tag_index["a"]) == 1
        assert "b" not in [n.name for bucket in labeled.tag_index.values() for n in bucket]

    def test_tag_label_bytes_cached_and_invalidated(self, labeled):
        first = labeled.tag_label_bytes("a")
        assert first > 0
        assert labeled.tag_label_bytes("a") == first
        scheme = labeled.scheme
        scheme.insert_subtree(labeled, labeled.document.root, 0, Node.element("a"))
        assert labeled.tag_label_bytes("a") > first

    def test_tag_label_bytes_wildcard(self, labeled):
        assert labeled.tag_label_bytes(None) >= labeled.tag_label_bytes("a")

    def test_tag_label_bytes_unknown_tag(self, labeled):
        assert labeled.tag_label_bytes("zzz") == 0

    def test_node_count_tracks_updates(self, labeled):
        count = labeled.node_count()
        labeled.scheme.insert_subtree(
            labeled, labeled.document.root, 0, Node.element("x")
        )
        assert labeled.node_count() == count + 1


class TestRegistry:
    def test_all_names_construct(self):
        from repro.labeling import scheme_names

        for name in scheme_names():
            scheme = make_scheme(name)
            assert scheme.name == name

    def test_fresh_instances(self):
        assert make_scheme("Prime") is not make_scheme("Prime")

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            make_scheme("Nope-Scheme")

    def test_families(self):
        assert make_scheme("Prime").family == "prime"
        assert make_scheme("QED-Prefix").family == "prefix"
        assert make_scheme("QED-Containment").family == "containment"

    def test_dynamic_flags(self):
        assert make_scheme("V-CDBS-Containment").dynamic
        assert make_scheme("QED-Prefix").dynamic
        assert not make_scheme("V-Binary-Containment").dynamic
        assert not make_scheme("DeweyID(UTF8)-Prefix").dynamic
