"""LabelView: immutable committed snapshots the read path serves.

The MVCC half of the service contract: ``capture()`` freezes the label
map, document order, tag index and serialized bytes; subsequent engine
mutations must be invisible through the captured view, and the query
engine must run against a view exactly as it runs against the live
``LabeledDocument``.
"""

from __future__ import annotations

import pytest

from repro.labeling import LabelView, make_scheme
from repro.labeling.snapshot import capture
from repro.query import QueryEngine
from repro.updates import UpdateEngine
from repro.xmltree import Node, parse_document

SCHEME = "QED-Prefix"
XML = "<root><a><b/></a><a/><c>text</c></root>"


@pytest.fixture
def engine():
    labeled = make_scheme(SCHEME).label_document(parse_document(XML))
    return UpdateEngine(labeled, with_storage=True)


def test_capture_freezes_counts_and_labels(engine):
    view = capture(engine.labeled, version=7)
    assert view.version == 7
    before_count = view.node_count()
    before_labels = [view.label_of(node) for node in view]
    engine.insert_child(engine.labeled.document.root, Node.element("new"))
    engine.insert_child(engine.labeled.document.root, Node.element("new"))
    assert view.node_count() == before_count
    assert [view.label_of(node) for node in view] == before_labels
    assert engine.labeled.nodes_in_order[0] is view.node_at(0)


def test_serialize_returns_the_captured_bytes(engine):
    view = capture(engine.labeled, version=1)
    frozen = view.serialize()
    engine.delete(engine.labeled.document.root.children[0])
    assert view.serialize() == frozen
    assert "<b/>" in frozen


def test_tag_index_is_frozen(engine):
    view = capture(engine.labeled, version=1)
    assert len(view.tag_index["a"]) == 2
    engine.insert_child(engine.labeled.document.root, Node.element("a"))
    assert len(view.tag_index["a"]) == 2
    assert len(engine.labeled.tag_index["a"]) == 3


def test_query_engine_matches_live_results(engine):
    live = QueryEngine(engine.labeled).evaluate("//a")
    view = capture(engine.labeled, version=1)
    snapshot_results = QueryEngine(view).evaluate("//a")
    assert snapshot_results == live
    # Mutate: the live engine sees the new node, the view does not.
    engine.insert_child(engine.labeled.document.root, Node.element("a"))
    assert len(QueryEngine(engine.labeled).evaluate("//a")) == 3
    assert len(QueryEngine(view).evaluate("//a")) == 2


def test_position_round_trip(engine):
    view = capture(engine.labeled, version=1)
    for position in range(view.node_count()):
        assert view.position_of(view.node_at(position)) == position


def test_tag_label_bytes_matches_live_and_is_cow(engine):
    view = capture(engine.labeled, version=1)
    assert view.tag_label_bytes("a") == engine.labeled.tag_label_bytes("a")
    first_map = view._tag_bytes
    view.tag_label_bytes(None)
    # Copy-on-write: the fill replaced the map, never mutated it.
    assert view._tag_bytes is not first_map
    assert "a" in first_map and None not in first_map


def test_view_exported_from_labeling_package():
    assert LabelView.__name__ == "LabelView"


def test_total_label_bits_frozen(engine):
    view = capture(engine.labeled, version=1)
    before = view.total_label_bits()
    engine.insert_child(engine.labeled.document.root, Node.element("z"))
    assert view.total_label_bits() == before
    assert engine.labeled.total_label_bits() > before
