"""Prefix scheme specifics: ordinals, policies, update behaviour."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitstring import BitString
from repro.errors import InvalidCodeError, LengthFieldOverflow, RelabelRequired
from repro.labeling.prefix import (
    BinaryStringPolicy,
    CDBSComponentPolicy,
    DeweyPolicy,
    OrdPathPolicy,
    QEDComponentPolicy,
    binary_string_prefix,
    cdbs_prefix,
    dewey_prefix,
    ordinal_between,
    ordpath1_prefix,
    ordpath_li_oi_bits,
    qed_prefix,
    utf8_bits,
)
from repro.xmltree import Node, parse_document


class TestUtf8Bits:
    def test_one_byte(self):
        assert utf8_bits(1) == 8
        assert utf8_bits(7) == 8

    def test_rfc2279_progression(self):
        assert utf8_bits(8) == 16
        assert utf8_bits(11) == 16
        assert utf8_bits(12) == 24
        assert utf8_bits(16) == 24
        assert utf8_bits(21) == 32
        assert utf8_bits(31) == 48

    def test_extends_beyond_rfc(self):
        assert utf8_bits(100) > utf8_bits(31)


class TestOrdPathBits:
    def test_small_values_cheap(self):
        assert ordpath_li_oi_bits(1) == 6  # '100' + 3 payload bits
        assert ordpath_li_oi_bits(7) == 6

    def test_buckets_monotone_in_magnitude(self):
        sizes = [ordpath_li_oi_bits(v) for v in (1, 20, 80, 300, 4000, 60000)]
        assert sizes == sorted(sizes)

    def test_negative_values_covered(self):
        assert ordpath_li_oi_bits(-1) == 6  # '011' + 3
        assert ordpath_li_oi_bits(-300) == 12  # '0001' + 8

    def test_top_bucket(self):
        assert ordpath_li_oi_bits(10**12) == 70  # '11111110' + 62

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ordpath_li_oi_bits(1 << 70)

    def test_li_codes_prefix_free(self):
        from repro.labeling.prefix import ORDPATH_BUCKETS

        codes = [li for (_, _, li, _) in ORDPATH_BUCKETS]
        for a in codes:
            for b in codes:
                if a is not b:
                    assert not b.startswith(a)

    def test_buckets_contiguous(self):
        from repro.labeling.prefix import ORDPATH_BUCKETS

        for (low1, high1, _, _), (low2, _, _, _) in zip(
            ORDPATH_BUCKETS, ORDPATH_BUCKETS[1:]
        ):
            assert low2 == high1 + 1

    def test_payload_widths_fit_ranges(self):
        from repro.labeling.prefix import ORDPATH_BUCKETS

        for low, high, _, oi in ORDPATH_BUCKETS:
            assert high - low + 1 <= (1 << oi)


class TestOrdinalBetween:
    def test_first(self):
        assert ordinal_between(None, None) == (1,)

    def test_after(self):
        assert ordinal_between((3,), None) == (5,)

    def test_before(self):
        assert ordinal_between(None, (1,)) == (-1,)

    def test_careting_between_adjacent_odds(self):
        # Between 1 and 3 lies only the even 2: caret through it.
        assert ordinal_between((1,), (3,)) == (2, 1)

    def test_wide_gap_uses_plain_odd(self):
        middle = ordinal_between((1,), (7,))
        assert len(middle) == 1
        assert (1,) < middle < (7,)
        assert middle[0] % 2 == 1

    def test_invalid_ordinals_rejected(self):
        with pytest.raises(InvalidCodeError):
            ordinal_between((2,), (3,))  # even terminal
        with pytest.raises(InvalidCodeError):
            ordinal_between((1, 3), (5,))  # odd interior
        with pytest.raises(InvalidCodeError):
            ordinal_between((3,), (1,))  # unordered

    @settings(max_examples=60)
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=100))
    def test_compound_insertions(self, positions):
        ordinals = []
        for raw in positions:
            index = raw % (len(ordinals) + 1)
            left = ordinals[index - 1] if index > 0 else None
            right = ordinals[index] if index < len(ordinals) else None
            middle = ordinal_between(left, right)
            assert middle[-1] % 2 == 1
            assert all(c % 2 == 0 for c in middle[:-1])
            ordinals.insert(index, middle)
        assert all(a < b for a, b in zip(ordinals, ordinals[1:]))


class TestPolicies:
    def test_dewey_bulk(self):
        assert DeweyPolicy().bulk(4) == [1, 2, 3, 4]

    def test_dewey_append_only(self):
        policy = DeweyPolicy()
        assert policy.between(4, None) == 5
        with pytest.raises(RelabelRequired):
            policy.between(1, 2)
        with pytest.raises(RelabelRequired):
            policy.between(None, 1)

    def test_ordpath_bulk_odd(self):
        assert OrdPathPolicy().bulk(4) == [(1,), (3,), (5,), (7,)]

    def test_binary_string_bulk(self):
        assert BinaryStringPolicy().bulk(3) == ["0", "10", "110"]

    def test_binary_string_append(self):
        policy = BinaryStringPolicy()
        assert policy.between("110", None) == "1110"
        with pytest.raises(RelabelRequired):
            policy.between("0", "10")

    def test_cdbs_bulk_matches_example_5_1(self):
        # "To encode 4 numbers ... the V-CDBS codes will be 001, 01, 1, 11".
        codes = CDBSComponentPolicy().bulk(4)
        assert [c.to01() for c in codes] == ["001", "01", "1", "11"]

    def test_cdbs_overflow_guard(self):
        policy = CDBSComponentPolicy(max_code_bits=6)
        left = BitString.from_str("011111")
        with pytest.raises(LengthFieldOverflow):
            policy.between(left, BitString.from_str("1"))

    def test_qed_bulk_valid(self):
        from repro.core.qed import validate_qed_code

        for code in QEDComponentPolicy().bulk(10):
            validate_qed_code(code)


@pytest.fixture()
def doc():
    return parse_document("<r><a><b/><c/></a><d/><e/></r>")


class TestPrefixScheme:
    def test_root_label_empty(self, doc):
        labeled = dewey_prefix().label_document(doc)
        assert labeled.label_of(doc.root) == ()

    def test_dewey_paths(self, doc):
        labeled = dewey_prefix().label_document(doc)
        a = doc.root.children[0]
        assert labeled.label_of(a) == (1,)
        assert labeled.label_of(a.children[1]) == (1, 2)
        assert labeled.label_of(doc.root.children[2]) == (3,)

    def test_self_and_parent_label(self, doc):
        scheme = dewey_prefix()
        labeled = scheme.label_document(doc)
        label = labeled.label_of(doc.root.children[0].children[1])
        assert scheme.self_label(label) == 2
        assert scheme.parent_label(label) == (1,)
        with pytest.raises(ValueError):
            scheme.self_label(())
        with pytest.raises(ValueError):
            scheme.parent_label(())

    def test_level(self, doc):
        scheme = qed_prefix()
        labeled = scheme.label_document(doc)
        assert scheme.level_of(labeled.label_of(doc.root)) == 1
        assert scheme.level_of(labeled.label_of(doc.root.children[0])) == 2

    def test_sibling_from_labels(self, doc):
        scheme = qed_prefix()
        labeled = scheme.label_document(doc)
        d, e = doc.root.children[1], doc.root.children[2]
        a_child = doc.root.children[0].children[0]
        assert scheme.is_sibling(labeled.label_of(d), labeled.label_of(e))
        assert not scheme.is_sibling(labeled.label_of(d), labeled.label_of(d))
        assert not scheme.is_sibling(labeled.label_of(d), labeled.label_of(a_child))


class TestPrefixUpdates:
    def test_dynamic_insert_no_relabel(self, doc):
        for factory in (ordpath1_prefix, qed_prefix, cdbs_prefix):
            document = parse_document("<r><a><b/><c/></a><d/><e/></r>")
            scheme = factory()
            labeled = scheme.label_document(document)
            stats = scheme.insert_subtree(
                labeled, document.root, 1, Node.element("x")
            )
            assert stats.relabeled_nodes == 0, scheme.name

    def test_ordpath_carets_between_siblings(self, doc):
        scheme = ordpath1_prefix()
        labeled = scheme.label_document(doc)
        new = Node.element("x")
        scheme.insert_subtree(labeled, doc.root, 1, new)
        label = labeled.label_of(new)
        assert label == ((2, 1),)  # careted between (1,) and (3,)

    def test_dewey_relabels_following_siblings(self, doc):
        scheme = dewey_prefix()
        labeled = scheme.label_document(doc)
        stats = scheme.insert_subtree(labeled, doc.root, 1, Node.element("x"))
        # Following siblings d and e (plus no descendants) re-labeled;
        # the a-subtree before the insertion point is untouched.
        assert stats.relabeled_nodes == 2
        assert labeled.label_of(doc.root.children[1]) == (2,)  # new node
        assert labeled.label_of(doc.root.children[2]) == (3,)  # d
        assert labeled.label_of(doc.root.children[3]) == (4,)  # e

    def test_dewey_relabel_counts_descendants(self):
        document = parse_document("<r><a/><b><x/><y/></b></r>")
        scheme = dewey_prefix()
        labeled = scheme.label_document(document)
        stats = scheme.insert_subtree(labeled, document.root, 0, Node.element("n"))
        # a, b, x, y all change complete labels.
        assert stats.relabeled_nodes == 4

    def test_dewey_append_no_relabel(self, doc):
        scheme = dewey_prefix()
        labeled = scheme.label_document(doc)
        stats = scheme.insert_subtree(
            labeled, doc.root, len(doc.root.children), Node.element("x")
        )
        assert stats.relabeled_nodes == 0

    def test_insert_subtree_deep(self, doc):
        scheme = qed_prefix()
        labeled = scheme.label_document(doc)
        subtree = Node.element("s")
        subtree.append_child(Node.element("t"))
        scheme.insert_subtree(labeled, doc.root, 0, subtree)
        assert scheme.is_parent(
            labeled.label_of(subtree), labeled.label_of(subtree.children[0])
        )

    def test_unknown_parent_rejected(self, doc):
        scheme = qed_prefix()
        labeled = scheme.label_document(doc)
        with pytest.raises(ValueError):
            scheme.insert_subtree(labeled, Node.element("alien"), 0, Node.element("x"))


class TestLabelSizes:
    def test_cdbs_utf8_matches_dewey(self, doc):
        """The paper: CDBS(UTF8)-Prefix has the same label size as
        DeweyID(UTF8)-Prefix (both UTF-8 framed)."""
        dewey = dewey_prefix().label_document(doc)
        cdbs = cdbs_prefix().label_document(doc)
        assert dewey.total_label_bits() == cdbs.total_label_bits()

    def test_ordpath_larger_than_qed_on_small_fanouts(self):
        """Figure 5: QED-Prefix beats OrdPath at realistic fan-outs,
        where OrdPath's odd-only ordinals waste a value bit per level."""
        body = "<a><b/><c/><d/></a>" * 8
        document = parse_document(f"<r>{body}</r>")
        ordpath = ordpath1_prefix().label_document(document)
        qed = qed_prefix().label_document(document)
        assert qed.total_label_bits() < ordpath.total_label_bits()

    def test_binary_string_grows_with_position(self):
        document = parse_document(
            "<r>" + "<c/>" * 60 + "</r>"
        )
        scheme = binary_string_prefix()
        labeled = scheme.label_document(document)
        last = labeled.label_of(document.root.children[-1])
        assert scheme.label_bits(last) == 60
