"""Adaptive CDBS (the §8 future-work extension): local re-labeling."""

from __future__ import annotations

import random

import pytest

from repro.labeling import adaptive_cdbs_containment, v_cdbs_containment
from repro.updates import UpdateEngine, run_skewed_insertions
from repro.xmltree import Node, parse_document


def deep_doc():
    return parse_document(
        "<r>"
        + "".join(
            f"<sec><para><s{i}/><t{i}/></para><para><u{i}/></para></sec>"
            for i in range(8)
        )
        + "</r>"
    )


class TestFastPath:
    def test_behaves_like_vcdbs_without_overflow(self):
        doc = deep_doc()
        scheme = adaptive_cdbs_containment()
        labeled = scheme.label_document(doc)
        stats = scheme.insert_subtree(labeled, doc.root, 3, Node.element("x"))
        assert stats.relabeled_nodes == 0
        assert scheme.local_relabels == 0
        assert scheme.full_relabels == 0

    def test_registry_name(self):
        from repro.labeling import make_scheme

        scheme = make_scheme("Adaptive-CDBS-Containment")
        assert scheme.dynamic


class TestLocalRecovery:
    def test_overflow_triggers_local_not_full(self):
        doc = deep_doc()
        scheme = adaptive_cdbs_containment(field_bits=4)  # codes <= 15 bits
        labeled = scheme.label_document(doc)
        engine = UpdateEngine(labeled, with_storage=False)
        target = doc.elements_by_tag("s3")[0]
        report = run_skewed_insertions(engine, target, 40)
        assert report.relabel_events >= 1
        assert scheme.local_relabels >= 1
        # A local event re-labels a small region, not the document.
        assert report.relabeled_nodes < report.relabel_events * doc.node_count()

    def test_invariants_after_local_relabel(self):
        doc = deep_doc()
        scheme = adaptive_cdbs_containment(field_bits=4)
        labeled = scheme.label_document(doc)
        engine = UpdateEngine(labeled, with_storage=False)
        target = doc.elements_by_tag("s5")[0]
        run_skewed_insertions(engine, target, 40)
        nodes = labeled.nodes_in_order
        assert len(labeled.labels) == len(nodes)
        keys = [scheme.order_key(labeled.label_of(n)) for n in nodes]
        assert keys == sorted(keys)
        rng = random.Random(3)
        for _ in range(300):
            a, b = rng.choice(nodes), rng.choice(nodes)
            assert scheme.is_ancestor(
                labeled.label_of(a), labeled.label_of(b)
            ) == a.is_ancestor_of(b)
            assert scheme.is_parent(
                labeled.label_of(a), labeled.label_of(b)
            ) == (b.parent is a)

    def test_local_beats_full_on_deep_skew(self):
        # The advantage needs document >> hot region: use Hamlet with
        # the skew buried inside one speech (as in experiment E12).
        from repro.datasets import build_hamlet

        def run(scheme):
            doc = build_hamlet()
            labeled = scheme.label_document(doc)
            engine = UpdateEngine(labeled, with_storage=False)
            lines = doc.elements_by_tag("line")
            return run_skewed_insertions(engine, lines[len(lines) // 2], 80)

        full = run(v_cdbs_containment(field_bits=5))
        local = run(adaptive_cdbs_containment(field_bits=5))
        assert full.relabel_events >= 1
        assert local.relabeled_nodes < full.relabeled_nodes / 4

    def test_climbs_to_larger_region_when_needed(self):
        # A document so shallow the only region is the root: the climb
        # must still terminate and keep the labels valid.
        doc = parse_document("<r><a/><b/></r>")
        scheme = adaptive_cdbs_containment(field_bits=3)  # codes <= 7 bits
        labeled = scheme.label_document(doc)
        engine = UpdateEngine(labeled, with_storage=False)
        target = doc.root.children[0]
        report = run_skewed_insertions(engine, target, 30)
        assert report.operations == 30
        keys = [
            scheme.order_key(labeled.label_of(n))
            for n in labeled.nodes_in_order
        ]
        assert keys == sorted(keys)

    def test_table4_still_zero(self, fresh_hamlet):
        from repro.updates import run_table4_case

        scheme = adaptive_cdbs_containment()
        labeled = scheme.label_document(fresh_hamlet)
        engine = UpdateEngine(labeled, with_storage=False)
        assert run_table4_case(engine, 3).stats.relabeled_nodes == 0
