"""Prime scheme: primes, CRT, SC maintenance (Sections 2.3 / 7.3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labeling.prime import (
    GROUP_SIZE,
    PrimeScheme,
    crt,
    first_primes,
    prime_scheme,
)
from repro.xmltree import Node, parse_document


class TestFirstPrimes:
    def test_starts_at_eleven(self):
        assert first_primes(5) == [11, 13, 17, 19, 23]

    def test_count(self):
        assert len(first_primes(1000)) == 1000

    def test_all_prime(self):
        for p in first_primes(200):
            assert p >= 2
            assert all(p % d for d in range(2, int(math.isqrt(p)) + 1))

    def test_minimum_respected(self):
        primes = first_primes(5, minimum=100)
        assert primes[0] >= 100

    def test_zero(self):
        assert first_primes(0) == []

    def test_negative(self):
        with pytest.raises(ValueError):
            first_primes(-1)

    def test_large_count_bound_growth(self):
        primes = first_primes(20_000)
        assert len(primes) == 20_000
        assert primes == sorted(primes)


class TestCrt:
    def test_textbook_example(self):
        # x = 2 mod 3, 3 mod 5, 2 mod 7 -> 23.
        assert crt([2, 3, 2], [3, 5, 7]) == 23

    def test_single(self):
        assert crt([4], [11]) == 4

    def test_residues_recoverable(self):
        moduli = [11, 13, 17, 19, 23]
        residues = [1, 2, 3, 4, 5]
        solution = crt(residues, moduli)
        assert [solution % m for m in moduli] == residues

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crt([1, 2], [3])

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=5))
    def test_property_recovery(self, residues):
        moduli = first_primes(len(residues))
        solution = crt(residues, moduli)
        assert [solution % m for m in moduli] == residues
        assert 0 <= solution < math.prod(moduli)


@pytest.fixture()
def doc():
    return parse_document("<r><a><b/><c/></a><d/><e><f/></e></r>")


class TestPrimeLabeling:
    def test_products_multiply_down_paths(self, doc):
        scheme = prime_scheme()
        labeled = scheme.label_document(doc)
        root_label = labeled.label_of(doc.root)
        a_label = labeled.label_of(doc.root.children[0])
        assert a_label.product % root_label.product == 0
        assert a_label.product // a_label.self_label == root_label.product

    def test_self_labels_distinct_primes(self, doc):
        labeled = prime_scheme().label_document(doc)
        selfs = [label.self_label for label in labeled.labels.values()]
        assert len(set(selfs)) == len(selfs)
        assert min(selfs) >= 11

    def test_groups_cover_all_nodes(self, doc):
        labeled = prime_scheme().label_document(doc)
        groups = labeled.extra["sc_groups"]
        assert sum(len(g.primes) for g in groups) == doc.node_count()
        assert len(groups) == -(-doc.node_count() // GROUP_SIZE)

    def test_local_order_recovery(self, doc):
        labeled = prime_scheme().label_document(doc)
        for group in labeled.extra["sc_groups"]:
            recovered = [group.local_order(p) for p in group.primes]
            assert recovered == list(range(1, len(group.primes) + 1))

    def test_order_key_requires_group(self):
        from repro.labeling.prime import PrimeLabel

        scheme = prime_scheme()
        with pytest.raises(ValueError):
            scheme.order_key(PrimeLabel(11, 11))

    def test_label_bits_grow_with_depth(self, doc):
        scheme = prime_scheme()
        labeled = scheme.label_document(doc)
        shallow = scheme.label_bits(labeled.label_of(doc.root))
        deep = scheme.label_bits(
            labeled.label_of(doc.root.children[0].children[0])
        )
        assert deep > shallow


class TestPrimeUpdates:
    def test_insert_relabels_nothing(self, doc):
        scheme = prime_scheme()
        labeled = scheme.label_document(doc)
        old_products = {
            node_id: label.product for node_id, label in labeled.labels.items()
        }
        stats = scheme.insert_subtree(labeled, doc.root, 1, Node.element("x"))
        assert stats.relabeled_nodes == 0
        for node_id, product in old_products.items():
            assert labeled.labels[node_id].product == product

    def test_insert_recomputes_suffix_groups(self, doc):
        scheme = prime_scheme()
        labeled = scheme.label_document(doc)
        stats = scheme.insert_subtree(labeled, doc.root, 0, Node.element("x"))
        # Insertion at document position 2 (0-based 1): groups from 0 on.
        total_after = -(-labeled.node_count() // GROUP_SIZE)
        assert stats.sc_recomputed == total_after

    def test_insert_at_end_touches_last_group_only(self):
        document = parse_document("<r>" + "<a/>" * 14 + "</r>")
        scheme = prime_scheme()
        labeled = scheme.label_document(document)
        stats = scheme.insert_subtree(
            labeled, document.root, 14, Node.element("x")
        )
        assert stats.sc_recomputed == 1

    def test_new_nodes_get_fresh_primes(self, doc):
        scheme = prime_scheme()
        labeled = scheme.label_document(doc)
        before_max = max(l.self_label for l in labeled.labels.values())
        new = Node.element("x")
        scheme.insert_subtree(labeled, doc.root, 0, new)
        assert labeled.label_of(new).self_label > before_max

    def test_order_still_correct_after_inserts(self, doc):
        scheme = prime_scheme()
        labeled = scheme.label_document(doc)
        for index in (0, 2, 4):
            scheme.insert_subtree(labeled, doc.root, index, Node.element("x"))
        keys = [
            scheme.order_key(labeled.label_of(n))
            for n in labeled.nodes_in_order
        ]
        assert keys == sorted(keys)

    def test_delete_recomputes_groups(self, doc):
        scheme = prime_scheme()
        labeled = scheme.label_document(doc)
        stats = scheme.delete_subtree(labeled, doc.root.children[0])
        assert stats.deleted_nodes == 3
        assert stats.sc_recomputed >= 1
        keys = [
            scheme.order_key(labeled.label_of(n))
            for n in labeled.nodes_in_order
        ]
        assert keys == sorted(keys)

    def test_table4_prime_formula(self, fresh_hamlet):
        """sc_recomputed == total_groups_after − insert_position // 5."""
        scheme = prime_scheme()
        labeled = scheme.label_document(fresh_hamlet)
        acts = [c for c in fresh_hamlet.root.children if c.name == "act"]
        target = acts[2]
        position = labeled.nodes_in_order.index(target)
        stats = scheme.insert_subtree(
            labeled, fresh_hamlet.root, target.index_in_parent, Node.element("act")
        )
        total_groups = -(-labeled.node_count() // GROUP_SIZE)
        assert stats.sc_recomputed == total_groups - position // GROUP_SIZE
