"""Interval codecs behind containment labeling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LengthFieldOverflow, PrecisionExhausted, RelabelRequired
from repro.labeling.codecs import (
    FBinaryCodec,
    FCDBSCodec,
    FloatPointCodec,
    QEDCodec,
    VBinaryCodec,
    VCDBSCodec,
)

ALL_CODECS = [
    VBinaryCodec,
    FBinaryCodec,
    FloatPointCodec,
    VCDBSCodec,
    FCDBSCodec,
    QEDCodec,
]


@pytest.mark.parametrize("codec_cls", ALL_CODECS)
class TestCommonContract:
    def test_bulk_sorted(self, codec_cls):
        codec = codec_cls()
        values = codec.bulk(64)
        keys = [codec.key(v) for v in values]
        assert all(a < b for a, b in zip(keys, keys[1:]))

    def test_bulk_count(self, codec_cls):
        codec = codec_cls()
        assert len(codec.bulk(37)) == 37

    def test_bits_positive(self, codec_cls):
        codec = codec_cls()
        for value in codec.bulk(20):
            assert codec.bits(value) > 0

    def test_repr(self, codec_cls):
        assert codec_cls.name in repr(codec_cls())


class TestVBinary:
    def test_no_gap_between_consecutive(self):
        codec = VBinaryCodec()
        codec.bulk(10)
        with pytest.raises(RelabelRequired):
            codec.between(4, 5)

    def test_gap_after_deletion_usable(self):
        codec = VBinaryCodec()
        codec.bulk(10)
        assert codec.between(4, 6) == 5

    def test_append_at_end(self):
        codec = VBinaryCodec()
        codec.bulk(10)
        assert codec.between(10, None) == 11

    def test_open_left(self):
        codec = VBinaryCodec()
        codec.bulk(10)
        with pytest.raises(RelabelRequired):
            codec.between(None, 1)

    def test_bits_include_length_field(self):
        codec = VBinaryCodec()
        codec.bulk(18)  # max length 5 -> 3-bit field
        assert codec.bits(18) == 5 + 3
        assert codec.bits(1) == 1 + 3

    def test_not_dynamic(self):
        assert VBinaryCodec.dynamic is False


class TestFBinary:
    def test_width_byte_aligned(self):
        codec = FBinaryCodec()
        codec.bulk(18)  # 5 bits -> 8
        assert codec.bits(7) == 8
        codec.bulk(300)  # 9 bits -> 16
        assert codec.bits(7) == 16

    def test_matches_fcdbs_width(self):
        fb, fc = FBinaryCodec(), FCDBSCodec()
        fb.bulk(1000)
        values = fc.bulk(1000)
        assert fb.bits(1) == fc.bits(values[0])


class TestFloatPoint:
    def test_bulk_integers(self):
        codec = FloatPointCodec()
        values = codec.bulk(5)
        assert [float(v) for v in values] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_midpoint(self):
        codec = FloatPointCodec()
        middle = codec.between(np.float32(1.0), np.float32(2.0))
        assert 1.0 < float(middle) < 2.0

    def test_precision_exhaustion_around_20_inserts(self):
        """The paper's "at most 18 nodes at a fixed place" claim."""
        codec = FloatPointCodec()
        left, right = np.float32(1.0), np.float32(2.0)
        inserted = 0
        with pytest.raises(PrecisionExhausted):
            for _ in range(100):
                right = codec.between(left, right)
                inserted += 1
        assert 15 <= inserted <= 30

    def test_exhaustion_faster_at_large_magnitudes(self):
        codec = FloatPointCodec()
        left, right = np.float32(100000.0), np.float32(100001.0)
        inserted = 0
        with pytest.raises(PrecisionExhausted):
            for _ in range(100):
                right = codec.between(left, right)
                inserted += 1
        assert inserted < 15

    def test_fixed_32_bits(self):
        codec = FloatPointCodec()
        assert codec.bits(np.float32(1.5)) == 32


class TestVCDBS:
    def test_bulk_is_vcdbs(self):
        from repro.core.cdbs import vcdbs_encode

        codec = VCDBSCodec()
        assert codec.bulk(18) == vcdbs_encode(18)

    def test_between_uses_algorithm1(self):
        from repro.core.bitstring import BitString

        codec = VCDBSCodec()
        codec.bulk(18)
        left = BitString.from_str("0011")
        right = BitString.from_str("01")
        assert codec.between(left, right).to01() == "00111"

    def test_tight_field_overflows(self):
        from repro.core.bitstring import BitString

        codec = VCDBSCodec(field_bits=3)  # codes up to 7 bits
        codec.bulk(18)
        left = BitString.from_str("0011111")
        with pytest.raises(LengthFieldOverflow):
            codec.between(left, BitString.from_str("01"))

    def test_default_capacity_is_byte_field(self):
        codec = VCDBSCodec()
        codec.bulk(18)
        assert codec.max_code_bits == 255

    def test_one_bit_tail_edit(self):
        assert VCDBSCodec().tail_bits_modified() == 1


class TestFCDBS:
    def test_all_bulk_codes_padded(self):
        codec = FCDBSCodec()
        values = codec.bulk(300)  # 9 bits -> 16-wide
        assert {len(v) for v in values} == {16}

    def test_between_restores_width(self):
        codec = FCDBSCodec()
        values = codec.bulk(18)
        middle = codec.between(values[3], values[4])
        assert len(middle) == codec.width
        assert values[3] < middle < values[4]

    def test_overflow_at_width(self):
        codec = FCDBSCodec()
        values = codec.bulk(18)  # width 8
        left, right = values[3], values[4]
        with pytest.raises(LengthFieldOverflow):
            for _ in range(20):
                left = codec.between(left, right)


class TestQEDCodec:
    def test_never_overflows(self):
        codec = QEDCodec()
        values = codec.bulk(18)
        left, right = values[0], values[1]
        for _ in range(200):
            left = codec.between(left, right)
        assert left < right

    def test_two_bit_tail_edit(self):
        assert QEDCodec().tail_bits_modified() == 2

    def test_bits_include_separator(self):
        codec = QEDCodec()
        assert codec.bits("2") == 4
