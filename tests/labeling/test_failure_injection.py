"""Failure injection: updates must be atomic when codecs blow up."""

from __future__ import annotations

import pytest

from repro.labeling import make_scheme
from repro.labeling.containment import v_cdbs_containment
from repro.labeling.prefix import qed_prefix
from repro.xmltree import Node, parse_document


class _Boom(RuntimeError):
    pass


def snapshot(labeled):
    return (
        [id(n) for n in labeled.nodes_in_order],
        dict(labeled.labels),
        {tag: list(bucket) for tag, bucket in labeled.tag_index.items()},
    )


class TestContainmentAtomicity:
    def test_failing_codec_leaves_document_untouched(self):
        document = parse_document("<r><a/><b/></r>")
        scheme = v_cdbs_containment()
        labeled = scheme.label_document(document)
        before = snapshot(labeled)
        child_count = len(document.root.children)

        def boom(left, right):
            raise _Boom("disk on fire")

        scheme.codec.between = boom  # type: ignore[assignment]
        with pytest.raises(_Boom):
            scheme.insert_subtree(labeled, document.root, 1, Node.element("x"))
        assert snapshot(labeled) == before
        assert len(document.root.children) == child_count

    def test_failing_codec_in_run_insert(self):
        document = parse_document("<r><a/><b/></r>")
        scheme = v_cdbs_containment()
        labeled = scheme.label_document(document)
        before = snapshot(labeled)

        def boom(left, right):
            raise _Boom("no")

        scheme.codec.between = boom  # type: ignore[assignment]
        with pytest.raises(_Boom):
            scheme.insert_run(
                labeled, document.root, 0, [Node.element("x"), Node.element("y")]
            )
        assert snapshot(labeled) == before


class TestPrefixAtomicity:
    def test_failing_policy_leaves_document_untouched(self):
        document = parse_document("<r><a/><b/></r>")
        scheme = qed_prefix()
        labeled = scheme.label_document(document)
        before = snapshot(labeled)

        def boom(left, right):
            raise _Boom("no")

        scheme.policy.between = boom  # type: ignore[assignment]
        with pytest.raises(_Boom):
            scheme.insert_subtree(labeled, document.root, 1, Node.element("x"))
        assert snapshot(labeled) == before


class TestOrdPathLevelSemantics:
    """Example 2.1 of the paper: OrdPath's careted '2.1' is a *sibling*
    of '1' and '3' (same level), unlike a Dewey '2.1' which would be a
    child — the semantics our ordinal-tuple labels must realise."""

    def test_careted_insert_is_same_level(self):
        document = parse_document("<r><a/><b/></r>")
        scheme = make_scheme("OrdPath1-Prefix")
        labeled = scheme.label_document(document)
        new = Node.element("mid")
        scheme.insert_subtree(labeled, document.root, 1, new)
        a_label = labeled.label_of(document.root.children[0])
        mid_label = labeled.label_of(new)
        assert mid_label == ((2, 1),)  # the caret through even 2
        assert scheme.level_of(mid_label) == scheme.level_of(a_label)
        assert scheme.is_sibling(a_label, mid_label)
        assert scheme.is_parent(
            labeled.label_of(document.root), mid_label
        )

    def test_deep_caret_chain_keeps_level(self):
        document = parse_document("<r><a/><b/></r>")
        scheme = make_scheme("OrdPath1-Prefix")
        labeled = scheme.label_document(document)
        target = document.root.children[1]
        for step in range(10):
            node = Node.element(f"n{step}")
            scheme.insert_subtree(
                labeled, document.root, target.index_in_parent, node
            )
        levels = {
            scheme.level_of(labeled.label_of(c))
            for c in document.root.children
        }
        assert levels == {2}
