"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.datasets import build_hamlet
from repro.labeling import scheme_names
from repro.xmltree import Document, Node, ShapeSpec, generate_element_tree


@pytest.fixture(scope="session")
def hamlet() -> Document:
    """The Table 4 update target (session-scoped: builders are pure)."""
    return build_hamlet()


@pytest.fixture()
def fresh_hamlet() -> Document:
    """A private Hamlet copy for tests that mutate the tree."""
    return build_hamlet()


@pytest.fixture(scope="session")
def small_document() -> Document:
    """A small deterministic random document (~300 nodes)."""
    rng = random.Random(42)
    # tags[0] names the root's level; children start at tags[1], so the
    # vocabulary the tests query by ("a", "b", ...) starts there.
    spec = ShapeSpec(
        tags=("root", "a", "b", "c", "d"), max_depth=6, subtree_range=(2, 9)
    )
    return Document(generate_element_tree("root", 300, spec, rng), "small")


def make_small_document(seed: int, size: int = 200) -> Document:
    """Helper for tests that need several distinct random documents."""
    rng = random.Random(seed)
    spec = ShapeSpec(
        tags=("root", "a", "b", "c"), max_depth=5, subtree_range=(2, 8)
    )
    return Document(generate_element_tree("root", size, spec, rng), f"doc{seed}")


ALL_SCHEME_NAMES = tuple(scheme_names())
