"""Replication utilities (the scaled-D5 query corpus)."""

from __future__ import annotations

import pytest

from repro.datasets import copy_document, copy_subtree, replicate, scaled_d5
from repro.xmltree import Collection, parse_document


@pytest.fixture()
def doc():
    return parse_document('<r a="1"><x>t</x><y/></r>', name="orig")


class TestCopy:
    def test_deep_copy_equal_structure(self, doc):
        clone = copy_subtree(doc.root)
        flat = lambda n: [(c.kind, c.name, c.value) for c in n.pre_order()]
        assert flat(clone) == flat(doc.root)

    def test_deep_copy_is_independent(self, doc):
        clone = copy_document(doc, "clone")
        clone.root.children[1].detach()
        assert doc.root.children[1].name == "x"
        assert doc.node_count() == 5

    def test_copy_renames(self, doc):
        assert copy_document(doc, "new").name == "new"
        assert copy_document(doc).name == "orig"


class TestReplicate:
    def test_factor(self, doc):
        collection = replicate(Collection("C", [doc]), 4)
        assert len(collection) == 4
        assert collection.total_nodes() == 4 * doc.node_count()

    def test_names_unique(self, doc):
        collection = replicate(Collection("C", [doc]), 3)
        names = [d.name for d in collection]
        assert len(set(names)) == 3

    def test_documents_independent(self, doc):
        collection = replicate(Collection("C", [doc]), 2)
        first, second = collection.documents
        first.root.children[1].detach()
        assert second.node_count() == 5

    def test_bad_factor(self, doc):
        with pytest.raises(ValueError):
            replicate(Collection("C", [doc]), 0)


class TestScaledD5:
    def test_scaled_counts(self):
        collection = scaled_d5(3, fraction=0.02)
        base_total = int(179_689 * 0.02)
        assert collection.total_nodes() == 3 * base_total

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            scaled_d5(2, fraction=0)
