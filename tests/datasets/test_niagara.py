"""The D1–D6 stand-ins: exact totals, Table 2 shape targets."""

from __future__ import annotations

import pytest

from repro.datasets import DATASET_SPECS, build_dataset, dataset_names


class TestRegistry:
    def test_dataset_names(self):
        assert dataset_names() == ["D1", "D2", "D3", "D4", "D5", "D6"]

    def test_specs_present_for_generated_sets(self):
        assert set(DATASET_SPECS) == {"D1", "D2", "D3", "D4", "D6"}

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            build_dataset("D9")

    @pytest.mark.parametrize("fraction", [0, -0.5, 1.5])
    def test_bad_fraction(self, fraction):
        with pytest.raises(ValueError):
            build_dataset("D1", fraction=fraction)


class TestShapes:
    @pytest.mark.parametrize("name", ["D1", "D2", "D3"])
    def test_fractional_totals_exact(self, name):
        spec = DATASET_SPECS[name]
        collection = build_dataset(name, fraction=0.1)
        assert collection.total_nodes() == int(spec.total_nodes * 0.1)

    def test_d5_fraction(self):
        collection = build_dataset("D5", fraction=0.05)
        assert collection.total_nodes() == int(179_689 * 0.05)

    def test_full_d1_matches_table2(self):
        spec = DATASET_SPECS["D1"]
        collection = build_dataset("D1")
        stats = collection.stats()
        assert stats["total_nodes"] == spec.total_nodes == 26_044
        assert stats["files"] == spec.files == 490
        assert stats["max_depth"] <= spec.max_depth

    def test_depth_limits_respected(self):
        for name in ("D1", "D2", "D3"):
            spec = DATASET_SPECS[name]
            collection = build_dataset(name, fraction=0.05)
            assert collection.stats()["max_depth"] <= spec.max_depth

    def test_deterministic(self):
        first = build_dataset("D1", fraction=0.02)
        second = build_dataset("D1", fraction=0.02)
        flat1 = [
            (n.kind, n.name, n.value)
            for doc in first
            for n in doc.pre_order()
        ]
        flat2 = [
            (n.kind, n.name, n.value)
            for doc in second
            for n in doc.pre_order()
        ]
        assert flat1 == flat2
