"""The D5/Hamlet builders — Table 4's arithmetic depends on them."""

from __future__ import annotations

import pytest

from repro.datasets import (
    HAMLET_ACT_SIZES,
    HAMLET_TOTAL_NODES,
    build_d5,
    build_hamlet,
    build_play,
)
from repro.datasets.shakespeare import build_act, build_scene
import random


class TestHamlet:
    def test_total_node_count(self, hamlet):
        assert hamlet.node_count() == HAMLET_TOTAL_NODES == 6636

    def test_five_acts(self, hamlet):
        acts = [c for c in hamlet.root.children if c.name == "act"]
        assert len(acts) == 5

    def test_act_subtree_sizes_match_table4(self, hamlet):
        acts = [c for c in hamlet.root.children if c.name == "act"]
        assert tuple(a.subtree_size() for a in acts) == HAMLET_ACT_SIZES

    def test_table4_derivation(self, hamlet):
        """ancestors(1) + trailing acts == the paper's re-label counts."""
        acts = [c for c in hamlet.root.children if c.name == "act"]
        sizes = [a.subtree_size() for a in acts]
        expected = [6596, 5121, 3932, 2431, 1300]
        for case in range(5):
            assert 1 + sum(sizes[case:]) == expected[case]

    def test_front_matter_is_40_nodes(self, hamlet):
        non_act = [c for c in hamlet.root.children if c.name != "act"]
        assert sum(c.subtree_size() for c in non_act) == 40

    def test_deterministic(self):
        first = [(n.kind, n.name) for n in build_hamlet().pre_order()]
        second = [(n.kind, n.name) for n in build_hamlet().pre_order()]
        assert first == second

    def test_structure_has_query_targets(self, hamlet):
        assert hamlet.elements_by_tag("scene")
        assert hamlet.elements_by_tag("speech")
        assert hamlet.elements_by_tag("speaker")
        assert hamlet.elements_by_tag("line")
        assert hamlet.elements_by_tag("personae")
        assert hamlet.elements_by_tag("pgroup")
        assert hamlet.elements_by_tag("grpdescr")


class TestBuilders:
    @pytest.mark.parametrize("budget", [3, 4, 5, 8, 50, 333, 1475])
    def test_act_budget_exact(self, budget):
        act = build_act(1, budget, random.Random(0))
        assert act.subtree_size() == budget

    def test_act_too_small(self):
        with pytest.raises(ValueError):
            build_act(1, 2, random.Random(0))

    @pytest.mark.parametrize("budget", [3, 4, 5, 6, 7, 23, 107])
    def test_scene_budget_exact(self, budget):
        scene = build_scene(1, budget, random.Random(0))
        assert scene.subtree_size() == budget

    def test_scene_too_small(self):
        with pytest.raises(ValueError):
            build_scene(1, 2, random.Random(0))

    @pytest.mark.parametrize("total", [60, 500, 4807])
    def test_play_total_exact(self, total):
        play = build_play("test", total, seed=1)
        assert play.node_count() == total

    def test_play_too_small(self):
        with pytest.raises(ValueError):
            build_play("tiny", 10, seed=1)

    def test_play_has_five_acts(self):
        play = build_play("test", 2000, seed=2)
        assert len(play.elements_by_tag("act")) == 5


class TestD5:
    def test_full_d5_shape(self):
        collection = build_d5(total_nodes=30_000, files=7)
        assert len(collection) == 7
        assert collection.total_nodes() == 30_000

    def test_first_file_is_hamlet(self):
        collection = build_d5(total_nodes=30_000, files=7)
        assert collection.documents[0].name == "hamlet"
        assert collection.documents[0].node_count() == HAMLET_TOTAL_NODES

    def test_small_budget_skips_hamlet(self):
        collection = build_d5(total_nodes=1000, files=2)
        assert collection.total_nodes() == 1000
        assert all(doc.name != "hamlet" for doc in collection)
