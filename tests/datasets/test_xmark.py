"""The XMark-style auction corpus."""

from __future__ import annotations

import pytest

from repro.datasets import XMARK_QUERIES, build_xmark
from repro.labeling import make_scheme
from repro.query import QueryEngine, evaluate_reference


class TestBuilder:
    @pytest.mark.parametrize("total", [500, 2_000, 12_345])
    def test_exact_totals(self, total):
        assert build_xmark(total).node_count() == total

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            build_xmark(50)

    def test_deterministic(self):
        flat = lambda d: [(n.kind, n.name, n.value) for n in d.pre_order()]
        assert flat(build_xmark(3_000)) == flat(build_xmark(3_000))

    def test_skeleton(self):
        document = build_xmark(3_000)
        assert document.root.name == "site"
        sections = [c.name for c in document.root.children]
        assert sections == ["regions", "people", "open_auctions", "closed_auctions"]
        regions = document.root.children[0]
        assert len(regions.children) == 6

    def test_query_targets_populated(self):
        document = build_xmark(6_000)
        for query_id, query in XMARK_QUERIES.items():
            assert evaluate_reference(document, query), query_id


class TestQueriesAcrossSchemes:
    @pytest.mark.parametrize(
        "scheme_name",
        ["V-CDBS-Containment", "QED-Prefix", "Prime", "OrdPath1-Prefix"],
    )
    def test_engine_agrees_with_reference(self, scheme_name):
        document = build_xmark(3_000)
        labeled = make_scheme(scheme_name).label_document(document)
        engine = QueryEngine(labeled)
        for query_id, query in XMARK_QUERIES.items():
            expected = [id(n) for n in evaluate_reference(document, query)]
            got = [id(n) for n in engine.evaluate(query)]
            assert got == expected, (scheme_name, query_id)

    def test_relational_agrees_too(self):
        from repro.relational import RelationalQueryEngine, shred

        document = build_xmark(3_000)
        labeled = make_scheme("V-CDBS-Containment").label_document(document)
        memory = QueryEngine(labeled)
        relational = RelationalQueryEngine(shred(labeled))
        for query_id, query in XMARK_QUERIES.items():
            expected = [id(n) for n in memory.evaluate(query)]
            got = [id(n) for n in relational.evaluate(query)]
            assert got == expected, query_id
