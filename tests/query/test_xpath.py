"""The XPath-fragment parser."""

from __future__ import annotations

import pytest

from repro.errors import XPathSyntaxError
from repro.query import (
    ExistsPredicate,
    Path,
    PositionPredicate,
    Step,
    TABLE3_QUERIES,
    parse_query,
)


class TestBasicPaths:
    def test_single_child_step(self):
        path = parse_query("/play")
        assert path.absolute
        assert path.steps == (Step("child", "play"),)

    def test_child_chain(self):
        path = parse_query("/a/b/c")
        assert [s.axis for s in path.steps] == ["child"] * 3
        assert [s.test for s in path.steps] == ["a", "b", "c"]

    def test_descendant(self):
        path = parse_query("//line")
        assert path.steps == (Step("descendant", "line"),)

    def test_mixed_separators(self):
        path = parse_query("/play//act/scene")
        assert [s.axis for s in path.steps] == ["child", "descendant", "child"]

    def test_wildcard(self):
        path = parse_query("/play/*")
        assert path.steps[1].test is None

    def test_whitespace_tolerated(self):
        assert parse_query(" /a / b ") == parse_query("/a/b")

    def test_names_with_digits_and_dots(self):
        path = parse_query("/ns:tag.v2/x-y")
        assert path.steps[0].test == "ns:tag.v2"
        assert path.steps[1].test == "x-y"


class TestAxes:
    def test_preceding_sibling(self):
        path = parse_query("/a/preceding-sibling::*")
        assert path.steps[1].axis == "preceding-sibling"
        assert path.steps[1].test is None

    def test_following(self):
        path = parse_query("//act[2]/following::speaker")
        assert path.steps[1] == Step("following", "speaker")

    def test_following_sibling(self):
        assert parse_query("/a/following-sibling::b").steps[1].axis == (
            "following-sibling"
        )

    def test_ancestor(self):
        assert parse_query("/a/ancestor::r").steps[1].axis == "ancestor"

    def test_explicit_child_axis(self):
        assert parse_query("/child::a") == parse_query("/a")

    def test_parent_axis(self):
        assert parse_query("/a/b/parent::a").steps[2].axis == "parent"

    def test_attribute_test(self):
        step = parse_query("/a/@id").steps[1]
        assert step.attribute and step.test == "id"
        wildcard = parse_query("/a/@*").steps[1]
        assert wildcard.attribute and wildcard.test is None

    def test_attribute_on_non_child_axis_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_query("/a/following::@id")

    def test_unknown_axis(self):
        with pytest.raises(XPathSyntaxError):
            parse_query("/a/preceding::b")

    def test_dslash_with_axis_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_query("/a//preceding-sibling::b")


class TestPredicates:
    def test_positional(self):
        path = parse_query("/play/act[4]")
        assert path.steps[1].predicates == (PositionPredicate(4),)

    def test_zero_position_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_query("/a[0]")

    def test_relative_child_exists(self):
        path = parse_query("/personae[./title]")
        (predicate,) = path.steps[0].predicates
        assert isinstance(predicate, ExistsPredicate)
        assert not predicate.path.absolute
        assert predicate.path.steps == (Step("child", "title"),)

    def test_relative_descendant_exists(self):
        path = parse_query("/pgroup[.//grpdescr]")
        (predicate,) = path.steps[0].predicates
        assert predicate.path.steps == (Step("descendant", "grpdescr"),)

    def test_bare_name_shorthand(self):
        assert parse_query("/a[title]") == parse_query("/a[./title]")

    def test_multi_step_predicate_path(self):
        path = parse_query("/a[./b//c]")
        (predicate,) = path.steps[0].predicates
        assert [s.axis for s in predicate.path.steps] == ["child", "descendant"]

    def test_stacked_predicates(self):
        path = parse_query("/a[./b][2]")
        kinds = [type(p) for p in path.steps[0].predicates]
        assert kinds == [ExistsPredicate, PositionPredicate]

    def test_absolute_predicate_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_query("/a[/b]")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "a/b", "/", "/a[", "/a[]", "/a[b", "/a]", "/a/", "/a[@id]", "/a$b"],
    )
    def test_rejected(self, text):
        with pytest.raises(XPathSyntaxError):
            parse_query(text)


class TestRoundTrip:
    @pytest.mark.parametrize("query", list(TABLE3_QUERIES.values()))
    def test_table3_queries_parse_and_reprint(self, query):
        path = parse_query(query)
        # The printed form re-parses to the identical AST.
        assert parse_query(str(path)) == path

    def test_str_of_simple_paths(self):
        assert str(parse_query("/a//b[3]")) == "/a//b[3]"
