"""Twig-pattern evaluation by semi-join reduction vs the general engine."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import UnsupportedOperationError
from repro.labeling import make_scheme
from repro.query import QueryEngine
from repro.query.twig import compile_twig, evaluate_twig
from repro.xmltree import parse_document

from tests.conftest import make_small_document

TWIG_QUERIES = [
    "/root",
    "/root/a",
    "//b",
    "//a/b",
    "/root//c",
    "/root/*",
    "//a[./b]",
    "//a[.//c]/b",
    "//a[./b][./c]",
    "//a[./b[./c]]",
    "/nомatch/x".replace("о", "o"),
]

FAMILY_SCHEMES = (
    "V-CDBS-Containment",
    "QED-Prefix",
    "Prime",
    "F-Binary-Containment",
)


class TestCompile:
    def test_simple_chain(self):
        twig = compile_twig("/a/b//c")
        assert twig.test == "a" and twig.axis == "child"
        assert twig.children[0].test == "b"
        assert twig.children[0].children[0].axis == "descendant"
        assert twig.children[0].children[0].output

    def test_predicates_become_branches(self):
        twig = compile_twig("//a[./b][.//c]/d")
        tests = sorted(child.test for child in twig.children)
        assert tests == ["b", "c", "d"]
        outputs = [child for child in twig.children if child.output]
        assert [node.test for node in outputs] == ["d"]

    def test_predicate_chains_not_output(self):
        twig = compile_twig("//a[./b/c]")
        branch = twig.children[0]
        assert not branch.output and not branch.children[0].output
        assert twig.output  # the main tail

    def test_describe(self):
        assert "//" in compile_twig("//a/b").describe()

    @pytest.mark.parametrize(
        "query",
        ["/a[2]", "/a/preceding-sibling::b", "//a/following::b", "/a/parent::b"],
    )
    def test_non_twig_rejected(self, query):
        with pytest.raises(UnsupportedOperationError):
            compile_twig(query)


class TestEquivalence:
    @pytest.mark.parametrize("scheme_name", FAMILY_SCHEMES)
    def test_matches_general_engine(self, scheme_name):
        document = make_small_document(seed=71, size=250)
        labeled = make_scheme(scheme_name).label_document(document)
        engine = QueryEngine(labeled)
        for query in TWIG_QUERIES:
            expected = [id(n) for n in engine.evaluate(query)]
            got = [id(n) for n in evaluate_twig(labeled, query)]
            assert got == expected, query

    def test_attribute_twigs(self):
        document = parse_document('<r><a id="1"><b/></a><a><b/></a></r>')
        labeled = make_scheme("QED-Containment").label_document(document)
        engine = QueryEngine(labeled)
        for query in ("//a[./@id]/b", "/r/a/@id"):
            expected = [id(n) for n in engine.evaluate(query)]
            assert [
                id(n) for n in evaluate_twig(labeled, query)
            ] == expected, query

    def test_deep_branch_pruning(self):
        # Only the <a> with the full sub-pattern survives reduction.
        document = parse_document(
            "<r><a><b><c/></b></a><a><b/></a><a/></r>"
        )
        labeled = make_scheme("V-CDBS-Containment").label_document(document)
        result = evaluate_twig(labeled, "//a[./b[./c]]")
        assert len(result) == 1
        assert result[0].children[0].children[0].name == "c"

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_property_equivalence_random_documents(self, seed):
        document = make_small_document(seed=seed, size=150)
        labeled = make_scheme("V-CDBS-Containment").label_document(document)
        engine = QueryEngine(labeled)
        for query in ("//a[./b]", "//b/c", "/root//a[.//c]/b"):
            expected = [id(n) for n in engine.evaluate(query)]
            got = [id(n) for n in evaluate_twig(labeled, query)]
            assert got == expected, (seed, query)
