"""Direct unit tests of the structural-join strategies."""

from __future__ import annotations

import pytest

from repro.labeling import make_scheme
from repro.query.joins import (
    join_ancestor,
    join_child,
    join_descendant,
    parent_key,
)
from repro.xmltree import parse_document

DOC_TEXT = "<r><a><b/><b><c/></b></a><a><c/></a><b/></r>"


@pytest.fixture(
    params=["V-CDBS-Containment", "QED-Prefix", "Prime", "F-Binary-Containment"]
)
def fixture(request):
    document = parse_document(DOC_TEXT)
    labeled = make_scheme(request.param).label_document(document)
    return document, labeled


def nodes_of(labeled, tag):
    return labeled.tag_index.get(tag, [])


class TestJoinChild:
    def test_basic(self, fixture):
        document, labeled = fixture
        a_nodes = nodes_of(labeled, "a")
        b_nodes = nodes_of(labeled, "b")
        result = join_child(labeled, a_nodes, b_nodes)
        # b children of a: the two inside the first <a>.
        assert len(result) == 2
        assert all(node.parent.name == "a" for node in result)

    def test_empty_inputs(self, fixture):
        document, labeled = fixture
        assert join_child(labeled, [], nodes_of(labeled, "b")) == []
        assert join_child(labeled, nodes_of(labeled, "a"), []) == []

    def test_no_matches(self, fixture):
        document, labeled = fixture
        c_nodes = nodes_of(labeled, "c")
        a_nodes = nodes_of(labeled, "a")
        # No <a> is a child of a <c>.
        assert join_child(labeled, c_nodes, a_nodes) == []

    def test_output_in_document_order(self, fixture):
        document, labeled = fixture
        result = join_child(
            labeled, [document.root], nodes_of(labeled, "a") + []
        )
        keys = [
            labeled.scheme.order_key(labeled.label_of(n)) for n in result
        ]
        assert keys == sorted(keys)


class TestJoinDescendant:
    def test_basic(self, fixture):
        document, labeled = fixture
        a_nodes = nodes_of(labeled, "a")
        c_nodes = nodes_of(labeled, "c")
        result = join_descendant(labeled, a_nodes, c_nodes)
        assert len(result) == 2  # both <c>s are under some <a>

    def test_strictness(self, fixture):
        document, labeled = fixture
        a_nodes = nodes_of(labeled, "a")
        # A node is not its own descendant.
        assert join_descendant(labeled, a_nodes, a_nodes) == []

    def test_from_root(self, fixture):
        document, labeled = fixture
        everything = [
            n for n in labeled.nodes_in_order if n is not document.root
        ]
        result = join_descendant(labeled, [document.root], everything)
        assert len(result) == len(everything)


class TestJoinAncestor:
    def test_basic(self, fixture):
        document, labeled = fixture
        c_nodes = nodes_of(labeled, "c")
        a_nodes = nodes_of(labeled, "a")
        result = join_ancestor(labeled, c_nodes, a_nodes)
        assert len(result) == 2  # both <a>s contain a <c>

    def test_root_is_everyones_ancestor(self, fixture):
        document, labeled = fixture
        result = join_ancestor(
            labeled, nodes_of(labeled, "c"), [document.root]
        )
        assert result == [document.root]


class TestParentKey:
    def test_same_parent_same_key(self, fixture):
        document, labeled = fixture
        first_a = nodes_of(labeled, "a")[0]
        b_children = [c for c in first_a.children if c.name == "b"]
        keys = {parent_key(labeled, node) for node in b_children}
        assert len(keys) == 1

    def test_different_parents_different_keys(self, fixture):
        document, labeled = fixture
        c_nodes = nodes_of(labeled, "c")
        keys = {parent_key(labeled, node) for node in c_nodes}
        assert len(keys) == 2
