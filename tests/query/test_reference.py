"""Hand-checked semantics of the reference (tree-walking) evaluator."""

from __future__ import annotations

import pytest

from repro.query import evaluate_reference
from repro.xmltree import parse_document

DOC = parse_document(
    """
    <play>
      <title>T</title>
      <personae>
        <title>Persons</title>
        <persona>P1</persona>
        <pgroup><persona>P2</persona><grpdescr>g</grpdescr></pgroup>
        <persona>P3</persona>
      </personae>
      <act>
        <title>A1</title>
        <scene><speech><speaker>S1</speaker><line>l1</line><line>l2</line></speech></scene>
      </act>
      <act>
        <title>A2</title>
        <scene><speech><speaker>S2</speaker><line>l3</line></speech></scene>
      </act>
    </play>
    """
)


def names(nodes):
    return [n.name for n in nodes]


def texts(nodes):
    return [n.text_content() for n in nodes]


class TestChildAndDescendant:
    def test_root_match(self):
        assert names(evaluate_reference(DOC, "/play")) == ["play"]

    def test_root_mismatch(self):
        assert evaluate_reference(DOC, "/nope") == []

    def test_child_chain(self):
        assert texts(evaluate_reference(DOC, "/play/act/title")) == ["A1", "A2"]

    def test_descendant(self):
        assert len(evaluate_reference(DOC, "//line")) == 3

    def test_descendant_includes_root_level(self):
        assert names(evaluate_reference(DOC, "//play")) == ["play"]

    def test_wildcard(self):
        assert names(evaluate_reference(DOC, "/play/*")) == [
            "title",
            "personae",
            "act",
            "act",
        ]

    def test_results_in_document_order(self):
        lines = evaluate_reference(DOC, "//line")
        assert texts(lines) == ["l1", "l2", "l3"]


class TestPredicates:
    def test_positional(self):
        acts = evaluate_reference(DOC, "/play/act[2]")
        assert texts(evaluate_reference(DOC, "/play/act[2]/title")) == ["A2"]
        assert len(acts) == 1

    def test_positional_out_of_range(self):
        assert evaluate_reference(DOC, "/play/act[9]") == []

    def test_positional_is_per_parent(self):
        # //line[1]: the first line of EACH speech.
        assert texts(evaluate_reference(DOC, "//line[1]")) == ["l1", "l3"]

    def test_exists_child(self):
        assert names(evaluate_reference(DOC, "/play/personae[./title]")) == [
            "personae"
        ]
        assert evaluate_reference(DOC, "/play/personae[./persona_x]") == []

    def test_exists_descendant(self):
        found = evaluate_reference(DOC, "/play//pgroup[.//grpdescr]")
        assert names(found) == ["pgroup"]

    def test_q2_shape(self):
        found = evaluate_reference(
            DOC, "/play//personae[./title]/pgroup[.//grpdescr]/persona"
        )
        assert texts(found) == ["P2"]


class TestOrderedAxes:
    def test_preceding_sibling(self):
        found = evaluate_reference(
            DOC, "/play/personae/persona[2]/preceding-sibling::*"
        )
        assert names(found) == ["title", "persona", "pgroup"]

    def test_preceding_sibling_with_test(self):
        found = evaluate_reference(
            DOC, "/play/personae/persona[2]/preceding-sibling::persona"
        )
        assert texts(found) == ["P1"]

    def test_following_sibling(self):
        found = evaluate_reference(
            DOC, "/play/personae/following-sibling::act"
        )
        assert len(found) == 2

    def test_following_excludes_descendants(self):
        found = evaluate_reference(DOC, "//act[1]/following::line")
        assert texts(found) == ["l3"]

    def test_following_includes_non_siblings(self):
        found = evaluate_reference(DOC, "//personae/following::speaker")
        assert texts(found) == ["S1", "S2"]

    def test_ancestor(self):
        found = evaluate_reference(DOC, "//line/ancestor::act")
        assert len(found) == 2  # deduped

    def test_q4_shape(self):
        found = evaluate_reference(DOC, "//act[2]/following::speaker")
        assert texts(found) == []  # nothing after act 2's speaker? S2 is inside act[2]
        found_after_first = evaluate_reference(DOC, "//act[1]/following::speaker")
        assert texts(found_after_first) == ["S2"]
