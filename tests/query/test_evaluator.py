"""Differential testing: the label-driven engine vs the reference
evaluator, for every scheme family (DESIGN.md invariant 8)."""

from __future__ import annotations

import random

import pytest

from repro.datasets import build_play
from repro.labeling import make_scheme, scheme_names
from repro.query import (
    CollectionQueryEngine,
    QueryEngine,
    TABLE3_QUERIES,
    evaluate_reference,
    parse_query,
)
from repro.xmltree import Collection, Node, parse_document

from tests.conftest import make_small_document

ALL = tuple(scheme_names())

GENERIC_QUERIES = [
    "/root",
    "/root/a",
    "//b",
    "//a/b",
    "/root//c",
    "/root/*",
    "//a[1]",
    "//b[2]",
    "//a[./b]",
    "//a[.//c]",
    "//a[2]/following::b",
    "//b[1]/preceding-sibling::*",
    "//c/ancestor::a",
    "//a/following-sibling::a",
]


@pytest.fixture(scope="module", params=ALL)
def play_engine(request):
    document = build_play("queryplay", 900, seed=31)
    labeled = make_scheme(request.param).label_document(document)
    return document, QueryEngine(labeled)


class TestTable3Differential:
    @pytest.mark.parametrize("query_id", list(TABLE3_QUERIES))
    def test_matches_reference(self, play_engine, query_id):
        document, engine = play_engine
        query = TABLE3_QUERIES[query_id]
        expected = evaluate_reference(document, query)
        got = engine.evaluate(query)
        assert [id(n) for n in got] == [id(n) for n in expected]


class TestGenericDifferential:
    @pytest.mark.parametrize("scheme_name", ALL)
    def test_random_documents(self, scheme_name):
        document = make_small_document(seed=55, size=220)
        labeled = make_scheme(scheme_name).label_document(document)
        engine = QueryEngine(labeled)
        for query in GENERIC_QUERIES:
            expected = evaluate_reference(document, query)
            got = engine.evaluate(query)
            assert [id(n) for n in got] == [id(n) for n in expected], query


class TestEngineBehaviour:
    def test_count(self):
        document = parse_document("<r><a/><a/></r>")
        engine = QueryEngine(
            make_scheme("QED-Containment").label_document(document)
        )
        assert engine.count("/r/a") == 2

    def test_accepts_parsed_path(self):
        document = parse_document("<r><a/></r>")
        engine = QueryEngine(
            make_scheme("QED-Prefix").label_document(document)
        )
        assert engine.count(parse_query("/r/a")) == 1

    def test_empty_result_short_circuit(self):
        document = parse_document("<r><a/></r>")
        engine = QueryEngine(
            make_scheme("QED-Prefix").label_document(document)
        )
        assert engine.evaluate("/zzz/a/b") == []

    def test_scan_bytes_accumulates(self):
        document = parse_document("<r>" + "<a/>" * 30 + "</r>")
        engine = QueryEngine(
            make_scheme("V-CDBS-Containment").label_document(document)
        )
        engine.evaluate("/r/a")
        assert engine.scan_bytes > 0

    def test_scan_bytes_bigger_for_bigger_labels(self):
        # Prime's label size blows up with depth (path products), which
        # is what drives its Figure 6 response times.
        body = "<a>" * 8 + "<a/>" + "</a>" * 8
        document = parse_document(f"<r>{body * 3}</r>")
        small = QueryEngine(
            make_scheme("V-CDBS-Containment").label_document(document)
        )
        big = QueryEngine(make_scheme("Prime").label_document(document))
        small.evaluate("//a")
        big.evaluate("//a")
        assert big.scan_bytes > small.scan_bytes

    def test_query_after_update(self):
        document = parse_document("<r><a/><a/></r>")
        labeled = make_scheme("V-CDBS-Containment").label_document(document)
        engine = QueryEngine(labeled)
        assert engine.count("/r/a") == 2
        labeled.scheme.insert_subtree(labeled, document.root, 1, Node.element("a"))
        assert engine.count("/r/a") == 3
        expected = evaluate_reference(document, "/r/a")
        assert [id(n) for n in engine.evaluate("/r/a")] == [
            id(n) for n in expected
        ]


class TestCollectionEngine:
    def test_aggregates_documents(self):
        docs = [
            parse_document("<r><a/></r>", name="one"),
            parse_document("<r><a/><a/></r>", name="two"),
        ]
        labeled = [
            make_scheme("QED-Containment").label_document(d) for d in docs
        ]
        engine = CollectionQueryEngine(labeled)
        assert engine.count("/r/a") == 3

    def test_scan_bytes_summed(self):
        docs = [parse_document("<r><a/></r>") for _ in range(3)]
        labeled = [
            make_scheme("V-CDBS-Containment").label_document(d) for d in docs
        ]
        engine = CollectionQueryEngine(labeled)
        engine.evaluate("/r/a")
        assert engine.scan_bytes == sum(e.scan_bytes for e in engine.engines)
