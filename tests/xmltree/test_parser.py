"""The hand-written XML parser."""

from __future__ import annotations

import pytest

from repro.errors import XMLParseError
from repro.xmltree.node import NodeKind
from repro.xmltree.parser import parse_document, parse_fragment


class TestHappyPath:
    def test_minimal(self):
        doc = parse_document("<root/>")
        assert doc.root.name == "root"
        assert doc.root.children == []

    def test_nested_elements(self):
        doc = parse_document("<a><b><c/></b></a>")
        assert doc.root.children[0].children[0].name == "c"

    def test_text_content(self):
        doc = parse_document("<a>hello</a>")
        assert doc.root.children[0].value == "hello"

    def test_mixed_content(self):
        doc = parse_document("<a>x<b/>y</a>")
        kinds = [c.kind for c in doc.root.children]
        assert kinds == [NodeKind.TEXT, NodeKind.ELEMENT, NodeKind.TEXT]

    def test_attributes(self):
        doc = parse_document('<a id="1" name="two"/>')
        assert doc.root.attributes() == {"id": "1", "name": "two"}

    def test_single_quoted_attribute(self):
        doc = parse_document("<a id='x'/>")
        assert doc.root.attributes() == {"id": "x"}

    def test_attributes_precede_children_in_order(self):
        doc = parse_document('<a id="1"><b/></a>')
        assert [c.kind for c in doc.root.children] == [
            NodeKind.ATTRIBUTE,
            NodeKind.ELEMENT,
        ]

    def test_xml_declaration_skipped(self):
        doc = parse_document('<?xml version="1.0"?><root/>')
        assert doc.root.name == "root"

    def test_doctype_skipped(self):
        doc = parse_document("<!DOCTYPE play [ <!ELEMENT a (b)> ]><root/>")
        assert doc.root.name == "root"

    def test_comments_dropped_by_default(self):
        doc = parse_document("<a><!-- note --><b/></a>")
        assert [c.name for c in doc.root.children] == ["b"]

    def test_comments_kept_on_request(self):
        doc = parse_document("<a><!-- note --></a>", keep_comments=True)
        assert doc.root.children[0].kind is NodeKind.COMMENT
        assert doc.root.children[0].value == " note "

    def test_cdata(self):
        doc = parse_document("<a><![CDATA[<raw> & text]]></a>")
        assert doc.root.children[0].value == "<raw> & text"

    def test_processing_instruction_inside_skipped(self):
        doc = parse_document("<a><?php echo ?><b/></a>")
        assert [c.name for c in doc.root.children] == ["b"]

    def test_whitespace_dropped_by_default(self):
        doc = parse_document("<a>\n  <b/>\n</a>")
        assert [c.kind for c in doc.root.children] == [NodeKind.ELEMENT]

    def test_whitespace_kept_on_request(self):
        doc = parse_document("<a>\n<b/></a>", keep_whitespace=True)
        assert doc.root.children[0].kind is NodeKind.TEXT

    def test_namespaced_names_kept_verbatim(self):
        doc = parse_document('<ns:a xmlns:ns="u"><ns:b/></ns:a>')
        assert doc.root.name == "ns:a"
        assert "xmlns:ns" in doc.root.attributes()

    def test_document_name(self):
        assert parse_document("<a/>", name="file1").name == "file1"


class TestEntities:
    def test_predefined(self):
        doc = parse_document("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.root.children[0].value == "<>&'\""

    def test_decimal_reference(self):
        assert parse_document("<a>&#65;</a>").root.children[0].value == "A"

    def test_hex_reference(self):
        assert parse_document("<a>&#x41;</a>").root.children[0].value == "A"

    def test_in_attribute(self):
        doc = parse_document('<a t="&amp;&#66;"/>')
        assert doc.root.attributes()["t"] == "&B"

    def test_unknown_entity(self):
        with pytest.raises(XMLParseError):
            parse_document("<a>&nope;</a>")

    def test_unterminated_entity(self):
        with pytest.raises(XMLParseError):
            parse_document("<a>&amp</a>")

    def test_bad_char_reference(self):
        with pytest.raises(XMLParseError):
            parse_document("<a>&#xZZ;</a>")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a",
            "<a b=c/>",
            '<a b="1" b="2"/>',
            "<a/><b/>",
            "<a><!-- unterminated </a>",
            "<a><![CDATA[open</a>",
            "<!DOCTYPE unterminated <a/>",
            "<1tag/>",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(XMLParseError):
            parse_document(text)

    def test_error_carries_position(self):
        with pytest.raises(XMLParseError) as info:
            parse_document("<a></b>")
        assert info.value.position > 0


class TestFragment:
    def test_fragment(self):
        node = parse_fragment("<x><y/></x>")
        assert node.name == "x"
        assert node.parent is None

    def test_fragment_requires_element(self):
        with pytest.raises(XMLParseError):
            parse_fragment("plain text")
