"""Serializer and parse/serialize round-trips."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree import (
    Document,
    Node,
    ShapeSpec,
    generate_element_tree,
    merge_adjacent_text,
    parse_document,
    serialize,
    serialize_document,
)
from repro.xmltree.node import NodeKind
from repro.xmltree.serializer import escape_attribute, escape_text


def trees_equal(a: Node, b: Node) -> bool:
    if (a.kind, a.name, a.value) != (b.kind, b.name, b.value):
        return False
    if len(a.children) != len(b.children):
        return False
    return all(trees_equal(x, y) for x, y in zip(a.children, b.children))


class TestEscaping:
    def test_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute(self):
        assert escape_attribute('say "hi" & go') == "say &quot;hi&quot; &amp; go"


class TestSerialize:
    def test_empty_element(self):
        assert serialize(Node.element("a")) == "<a/>"

    def test_text_child(self):
        root = Node.element("a")
        root.append_child(Node.text("hi"))
        assert serialize(root) == "<a>hi</a>"

    def test_attributes_in_start_tag(self):
        root = Node.element("a")
        root.append_child(Node.attribute("id", "1"))
        root.append_child(Node.element("b"))
        assert serialize(root) == '<a id="1"><b/></a>'

    def test_comment(self):
        root = Node.element("a")
        root.append_child(Node.comment(" note "))
        assert serialize(root) == "<a><!-- note --></a>"

    def test_attribute_node_directly_rejected(self):
        with pytest.raises(ValueError):
            serialize(Node.attribute("id", "1"))

    def test_pretty_indents_elements(self):
        root = Node.element("a")
        root.append_child(Node.element("b"))
        assert serialize(root, pretty=True) == "<a>\n  <b/>\n</a>"

    def test_pretty_keeps_text_inline(self):
        root = Node.element("a")
        child = root.append_child(Node.element("b"))
        child.append_child(Node.text("hi"))
        assert "<b>hi</b>" in serialize(root, pretty=True)

    def test_document_declaration(self):
        doc = Document(Node.element("a"))
        assert serialize_document(doc).startswith("<?xml version=")


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(6))
    def test_generated_documents_roundtrip(self, seed):
        rng = random.Random(seed)
        spec = ShapeSpec(tags=("a", "b", "c"), max_depth=6, subtree_range=(2, 8))
        original = Document(generate_element_tree("root", 150, spec, rng))
        # XML cannot represent adjacent text siblings distinctly;
        # normalize before demanding a faithful round-trip.
        merge_adjacent_text(original.root)
        text = serialize_document(original)
        parsed = parse_document(text, keep_whitespace=True)
        assert trees_equal(original.root, parsed.root)

    def test_merge_adjacent_text(self):
        root = Node.element("a")
        root.append_child(Node.text("x"))
        root.append_child(Node.text("y"))
        root.append_child(Node.element("b"))
        root.append_child(Node.text("z"))
        removed = merge_adjacent_text(root)
        assert removed == 1
        assert [c.value for c in root.children] == ["xy", None, "z"]

    def test_pretty_roundtrip_without_text_distortion(self):
        original = parse_document("<a><b>keep me</b><c/></a>")
        pretty = serialize(original.root, pretty=True)
        reparsed = parse_document(pretty)
        assert trees_equal(original.root, reparsed.root)

    @settings(max_examples=40)
    @given(
        st.text(
            alphabet=st.characters(
                min_codepoint=32, max_codepoint=0x2FF, exclude_characters="\r"
            ),
            max_size=40,
        )
    )
    def test_arbitrary_text_roundtrips(self, content):
        root = Node.element("a")
        root.append_child(Node.attribute("t", content))
        if content:
            root.append_child(Node.text(content))
        reparsed = parse_document(serialize(root), keep_whitespace=True)
        assert reparsed.root.attributes()["t"] == content
        if content:
            assert reparsed.root.children[1].value == content
