"""Streaming parse events and event-stream document assembly."""

from __future__ import annotations

import pytest

from repro.errors import XMLParseError
from repro.xmltree import (
    build_from_events,
    iterparse,
    parse_document,
    parse_document_streaming,
    serialize_document,
)


def flat(document):
    return [(n.kind, n.name, n.value) for n in document.pre_order()]


class TestIterparse:
    def test_event_sequence(self):
        events = list(iterparse('<r a="1">hi<b/></r>'))
        assert events == [
            ("start", "r"),
            ("attribute", ("a", "1")),
            ("text", "hi"),
            ("start", "b"),
            ("end", "b"),
            ("end", "r"),
        ]

    def test_whitespace_dropped_by_default(self):
        events = list(iterparse("<r>\n  <b/>\n</r>"))
        assert ("text", "\n  ") not in events

    def test_whitespace_kept(self):
        events = list(iterparse("<r> <b/></r>", keep_whitespace=True))
        assert ("text", " ") in events

    def test_comments_kept_on_request(self):
        events = list(iterparse("<r><!--x--></r>", keep_comments=True))
        assert ("comment", "x") in events

    def test_cdata_is_text(self):
        events = list(iterparse("<r><![CDATA[<raw>]]></r>"))
        assert ("text", "<raw>") in events

    def test_entities_decoded(self):
        events = list(iterparse("<r>&lt;&amp;</r>"))
        assert ("text", "<&") in events

    def test_max_events_budget(self):
        text = "<r>" + "<a/>" * 50 + "</r>"
        with pytest.raises(XMLParseError):
            list(iterparse(text, max_events=10))

    def test_budget_not_hit(self):
        text = "<r><a/></r>"
        assert len(list(iterparse(text, max_events=10))) == 4

    @pytest.mark.parametrize(
        "text", ["", "<a>", "<a></b>", "<a/><b/>", "plain"]
    )
    def test_malformed(self, text):
        with pytest.raises(XMLParseError):
            list(iterparse(text))


class TestBuildFromEvents:
    def test_roundtrip_via_events(self):
        text = '<r a="1"><x>hello</x><y/></r>'
        assert flat(parse_document_streaming(text)) == flat(
            parse_document(text)
        )

    def test_matches_tree_parser_on_hamlet(self, hamlet):
        text = serialize_document(hamlet)
        streamed = parse_document_streaming(text)
        assert streamed.node_count() == hamlet.node_count()
        assert flat(streamed) == flat(parse_document(text))

    def test_unbalanced_end(self):
        with pytest.raises(XMLParseError):
            build_from_events([("start", "a"), ("end", "b")])

    def test_unclosed(self):
        with pytest.raises(XMLParseError):
            build_from_events([("start", "a")])

    def test_empty_stream(self):
        with pytest.raises(XMLParseError):
            build_from_events([])

    def test_multiple_roots(self):
        with pytest.raises(XMLParseError):
            build_from_events(
                [("start", "a"), ("end", "a"), ("start", "b"), ("end", "b")]
            )

    def test_orphan_text(self):
        with pytest.raises(XMLParseError):
            build_from_events([("text", "floating")])

    def test_orphan_attribute(self):
        with pytest.raises(XMLParseError):
            build_from_events([("attribute", ("a", "1"))])

    def test_unknown_event(self):
        with pytest.raises(XMLParseError):
            build_from_events([("mystery", None)])

    def test_streaming_then_label(self):
        from repro.labeling import make_scheme

        document = parse_document_streaming("<r><a/><b/></r>")
        labeled = make_scheme("V-CDBS-Containment").label_document(document)
        assert labeled.node_count() == 3
