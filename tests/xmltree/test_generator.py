"""Exact-budget synthetic tree generation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree import Node, ShapeSpec, fill_exact, generate_document, generate_element_tree


def spec(**overrides) -> ShapeSpec:
    defaults = dict(tags=("a", "b", "c"), max_depth=5, subtree_range=(2, 8))
    defaults.update(overrides)
    return ShapeSpec(**defaults)


class TestExactness:
    @pytest.mark.parametrize("total", [1, 2, 3, 10, 57, 333, 2000])
    def test_total_is_exact(self, total):
        tree = generate_element_tree("r", total, spec(), random.Random(1))
        assert tree.subtree_size() == total

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=1500), st.integers(min_value=0, max_value=10**6))
    def test_exact_for_arbitrary_budgets(self, total, seed):
        tree = generate_element_tree("r", total, spec(), random.Random(seed))
        assert tree.subtree_size() == total

    def test_fill_exact_zero(self):
        parent = Node.element("p")
        fill_exact(parent, 0, spec(), random.Random(0))
        assert parent.children == []

    def test_fill_exact_negative(self):
        with pytest.raises(ValueError):
            fill_exact(Node.element("p"), -1, spec(), random.Random(0))

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            generate_element_tree("r", 0, spec(), random.Random(0))


class TestShape:
    @pytest.mark.parametrize("depth", [2, 3, 5, 7])
    def test_max_depth_respected(self, depth):
        tree = generate_element_tree(
            "r", 800, spec(max_depth=depth), random.Random(3)
        )
        from repro.xmltree import Document

        assert Document(tree).stats().max_depth <= depth

    def test_small_subtrees_widen_the_tree(self):
        from repro.xmltree import Document

        wide = Document(
            generate_element_tree(
                "r", 1000, spec(subtree_range=(2, 3)), random.Random(5)
            )
        ).stats()
        narrow = Document(
            generate_element_tree(
                "r", 1000, spec(subtree_range=(40, 60)), random.Random(5)
            )
        ).stats()
        assert wide.max_fanout > narrow.max_fanout


class TestDeterminism:
    def test_same_seed_same_tree(self):
        first = generate_document("d", "r", 400, spec(), seed=9)
        second = generate_document("d", "r", 400, spec(), seed=9)
        flat1 = [(n.kind, n.name, n.value) for n in first.pre_order()]
        flat2 = [(n.kind, n.name, n.value) for n in second.pre_order()]
        assert flat1 == flat2

    def test_different_seed_different_tree(self):
        first = generate_document("d", "r", 400, spec(), seed=9)
        second = generate_document("d", "r", 400, spec(), seed=10)
        flat1 = [(n.kind, n.name, n.value) for n in first.pre_order()]
        flat2 = [(n.kind, n.name, n.value) for n in second.pre_order()]
        assert flat1 != flat2
