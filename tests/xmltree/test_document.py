"""Document statistics and collections (Table 2 vocabulary)."""

from __future__ import annotations

import pytest

from repro.xmltree import Collection, Document, Node, parse_document


@pytest.fixture()
def doc() -> Document:
    return parse_document("<r><a><b/><b/></a><a>text</a></r>")


class TestDocument:
    def test_root_must_be_element(self):
        with pytest.raises(ValueError):
            Document(Node.text("x"))

    def test_root_must_be_detached(self):
        parent = Node.element("p")
        child = parent.append_child(Node.element("c"))
        with pytest.raises(ValueError):
            Document(child)

    def test_node_count(self, doc):
        assert doc.node_count() == 6

    def test_pre_order_positions(self, doc):
        positions = doc.document_positions()
        nodes = list(doc.pre_order())
        assert positions[id(nodes[0])] == 1
        assert positions[id(nodes[-1])] == 6

    def test_elements_by_tag(self, doc):
        assert len(doc.elements_by_tag("a")) == 2
        assert len(doc.elements_by_tag("b")) == 2
        assert doc.elements_by_tag("zzz") == []

    def test_find_all(self, doc):
        found = doc.find_all(lambda n: n.name == "b")
        assert len(found) == 2

    def test_stats(self, doc):
        stats = doc.stats()
        assert stats.node_count == 6
        assert stats.max_depth == 3  # r -> a -> b
        assert stats.max_fanout == 2
        assert stats.avg_fanout == pytest.approx((2 + 2 + 1) / 3)
        assert "nodes=6" in str(stats)


class TestCollection:
    def test_aggregate(self, doc):
        other = parse_document("<r><x/></r>")
        collection = Collection("D", [doc, other])
        assert len(collection) == 2
        assert collection.total_nodes() == 8
        stats = collection.stats()
        assert stats["files"] == 2
        assert stats["total_nodes"] == 8
        # Per-file max fan-out aggregated: max and mean across files.
        assert stats["max_fanout"] == 2
        assert stats["avg_fanout"] == pytest.approx(1.5)

    def test_empty_collection(self):
        assert Collection("E", []).stats() == {"files": 0, "total_nodes": 0}

    def test_iteration(self, doc):
        collection = Collection("D", [doc])
        assert list(collection) == [doc]
