"""Hypothesis-generated arbitrary trees: parser/serializer/labeling fuzz."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.labeling import make_scheme
from repro.xmltree import (
    Document,
    Node,
    NodeKind,
    parse_document,
    parse_document_streaming,
    serialize_document,
)

_tags = st.sampled_from(["a", "b", "c", "data", "ns:x", "long-name.v2"])
_texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x24F),
    min_size=1,
    max_size=12,
)


@st.composite
def element_trees(draw, max_depth=4):
    """An arbitrary element with attributes, text and child elements."""
    element = Node.element(draw(_tags))
    for index in range(draw(st.integers(0, 2))):
        element.append_child(Node.attribute(f"at{index}", draw(_texts)))
    if max_depth > 0:
        child_count = draw(st.integers(0, 3))
        previous_was_text = False
        for _ in range(child_count):
            if not previous_was_text and draw(st.booleans()):
                element.append_child(Node.text(draw(_texts)))
                previous_was_text = True
            else:
                element.append_child(
                    draw(element_trees(max_depth=max_depth - 1))
                )
                previous_was_text = False
    return element


def flat(document: Document):
    return [
        (node.kind, node.name, node.value) for node in document.pre_order()
    ]


class TestFuzzRoundTrips:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(element_trees())
    def test_serialize_parse_roundtrip(self, root):
        document = Document(root)
        text = serialize_document(document)
        reparsed = parse_document(text, keep_whitespace=True)
        assert flat(reparsed) == flat(document)

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(element_trees())
    def test_stream_parser_agrees_with_tree_parser(self, root):
        text = serialize_document(Document(root))
        assert flat(parse_document_streaming(text, keep_whitespace=True)) == flat(
            parse_document(text, keep_whitespace=True)
        )

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(element_trees(), st.sampled_from(
        ["V-CDBS-Containment", "QED-Prefix", "Prime"]
    ))
    def test_arbitrary_trees_label_consistently(self, root, scheme_name):
        document = Document(root)
        scheme = make_scheme(scheme_name)
        labeled = scheme.label_document(document)
        nodes = labeled.nodes_in_order
        assert len(labeled.labels) == len(nodes)
        keys = [scheme.order_key(labeled.label_of(n)) for n in nodes]
        assert keys == sorted(keys)
        for node in nodes:
            if node.parent is not None:
                assert scheme.is_parent(
                    labeled.label_of(node.parent), labeled.label_of(node)
                )

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(element_trees())
    def test_label_stream_roundtrip_on_fuzzed_trees(self, root):
        from repro.storage import decode_labels, encode_labels

        document = Document(root)
        scheme = make_scheme("QED-Containment")
        labeled = scheme.label_document(document)
        decoded = decode_labels(scheme, encode_labels(labeled))
        original = [labeled.label_of(n) for n in labeled.nodes_in_order]
        assert [(l.start, l.end, l.level) for l in decoded] == [
            (l.start, l.end, l.level) for l in original
        ]
