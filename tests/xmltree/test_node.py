"""The ordered tree model."""

from __future__ import annotations

import pytest

from repro.xmltree.node import Node, NodeKind


@pytest.fixture()
def small_tree() -> Node:
    root = Node.element("root")
    first = root.append_child(Node.element("a"))
    first.append_child(Node.text("hello"))
    second = root.append_child(Node.element("b"))
    second.append_child(Node.attribute("id", "x"))
    second.append_child(Node.element("c"))
    return root


class TestConstruction:
    def test_element(self):
        node = Node.element("tag")
        assert node.kind is NodeKind.ELEMENT
        assert node.name == "tag"
        assert node.value is None

    def test_attribute(self):
        node = Node.attribute("id", "7")
        assert node.kind is NodeKind.ATTRIBUTE
        assert (node.name, node.value) == ("id", "7")

    def test_text(self):
        node = Node.text("body")
        assert node.kind is NodeKind.TEXT
        assert node.value == "body"

    def test_comment(self):
        assert Node.comment("note").kind is NodeKind.COMMENT

    def test_element_with_value_rejected(self):
        with pytest.raises(ValueError):
            Node(NodeKind.ELEMENT, "tag", "value")

    def test_attribute_without_value_rejected(self):
        with pytest.raises(ValueError):
            Node(NodeKind.ATTRIBUTE, "id", None)

    def test_text_without_value_rejected(self):
        with pytest.raises(ValueError):
            Node(NodeKind.TEXT, "#text", None)


class TestStructureEdits:
    def test_append_sets_parent(self, small_tree):
        child = small_tree.append_child(Node.element("z"))
        assert child.parent is small_tree
        assert small_tree.children[-1] is child

    def test_insert_at_index(self, small_tree):
        child = small_tree.insert_child(1, Node.element("mid"))
        assert small_tree.children[1] is child

    def test_insert_under_text_rejected(self):
        with pytest.raises(ValueError):
            Node.text("x").append_child(Node.element("a"))

    def test_double_attach_rejected(self, small_tree):
        child = small_tree.children[0]
        with pytest.raises(ValueError):
            small_tree.append_child(child)

    def test_self_attach_rejected(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.append_child(small_tree)

    def test_detach(self, small_tree):
        child = small_tree.children[0]
        child.detach()
        assert child.parent is None
        assert child not in small_tree.children

    def test_detach_root_noop(self, small_tree):
        assert small_tree.detach() is small_tree


class TestNavigation:
    def test_index_in_parent(self, small_tree):
        assert small_tree.children[1].index_in_parent == 1

    def test_index_of_root_rejected(self, small_tree):
        with pytest.raises(ValueError):
            _ = small_tree.index_in_parent

    def test_depth(self, small_tree):
        assert small_tree.depth == 0
        assert small_tree.children[0].depth == 1
        assert small_tree.children[0].children[0].depth == 2

    def test_ancestors(self, small_tree):
        leaf = small_tree.children[1].children[1]
        assert [a.name for a in leaf.ancestors()] == ["b", "root"]

    def test_is_ancestor_of(self, small_tree):
        leaf = small_tree.children[1].children[1]
        assert small_tree.is_ancestor_of(leaf)
        assert not leaf.is_ancestor_of(small_tree)
        assert not small_tree.is_ancestor_of(small_tree)

    def test_pre_order_is_document_order(self, small_tree):
        names = [n.name for n in small_tree.pre_order()]
        assert names == ["root", "a", "#text", "b", "id", "c"]

    def test_descendants_excludes_self(self, small_tree):
        assert small_tree not in list(small_tree.descendants())
        assert len(list(small_tree.descendants())) == 5

    def test_subtree_size(self, small_tree):
        assert small_tree.subtree_size() == 6
        assert small_tree.children[1].subtree_size() == 3

    def test_element_children(self, small_tree):
        assert [c.name for c in small_tree.children[1].element_children()] == ["c"]

    def test_attributes(self, small_tree):
        assert small_tree.children[1].attributes() == {"id": "x"}

    def test_text_content(self, small_tree):
        assert small_tree.text_content() == "hello"

    def test_following_siblings(self, small_tree):
        first = small_tree.children[0]
        assert [s.name for s in first.following_siblings()] == ["b"]
        assert list(small_tree.following_siblings()) == []

    def test_preceding_siblings_reverse_order(self):
        root = Node.element("r")
        names = ["a", "b", "c", "d"]
        for name in names:
            root.append_child(Node.element(name))
        last = root.children[-1]
        assert [s.name for s in last.preceding_siblings()] == ["c", "b", "a"]

    def test_repr(self, small_tree):
        assert "root" in repr(small_tree)
        assert "text" in repr(Node.text("x"))


class TestIndexOfChild:
    """The hint-cached child lookup that replaced children.index()."""

    def test_matches_enumeration(self):
        root = Node.element("r")
        children = [root.append_child(Node.element(f"c{i}")) for i in range(8)]
        for expected, child in enumerate(children):
            assert root.index_of_child(child) == expected
            assert child.index_in_parent == expected

    def test_hint_repaired_after_front_insert(self):
        root = Node.element("r")
        last = root.append_child(Node.element("last"))
        assert root.index_of_child(last) == 0
        for i in range(5):
            root.insert_child(0, Node.element(f"front{i}"))
        # `last` still carries a stale hint of 0; the ring scan repairs it.
        assert root.index_of_child(last) == 5
        assert root.index_of_child(last) == 5  # hint now fresh

    def test_hint_survives_out_of_band_list_mutation(self):
        # generator._make_leaf and merge_adjacent_text edit .children
        # directly; lookups must still succeed afterwards.
        root = Node.element("r")
        kids = [root.append_child(Node.element(f"c{i}")) for i in range(6)]
        root.children.reverse()
        for child in kids:
            assert root.children[root.index_of_child(child)] is child

    def test_detach_uses_identity(self):
        root = Node.element("r")
        a = root.append_child(Node.element("x"))
        b = root.append_child(Node.element("x"))  # equal-looking sibling
        a.detach()
        assert root.children == [b]
        assert root.index_of_child(b) == 0

    def test_non_child_raises(self):
        root = Node.element("r")
        root.append_child(Node.element("a"))
        stranger = Node.element("a")
        with pytest.raises(ValueError):
            root.index_of_child(stranger)

    def test_empty_parent_raises(self):
        with pytest.raises(ValueError):
            Node.element("r").index_of_child(Node.element("a"))
