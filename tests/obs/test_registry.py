"""Registry behaviour: isolation, disabled-mode no-ops, capture."""

from __future__ import annotations

import pytest

from repro.obs import DISABLED_SAFE_HOOKS, OBS, Registry


class TestIsolation:
    def test_global_registry_starts_clean(self):
        # The autouse fixture resets OBS around every test; a test that
        # observes data here would mean state leaked across tests.
        snapshot = OBS.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["spans"] == {}
        assert snapshot["ledger"]["totals"] == {}
        assert OBS.enabled is False

    def test_registries_are_independent(self):
        left, right = Registry("left", enabled=True), Registry("right", enabled=True)
        left.inc("shared.name", 3)
        assert left.counter("shared.name").value == 3
        assert right.counter("shared.name").value == 0

    def test_reset_drops_data_but_keeps_enabled(self):
        registry = Registry("r", enabled=True)
        registry.inc("c")
        registry.observe("h", 1.0)
        with registry.span("s"):
            registry.charge("unit", 2)
        registry.reset()
        assert registry.enabled is True
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["spans"] == {}
        assert snapshot["ledger"] == {"totals": {}, "by_op": {}}


class TestDisabledMode:
    def test_hooks_are_no_ops(self):
        registry = Registry("off")
        registry.inc("c", 5)
        registry.set_gauge("g", 1.0)
        registry.observe("h", 2.0)
        registry.charge("unit", 3)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["ledger"]["totals"] == {}

    def test_spans_still_time_but_record_nothing(self):
        registry = Registry("off")
        with registry.span("work") as span:
            sum(range(1_000))
        assert span.seconds > 0.0
        assert registry.snapshot()["spans"] == {}
        assert registry._span_stack == []

    def test_every_hot_path_hook_is_declared_disabled_safe(self):
        assert set(DISABLED_SAFE_HOOKS) == {
            "inc",
            "set_gauge",
            "observe",
            "charge",
        }
        for name in DISABLED_SAFE_HOOKS:
            assert callable(getattr(Registry, name))


class TestEnabledMode:
    def test_hooks_record(self):
        registry = Registry("on", enabled=True)
        registry.inc("c", 2)
        registry.set_gauge("g", 7.5)
        registry.observe("h", 1.0)
        registry.observe("h", 3.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["c"] == 2
        assert snapshot["gauges"]["g"] == 7.5
        assert snapshot["histograms"]["h"]["count"] == 2
        assert snapshot["histograms"]["h"]["mean"] == 2.0

    def test_metric_accessors_are_memoised(self):
        registry = Registry("on", enabled=True)
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")


class TestCapture:
    def test_enables_then_restores_disabled(self):
        registry = Registry("cap")
        with registry.capture() as active:
            assert active is registry
            assert registry.enabled is True
            registry.inc("c")
        assert registry.enabled is False
        # Data survives the capture so callers can snapshot afterwards.
        assert registry.counter("c").value == 1

    def test_restores_enabled_when_it_was_on(self):
        registry = Registry("cap", enabled=True)
        with registry.capture(reset=False):
            pass
        assert registry.enabled is True

    def test_reset_flag_controls_clearing(self):
        registry = Registry("cap", enabled=True)
        registry.inc("c")
        with registry.capture(reset=False):
            registry.inc("c")
        assert registry.counter("c").value == 2
        with registry.capture():
            pass
        assert registry.counter("c").value == 0

    def test_restores_on_exception(self):
        registry = Registry("cap")
        with pytest.raises(RuntimeError):
            with registry.capture():
                raise RuntimeError("boom")
        assert registry.enabled is False
