"""The ``python -m repro.obs`` CLI: dump and overhead subcommands."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main


class TestDump:
    def test_demo_workload_snapshot(self, capsys):
        assert main(["dump"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["registry"] == "dump-demo"
        # The demo finished its capture, so enabled is back to False
        # but the recorded data survives into the snapshot.
        assert snapshot["enabled"] is False
        assert snapshot["counters"]["demo.records"] == 500
        assert "demo.cost_units" in snapshot["ledger"]["totals"]
        assert set(snapshot["ledger"]["by_op"]) == {"load", "update"}
        assert snapshot["histograms"]["demo.step_value"]["count"] == 500
        assert snapshot["spans"]["demo.update.step"]["count"] == 500

    def test_from_json_extracts_embedded_sections(self, capsys, tmp_path):
        section = {"ledger": {"totals": {"u": 1}, "by_op": {}}}
        payload = {
            "configs": [
                {"scheme": "V", "n": 1000, "mode": "optimized", "obs": section}
            ]
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        assert main(["dump", "--from-json", str(path)]) == 0
        assert json.loads(capsys.readouterr().out) == {"V@1000": section}

    def test_from_json_handles_toplevel_obs_map(self, capsys, tmp_path):
        payload = {"_obs": {"E1": {"ledger": {"totals": {}, "by_op": {}}}}}
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        assert main(["dump", "--from-json", str(path)]) == 0
        assert json.loads(capsys.readouterr().out) == payload["_obs"]

    def test_missing_file_is_an_error(self, capsys, tmp_path):
        assert main(["dump", "--from-json", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_json_without_sections_is_an_error(self, capsys, tmp_path):
        path = tmp_path / "plain.json"
        path.write_text("{}")
        assert main(["dump", "--from-json", str(path)]) == 2
        assert "no embedded obs sections" in capsys.readouterr().err


class TestOverhead:
    def test_measures_every_disabled_safe_hook(self, capsys):
        assert main(["overhead", "--iterations", "2000"]) == 0
        out = capsys.readouterr().out
        assert "attribute-check baseline" in out
        for hook in ("inc", "set_gauge", "observe", "charge"):
            assert f"OBS.{hook}" in out

    def test_budget_failure_exits_nonzero(self, capsys):
        # No machine evaluates a Python method call in a femtosecond.
        assert main(["overhead", "--iterations", "2000", "--budget-ns", "1e-6"]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_generous_budget_passes(self):
        # 1ms per call would mean the "one attribute check" claim is
        # off by ~4 orders of magnitude; as an upper bound it keeps the
        # test meaningful without being timing-flaky in CI.
        assert main(["overhead", "--iterations", "2000", "--budget-ns", "1e6"]) == 0


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
