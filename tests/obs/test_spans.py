"""Span semantics: nesting, op/tag inheritance, exception safety."""

from __future__ import annotations

import pytest

from repro.obs import Registry
from repro.obs.ledger import UNATTRIBUTED


@pytest.fixture()
def registry():
    return Registry("spans", enabled=True)


class TestAttribution:
    def test_op_defaults_to_span_name(self, registry):
        with registry.span("update.insert"):
            assert registry.current_op() == "update.insert"

    def test_explicit_op_tag_wins(self, registry):
        with registry.span("update.op", op="insert"):
            assert registry.current_op() == "insert"

    def test_child_inherits_parent_op(self, registry):
        with registry.span("update.op", op="delete"):
            with registry.span("store.apply_update"):
                assert registry.current_op() == "delete"
                registry.charge("pager.pages_read", 4)
        assert registry.ledger.op_total("delete", "pager.pages_read") == 4

    def test_child_explicit_op_overrides_parent(self, registry):
        with registry.span("outer", op="outer-op"):
            with registry.span("inner", op="inner-op"):
                registry.charge("unit", 1)
            registry.charge("unit", 2)
        assert registry.ledger.op_total("inner-op", "unit") == 1
        assert registry.ledger.op_total("outer-op", "unit") == 2

    def test_charge_without_span_is_unattributed(self, registry):
        registry.charge("unit", 5)
        assert registry.ledger.op_total(UNATTRIBUTED, "unit") == 5
        assert registry.current_op() == UNATTRIBUTED

    def test_tags_merge_child_overrides(self, registry):
        with registry.span("outer", scheme="V-CDBS", phase="load"):
            with registry.span("inner", phase="update") as inner:
                assert inner.tags == {"scheme": "V-CDBS", "phase": "update"}


class TestAggregation:
    def test_stats_accumulate_per_name(self, registry):
        for _ in range(3):
            with registry.span("work"):
                pass
        stats = registry.snapshot()["spans"]["work"]
        assert stats["count"] == 3
        assert stats["failed"] == 0
        assert stats["min_seconds"] <= stats["max_seconds"]
        assert stats["total_seconds"] >= stats["max_seconds"]

    def test_seconds_valid_after_exit(self, registry):
        with registry.span("work") as span:
            sum(range(10_000))
        assert span.seconds > 0.0


class TestExceptionSafety:
    def test_failure_is_counted_and_stack_unwound(self, registry):
        with pytest.raises(ValueError):
            with registry.span("failing"):
                raise ValueError("boom")
        stats = registry.snapshot()["spans"]["failing"]
        assert stats["count"] == 1
        assert stats["failed"] == 1
        assert registry._span_stack == []

    def test_leaked_inner_span_does_not_corrupt_stack(self, registry):
        # An inner span entered but never exited (a bug in caller code)
        # must not leave the outer span's exit popping the wrong frame.
        outer = registry.span("outer")
        outer.__enter__()
        registry.span("leaked").__enter__()
        outer.__exit__(None, None, None)
        assert registry._span_stack == []
        assert registry.current_op() == UNATTRIBUTED

    def test_exception_inside_nested_spans(self, registry):
        with pytest.raises(RuntimeError):
            with registry.span("outer", op="op"):
                with registry.span("inner"):
                    raise RuntimeError("boom")
        spans = registry.snapshot()["spans"]
        assert spans["inner"]["failed"] == 1
        assert spans["outer"]["failed"] == 1
        assert registry._span_stack == []
