"""CostLedger accounting and the COST_UNITS catalogue."""

from __future__ import annotations

import pytest

from repro.obs.ledger import COST_UNITS, UNATTRIBUTED, CostLedger


class TestCostLedger:
    def test_charges_land_in_totals_and_by_op(self):
        ledger = CostLedger()
        ledger.add("insert", "pager.pages_read", 3)
        ledger.add("insert", "pager.pages_read", 2)
        ledger.add("delete", "pager.pages_read", 1)
        assert ledger.total("pager.pages_read") == 6
        assert ledger.op_total("insert", "pager.pages_read") == 5
        assert ledger.op_total("delete", "pager.pages_read") == 1

    def test_unknown_unit_reads_as_zero(self):
        ledger = CostLedger()
        assert ledger.total("never.charged") == 0
        assert ledger.op_total("nope", "never.charged") == 0

    def test_negative_amount_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError, match="negative"):
            ledger.add("op", "unit", -1)

    def test_zero_amount_leaves_no_entry(self):
        ledger = CostLedger()
        ledger.add("op", "unit", 0)
        assert ledger.totals == {}
        assert ledger.by_op == {}

    def test_totals_snapshot_is_detached(self):
        ledger = CostLedger()
        ledger.add("op", "unit", 1)
        before = ledger.totals_snapshot()
        ledger.add("op", "unit", 9)
        assert before == {"unit": 1}
        assert ledger.total("unit") == 10

    def test_clear(self):
        ledger = CostLedger()
        ledger.add("op", "unit", 1)
        ledger.clear()
        assert ledger.snapshot() == {"totals": {}, "by_op": {}}

    def test_snapshot_keys_sorted_for_stable_diffs(self):
        ledger = CostLedger()
        ledger.add("z-op", "b.unit", 1)
        ledger.add("a-op", "a.unit", 1)
        snapshot = ledger.snapshot()
        assert list(snapshot["totals"]) == sorted(snapshot["totals"])
        assert list(snapshot["by_op"]) == sorted(snapshot["by_op"])


class TestCostUnitsCatalogue:
    def test_every_entry_documents_measure_and_paper_cost(self):
        for unit, entry in COST_UNITS.items():
            measure, paper_cost = entry
            assert unit and measure and paper_cost

    def test_engine_units_mirror_update_stats(self):
        # The reconciliation test (tests/updates) relies on these names.
        assert {
            "engine.nodes_inserted",
            "engine.nodes_deleted",
            "engine.nodes_relabeled",
            "engine.sc_groups_recomputed",
            "engine.labels_written",
            "engine.pages_touched",
        } <= set(COST_UNITS)

    def test_unattributed_sentinel_is_not_a_unit(self):
        assert UNATTRIBUTED not in COST_UNITS
