"""Registry isolation: every test starts and ends with a clean,
disabled ``OBS`` so instrumentation state cannot leak between tests
(or into the rest of the suite, which shares the process-global
registry)."""

from __future__ import annotations

import pytest

from repro.obs import OBS


@pytest.fixture(autouse=True)
def clean_registry():
    OBS.reset()
    OBS.enabled = False
    yield
    OBS.reset()
    OBS.enabled = False
