"""Metric primitives: Counter/Gauge semantics and Histogram math.

The histogram percentile tests check against a *sorted-list oracle*
that re-implements numpy's "linear" interpolation independently, on
workloads small enough that the reservoir holds every observation — so
the estimate must be exact.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.obs.metrics import (
    DEFAULT_RESERVOIR_SIZE,
    Counter,
    Gauge,
    Histogram,
)


def oracle_percentile(values: list[float], q: float) -> float:
    """numpy-"linear" percentile over a plain sorted list."""
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[lo]
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.snapshot() == 0
        counter.inc()
        counter.inc(41)
        assert counter.snapshot() == 42

    def test_rejects_negative_increments(self):
        counter = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)
        assert counter.snapshot() == 0


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.add(-1.5)
        assert gauge.snapshot() == 1.5


class TestHistogramExactAggregates:
    def test_count_sum_min_max_are_exact_past_reservoir(self):
        histogram = Histogram("h", max_samples=64)
        values = [float(i) for i in range(1_000)]
        random.Random(5).shuffle(values)
        for value in values:
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 1_000
        assert snapshot["sum"] == sum(values)
        assert snapshot["min"] == 0.0
        assert snapshot["max"] == 999.0
        assert snapshot["mean"] == pytest.approx(sum(values) / 1_000)
        assert snapshot["samples_kept"] == 64

    def test_empty_histogram_snapshot(self):
        snapshot = Histogram("h").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean"] is None
        assert snapshot["p50"] is None
        assert snapshot["min"] is None

    def test_rejects_nonpositive_reservoir(self):
        with pytest.raises(ValueError):
            Histogram("h", max_samples=0)


class TestHistogramPercentiles:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 100, 1_001])
    @pytest.mark.parametrize("q", [0.0, 25.0, 50.0, 90.0, 99.0, 100.0])
    def test_matches_sorted_list_oracle_while_unsampled(self, n, q):
        rng = random.Random(n * 31 + int(q))
        values = [rng.uniform(-50.0, 50.0) for _ in range(n)]
        histogram = Histogram("h")  # default reservoir holds all of them
        for value in values:
            histogram.observe(value)
        assert n <= DEFAULT_RESERVOIR_SIZE
        assert histogram.percentile(q) == pytest.approx(
            oracle_percentile(values, q)
        )

    def test_extremes_are_min_and_max(self):
        histogram = Histogram("h")
        for value in (9.0, -3.0, 4.0):
            histogram.observe(value)
        assert histogram.percentile(0.0) == -3.0
        assert histogram.percentile(100.0) == 9.0

    def test_out_of_range_rejected(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(-0.1)
        with pytest.raises(ValueError):
            histogram.percentile(100.1)

    def test_reservoir_is_deterministic(self):
        # Fixed seed per histogram: same observations -> same snapshot,
        # which is what lets the CI gate diff snapshots run-to-run.
        first, second = Histogram("a", max_samples=32), Histogram("b", max_samples=32)
        values = [float(i % 97) for i in range(5_000)]
        for value in values:
            first.observe(value)
            second.observe(value)
        assert first.snapshot() == second.snapshot()
