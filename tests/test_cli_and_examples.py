"""The bench CLI and the shipped examples must run end to end."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

from repro.bench.__main__ import main

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestBenchCli:
    def test_single_experiment(self, capsys):
        assert main(["--only", "E1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "'V-CDBS': 64" in out

    def test_ablations(self, capsys):
        assert main(["--only", "E9", "E10"]) == 0
        out = capsys.readouterr().out
        assert "binary_dead_end_gaps" in out
        assert "sequential_total_bits" in out

    def test_unknown_experiment(self, capsys):
        assert main(["--only", "E99"]) == 2

    def test_table4_output(self, capsys):
        assert main(["--only", "E5"]) == 0
        out = capsys.readouterr().out
        assert "6,596" in out and "1,320" in out


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "order_maintenance.py", "persistent_store.py"],
    )
    def test_example_runs(self, script, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", [script])
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip()

    def test_quickstart_reports_zero_relabels(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["quickstart.py"])
        runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "re-labeled 0 existing nodes" in out
        assert "Surprise" in out

    def test_order_maintenance_shows_overflow_and_qed(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["order_maintenance.py"])
        runpy.run_path(
            str(EXAMPLES / "order_maintenance.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "CDBS overflowed" in out
        assert "QED absorbed" in out
