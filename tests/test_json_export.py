"""The bench CLI's --json export."""

from __future__ import annotations

import json

from repro.bench.__main__ import main


def test_json_export(tmp_path, capsys):
    out = tmp_path / "results.json"
    assert main(["--only", "E1", "E9", "E10", "--json", str(out)]) == 0
    data = json.loads(out.read_text())
    assert set(data) == {"E1", "E9", "E10", "_obs"}
    assert data["E1"]["totals"]["V-CDBS"] == 64
    assert data["E9"]["cdbs_dead_end_gaps"] == 0
    assert data["E10"]["sequential_max_bits"] == 1024
    # Each experiment's collector ran under a captured registry, so the
    # export is self-describing: an obs section per experiment id.
    assert set(data["_obs"]) == {"E1", "E9", "E10"}
    for section in data["_obs"].values():
        assert {"ledger", "counters", "spans", "histograms"} <= set(section)
    assert "raw results written" in capsys.readouterr().out


def test_json_export_table4(tmp_path, capsys):
    out = tmp_path / "t4.json"
    assert main(["--only", "E5", "--json", str(out)]) == 0
    data = json.loads(out.read_text())
    assert data["E5"]["V-Binary-Containment"] == [6596, 5121, 3932, 2431, 1300]
    assert data["E5"]["Prime"] == [1320, 1025, 787, 487, 261]
