"""python -m repro.verify: exit codes and output formats."""

from __future__ import annotations

import json

from repro.labeling import make_scheme
from repro.storage.labelfile import save_labeled
from repro.verify.__main__ import main
from repro.xmltree import parse_document


def save_bundle(tmp_path, scheme="V-CDBS-Containment"):
    doc = parse_document("<r><a><b/></a><c/></r>")
    labeled = make_scheme(scheme).label_document(doc)
    path = tmp_path / "bundle.labels"
    save_labeled(labeled, path)
    return path


class TestCLI:
    def test_clean_bundle_exits_zero(self, tmp_path, capsys):
        path = save_bundle(tmp_path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "V-CDBS-Containment" in out

    def test_clean_bundle_json_output(self, tmp_path, capsys):
        path = save_bundle(tmp_path)
        assert main([str(path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_unreadable_bundle_exits_two(self, tmp_path, capsys):
        path = tmp_path / "garbage.labels"
        path.write_bytes(b"not a label bundle at all\n")
        assert main([str(path)]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path):
        assert main([str(tmp_path / "nope.labels")]) == 2
