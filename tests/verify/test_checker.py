"""verify_integrity: clean documents pass; each corruption is caught."""

from __future__ import annotations

import pytest

from repro.labeling import ALL_SCHEMES, make_scheme
from repro.updates import UpdateEngine
from repro.verify import verify_integrity, violation_dicts
from repro.xmltree import Node, parse_document

XML = "<r><a><b/><c/></a><d/><e><f/><g/></e></r>"


def build(scheme="V-CDBS-Containment", storage=True, xml=XML):
    doc = parse_document(xml)
    labeled = make_scheme(scheme).label_document(doc)
    engine = UpdateEngine(labeled, with_storage=storage)
    return engine, doc


def codes(engine):
    return [
        violation.code
        for violation in verify_integrity(engine.labeled, engine.store)
    ]


_DELETE = object()


def corrupt_label(labeled, key, value=_DELETE):
    """Damage ``labeled.labels`` in place, behind the engine's back.

    Centralizing the corruption keeps it visible to the static
    checker: the writes below are *intentional* RPR009 violations
    (deliberately no undo registration — the whole point is to break
    the document), so they carry the scoped waiver instead of hiding
    behind an untyped local.
    """
    if value is _DELETE:
        del labeled.labels[key]  # repro: allow-mutation-without-undo
    else:
        labeled.labels[key] = value


class TestViolationDicts:
    def test_empty_list_round_trips(self):
        assert violation_dicts([]) == []

    def test_shared_shape_matches_the_json_cli(self):
        """Every harness (CLI --json, chaos, crash) emits this shape."""
        engine, doc = build()
        corrupt_label(engine.labeled, id(doc.root.children[1]))
        dicts = violation_dicts(
            verify_integrity(engine.labeled, engine.store)
        )
        assert dicts
        assert all(set(entry) == {"code", "message"} for entry in dicts)
        assert any(entry["code"] == "labels.missing" for entry in dicts)


class TestCleanDocuments:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_fresh_labeling_is_clean(self, scheme):
        engine, _ = build(scheme)
        assert verify_integrity(engine.labeled, engine.store) == []

    @pytest.mark.parametrize(
        "scheme", ["V-CDBS-Containment", "CDBS(UTF8)-Prefix", "Prime"]
    )
    def test_still_clean_after_updates(self, scheme):
        engine, doc = build(scheme)
        engine.insert_before(doc.root.children[1], Node.element("x"))
        engine.delete(doc.root.children[0])
        engine.move_before(doc.root.children[0], doc.root.children[-1])
        assert verify_integrity(engine.labeled, engine.store) == []

    def test_store_is_optional(self):
        engine, _ = build(storage=False)
        assert verify_integrity(engine.labeled) == []


class TestTreeOrderViolations:
    def test_detached_node_breaks_size(self):
        engine, doc = build()
        doc.root.children[0].children[0].detach()  # behind the index's back
        assert "tree-order.size" in codes(engine)

    def test_reordered_children_break_sequence(self):
        engine, doc = build()
        parent = doc.root.children[0]  # <a><b/><c/></a>
        first = parent.children[0].detach()
        parent.insert_child(len(parent.children), first)
        assert "tree-order.sequence" in codes(engine)


class TestLabelViolations:
    def test_missing_label(self):
        engine, doc = build()
        corrupt_label(engine.labeled, id(doc.root.children[1]))
        assert "labels.missing" in codes(engine)

    def test_orphaned_label(self):
        engine, doc = build()
        some_label = engine.labeled.labels[id(doc.root)]
        corrupt_label(engine.labeled, 123456789, some_label)
        assert "labels.orphaned" in codes(engine)

    def test_inverted_order(self):
        engine, doc = build()
        labels = engine.labeled.labels
        a, b = doc.root.children[0], doc.root.children[1]
        corrupt_label(engine.labeled, id(a), labels[id(b)])
        corrupt_label(engine.labeled, id(b), labels[id(a)])
        assert "labels.order" in codes(engine)

    def test_unkeyable_label(self):
        engine, doc = build()
        corrupt_label(engine.labeled, id(doc.root.children[1]), object())
        assert "labels.unkeyable" in codes(engine)


class TestSCGroupViolations:
    def build_prime(self):
        # 12 elements -> 3 SC groups of 5, 5, 2
        xml = "<r>" + "".join(f"<a{i}/>" for i in range(11)) + "</r>"
        return build("Prime", xml=xml)

    def test_clean(self):
        engine, _ = self.build_prime()
        assert len(engine.labeled.extra["sc_groups"]) == 3
        assert codes(engine) == []

    def test_group_count(self):
        engine, _ = self.build_prime()
        engine.labeled.extra["sc_groups"].pop()
        assert "sc.group-count" in codes(engine)

    def test_membership(self):
        engine, doc = self.build_prime()
        groups = engine.labeled.extra["sc_groups"]
        engine.labeled.labels[id(doc.root)].group = groups[1]
        assert "sc.membership" in codes(engine)

    def test_order(self):
        engine, _ = self.build_prime()
        engine.labeled.extra["sc_groups"][0].sc += 1
        assert "sc.order" in codes(engine)


class TestStorageViolations:
    def test_record_count(self):
        engine, _ = build()
        engine.store.pages.splice(0, [4])  # phantom record
        assert "storage.record-count" in codes(engine)

    def test_sc_record_count(self):
        engine, _ = build("Prime")
        engine.store.sc_pages.splice(0, [8])  # phantom SC record
        assert "storage.sc-records" in codes(engine)
