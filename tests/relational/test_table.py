"""The miniature relational substrate."""

from __future__ import annotations

import pytest

from repro.relational import OrderedIndex, RelationalError, Table


class TestOrderedIndex:
    def test_insert_and_point_scan(self):
        index = OrderedIndex("i")
        index.insert(5, 0)
        index.insert(3, 1)
        index.insert(5, 2)
        assert sorted(index.scan_point(5)) == [0, 2]
        assert list(index.scan_point(4)) == []

    def test_range_scan_inclusive(self):
        index = OrderedIndex("i")
        for position, key in enumerate([1, 3, 5, 7, 9]):
            index.insert(key, position)
        assert list(index.scan_range(3, 7)) == [1, 2, 3]

    def test_range_scan_exclusive(self):
        index = OrderedIndex("i")
        for position, key in enumerate([1, 3, 5, 7, 9]):
            index.insert(key, position)
        assert list(index.scan_range(3, 7, inclusive=(False, False))) == [2]

    def test_open_ends(self):
        index = OrderedIndex("i")
        for position, key in enumerate("abc"):
            index.insert(key, position)
        assert list(index.scan_range(None, "b")) == [0, 1]
        assert list(index.scan_range("b", None)) == [1, 2]
        assert list(index.scan_range(None, None)) == [0, 1, 2]

    def test_remove(self):
        index = OrderedIndex("i")
        index.insert("k", 7)
        index.remove("k", 7)
        assert len(index) == 0
        with pytest.raises(RelationalError):
            index.remove("k", 7)

    def test_string_keys_ordered(self):
        index = OrderedIndex("i")
        for position, key in enumerate(["01", "0011", "1"]):
            index.insert(key, position)
        # Lexicographic: "0011" < "01" < "1".
        assert list(index.scan_range(None, None)) == [1, 0, 2]


class TestTable:
    def make(self):
        return Table("t", ["key", "value"])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(RelationalError):
            Table("t", ["a", "a"])

    def test_insert_fetch(self):
        table = self.make()
        row_id = table.insert(key=1, value="x")
        assert table.fetch(row_id) == (1, "x")
        assert table.value(row_id, "value") == "x"

    def test_insert_wrong_columns(self):
        table = self.make()
        with pytest.raises(RelationalError):
            table.insert(key=1)
        with pytest.raises(RelationalError):
            table.insert(key=1, value=2, extra=3)

    def test_delete_leaves_tombstone(self):
        table = self.make()
        first = table.insert(key=1, value="a")
        second = table.insert(key=2, value="b")
        table.delete(first)
        assert table.row_count() == 1
        assert table.fetch(second) == (2, "b")
        with pytest.raises(RelationalError):
            table.fetch(first)

    def test_update(self):
        table = self.make()
        row_id = table.insert(key=1, value="a")
        table.update(row_id, value="z")
        assert table.value(row_id, "value") == "z"

    def test_update_maintains_index(self):
        table = self.make()
        table.create_index("key")
        row_id = table.insert(key=1, value="a")
        table.update(row_id, key=9)
        assert list(table.index_on("key").scan_point(9)) == [row_id]
        assert list(table.index_on("key").scan_point(1)) == []

    def test_index_backfills_existing_rows(self):
        table = self.make()
        table.insert(key=2, value="b")
        table.insert(key=1, value="a")
        index = table.create_index("key")
        assert list(index.scan_range(None, None)) == [1, 0]

    def test_index_tracks_inserts_and_deletes(self):
        table = self.make()
        table.create_index("key")
        row_id = table.insert(key=4, value="d")
        assert list(table.index_on("key").scan_point(4)) == [row_id]
        table.delete(row_id)
        assert list(table.index_on("key").scan_point(4)) == []

    def test_missing_index(self):
        with pytest.raises(RelationalError):
            self.make().index_on("key")

    def test_missing_column(self):
        table = self.make()
        row_id = table.insert(key=1, value="a")
        with pytest.raises(RelationalError):
            table.value(row_id, "nope")

    def test_scan_with_predicate(self):
        table = self.make()
        for key in range(5):
            table.insert(key=key, value=key * 2)
        rows = list(table.scan(lambda row: row[0] % 2 == 0))
        assert len(rows) == 3
