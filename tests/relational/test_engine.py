"""Shredding and the relational query translation."""

from __future__ import annotations

import pytest

from repro.errors import UnsupportedOperationError
from repro.labeling import make_scheme, scheme_names
from repro.query import QueryEngine
from repro.relational import RelationalQueryEngine, shred
from repro.xmltree import Node, parse_document

from tests.conftest import make_small_document

FAMILY_SCHEMES = (
    "V-CDBS-Containment",
    "QED-Containment",
    "QED-Prefix",
    "OrdPath1-Prefix",
    "DeweyID(UTF8)-Prefix",
    "Prime",
    "F-Binary-Containment",
)

QUERIES = [
    "/root",
    "/root/a",
    "//b",
    "//a/b",
    "/root//c",
    "/root/*",
    "//a[1]",
    "//b[2]",
    "//a[./b]",
    "//a[.//c]",
    "//a/@*",
]


class TestShred:
    def test_row_per_node(self):
        document = parse_document('<r a="1"><x>t</x></r>')
        labeled = make_scheme("V-CDBS-Containment").label_document(document)
        shredded = shred(labeled)
        assert shredded.row_count() == 4

    def test_node_row_roundtrip(self):
        document = parse_document("<r><x/><y/></r>")
        labeled = make_scheme("QED-Prefix").label_document(document)
        shredded = shred(labeled)
        for node in labeled.nodes_in_order:
            assert shredded.node_for_row(shredded.row_for_node(node)) is node

    def test_add_and_remove_subtree(self):
        document = parse_document("<r><x/></r>")
        labeled = make_scheme("V-CDBS-Containment").label_document(document)
        shredded = shred(labeled)
        subtree = Node.element("new")
        subtree.append_child(Node.text("hi"))
        labeled.scheme.insert_subtree(labeled, document.root, 1, subtree)
        assert shredded.add_subtree(subtree) == 2
        assert shredded.row_count() == 4
        assert shredded.remove_subtree(subtree) == 2
        assert shredded.row_count() == 2

    def test_refresh_node(self):
        document = parse_document("<r><x/><y/></r>")
        labeled = make_scheme("V-Binary-Containment").label_document(document)
        shredded = shred(labeled)
        # Force a re-label (static scheme) then refresh the moved rows.
        labeled.scheme.insert_subtree(labeled, document.root, 0, Node.element("n"))
        for node in (document.root, *document.root.children):
            if id(node) in shredded._row_of:
                shredded.refresh_node(node)
        shredded.add_subtree(document.root.children[0])
        engine = RelationalQueryEngine(shredded)
        assert engine.count("/r/n") == 1


class TestDifferential:
    @pytest.mark.parametrize("scheme_name", FAMILY_SCHEMES)
    def test_matches_in_memory_engine(self, scheme_name):
        document = make_small_document(seed=61, size=220)
        labeled = make_scheme(scheme_name).label_document(document)
        memory = QueryEngine(labeled)
        relational = RelationalQueryEngine(shred(labeled))
        for query in QUERIES:
            expected = [id(n) for n in memory.evaluate(query)]
            got = [id(n) for n in relational.evaluate(query)]
            assert got == expected, (scheme_name, query)


class TestPhysicalPlans:
    def make(self, scheme_name):
        document = make_small_document(seed=67, size=200)
        labeled = make_scheme(scheme_name).label_document(document)
        return RelationalQueryEngine(shred(labeled))

    def test_containment_descendants_use_one_range_scan(self):
        engine = self.make("V-CDBS-Containment")
        engine.evaluate("/root//b")
        assert engine.stats.range_scans == 1
        assert engine.stats.table_scans == 0

    def test_prefix_descendants_use_range_scans(self):
        engine = self.make("QED-Prefix")
        engine.evaluate("/root//b")
        assert engine.stats.range_scans == 1

    def test_prime_descendants_probe_instead(self):
        engine = self.make("Prime")
        engine.evaluate("/root//b")
        assert engine.stats.range_scans == 0  # no index can answer it

    def test_children_are_point_lookups(self):
        engine = self.make("V-CDBS-Containment")
        engine.evaluate("/root/a")
        assert engine.stats.point_lookups >= 1
        assert engine.stats.range_scans == 0

    def test_wildcard_without_tag_uses_table_scan(self):
        engine = self.make("QED-Containment")
        engine.evaluate("//*")
        assert engine.stats.table_scans == 1

    def test_order_axes_rejected(self):
        engine = self.make("V-CDBS-Containment")
        with pytest.raises(UnsupportedOperationError):
            engine.evaluate("//a/preceding-sibling::b")
