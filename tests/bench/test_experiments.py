"""The experiment drivers must regenerate the paper's numbers/shapes."""

from __future__ import annotations

import pytest

from repro.bench import (
    run_encoding_order_ablation,
    run_figure5,
    run_figure6,
    run_figure7,
    run_frequent_updates,
    run_invariant_ablation,
    run_overflow,
    run_size_analysis,
    run_table1,
    run_table4,
)
from repro.bench.reporting import format_number, format_table


class TestTable1:
    def test_totals_match_paper(self):
        totals = run_table1()["totals"]
        assert totals == {
            "V-Binary": 64,
            "V-CDBS": 64,
            "F-Binary": 90,
            "F-CDBS": 90,
        }

    def test_row_ten_is_single_one(self):
        rows = run_table1()["rows"]
        assert rows[9] == (10, "1010", "1", "01010", "10000")


class TestSizeAnalysis:
    def test_reports_cover_counts(self):
        reports = run_size_analysis(counts=(16, 64))
        assert [r.count for r in reports] == [16, 64]
        for report in reports:
            assert report.vcdbs_raw_measured == report.vbinary_raw_exact


class TestTable4:
    def test_exact_reproduction(self):
        results = run_table4()
        assert results["V-Binary-Containment"] == [6596, 5121, 3932, 2431, 1300]
        assert results["F-Binary-Containment"] == [6596, 5121, 3932, 2431, 1300]
        assert results["Prime"] == [1320, 1025, 787, 487, 261]
        for scheme in (
            "OrdPath1-Prefix",
            "OrdPath2-Prefix",
            "QED-Prefix",
            "Float-point-Containment",
            "V-CDBS-Containment",
            "F-CDBS-Containment",
            "QED-Containment",
        ):
            assert results[scheme] == [0, 0, 0, 0, 0], scheme


class TestFigure5:
    @pytest.fixture(scope="class")
    def fig5(self):
        return run_figure5(fraction=0.02, datasets=("D1", "D5"))

    def test_cdbs_equals_binary(self, fig5):
        for dataset in fig5.values():
            assert dataset["V-CDBS-Containment"]["avg_bits"] == pytest.approx(
                dataset["V-Binary-Containment"]["avg_bits"]
            )
            assert dataset["F-CDBS-Containment"]["avg_bits"] == pytest.approx(
                dataset["F-Binary-Containment"]["avg_bits"]
            )

    def test_prime_largest_of_core_schemes(self, fig5):
        for dataset in fig5.values():
            prime = dataset["Prime"]["avg_bits"]
            for scheme in (
                "V-CDBS-Containment",
                "QED-Containment",
                "QED-Prefix",
                "OrdPath1-Prefix",
            ):
                assert prime > dataset[scheme]["avg_bits"]

    def test_qed_prefix_below_ordpath(self, fig5):
        for dataset in fig5.values():
            assert (
                dataset["QED-Prefix"]["avg_bits"]
                < dataset["OrdPath1-Prefix"]["avg_bits"]
            )
            assert (
                dataset["QED-Prefix"]["avg_bits"]
                < dataset["OrdPath2-Prefix"]["avg_bits"]
            )

    def test_qed_containment_above_vcdbs(self, fig5):
        for dataset in fig5.values():
            assert (
                dataset["QED-Containment"]["avg_bits"]
                > dataset["V-CDBS-Containment"]["avg_bits"]
            )

    def test_float_point_larger_than_compact(self, fig5):
        for dataset in fig5.values():
            assert (
                dataset["Float-point-Containment"]["avg_bits"]
                > dataset["V-CDBS-Containment"]["avg_bits"]
            )


class TestFigure6:
    def test_shapes(self):
        results = run_figure6(
            fraction=0.01,
            factor=3,
            schemes=("Prime", "V-CDBS-Containment", "V-Binary-Containment"),
        )
        # Prime's size-driven I/O makes the heavy queries slower.
        assert (
            results["Prime"]["Q6"]["seconds"]
            > results["V-CDBS-Containment"]["Q6"]["seconds"]
        )
        # All counts agree across schemes (same data, same answers).
        for query_id in ("Q1", "Q5", "Q6"):
            counts = {s: results[s][query_id]["count"] for s in results}
            assert len(set(counts.values())) == 1


class TestFigure7:
    def test_shapes(self):
        results = run_figure7(
            schemes=(
                "Prime",
                "V-Binary-Containment",
                "V-CDBS-Containment",
                "QED-Containment",
            )
        )
        for case in range(5):
            binary = results["V-Binary-Containment"]["total"][case]
            cdbs = results["V-CDBS-Containment"]["total"][case]
            assert binary > cdbs
            # Prime-vs-Binary is decided on the deterministic modelled
            # I/O (the measured processing term is noise-sensitive).
            assert (
                results["Prime"]["io"][case]
                > results["V-Binary-Containment"]["io"][case]
            )
        # The paper's 1/11 claim: dynamic update time well below 1/5 of
        # Binary-Containment's on the big cases.
        assert (
            results["V-CDBS-Containment"]["total"][0]
            < results["V-Binary-Containment"]["total"][0] / 5
        )


class TestFrequentUpdates:
    def test_skewed_collapse_of_float_point(self):
        results = run_frequent_updates(
            inserts=150,
            mode="skewed",
            schemes=("V-CDBS-Containment", "Float-point-Containment"),
        )
        cdbs = results["V-CDBS-Containment"]
        float_point = results["Float-point-Containment"]
        assert cdbs["relabel_events"] == 0
        assert float_point["relabel_events"] >= 5
        assert (
            float_point["mean_us_per_insert"] > 5 * cdbs["mean_us_per_insert"]
        )

    def test_uniform_mode_friendly_to_cdbs(self):
        results = run_frequent_updates(
            inserts=80,
            mode="uniform",
            schemes=("V-CDBS-Containment", "QED-Containment"),
        )
        assert results["V-CDBS-Containment"]["relabel_events"] == 0
        assert results["QED-Containment"]["relabel_events"] == 0

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            run_frequent_updates(mode="diagonal")


class TestOverflow:
    def test_outcomes(self):
        outcomes = run_overflow(max_inserts=600)
        assert outcomes["QED"] is None  # never re-labels
        assert outcomes["V-CDBS tight field (4 bits)"] is not None
        assert outcomes["Float-point"] is not None
        assert outcomes["Float-point"] <= 30
        tight = outcomes["V-CDBS tight field (4 bits)"]
        default = outcomes["V-CDBS byte field (default)"]
        assert default is None or default > tight


class TestAblations:
    def test_invariant_ablation(self):
        result = run_invariant_ablation(count=128)
        assert result["cdbs_dead_end_gaps"] == 0
        assert result["binary_dead_end_gaps"] > 0

    def test_encoding_order_ablation(self):
        result = run_encoding_order_ablation(count=256)
        assert result["sequential_total_bits"] > 10 * result["balanced_total_bits"]
        assert result["sequential_max_bits"] == 256
        assert result["balanced_max_bits"] <= 9


class TestReporting:
    def test_format_number(self):
        assert format_number(0.0) == "0"
        assert format_number(1234.5) == "1,234"
        assert format_number(3.14159) == "3.14"
        assert format_number(0.001234) == "0.001234"
        assert format_number(42) == "42"
        assert format_number("x") == "x"
        assert format_number(True) == "True"

    def test_format_table(self):
        rendered = format_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "bb" in lines[-1]

    def test_format_table_empty(self):
        rendered = format_table(["h1"], [])
        assert "h1" in rendered


class TestExtensionsAndAblations:
    def test_gap_ablation_fast(self):
        from repro.bench import run_gap_ablation

        results = run_gap_ablation(gaps=(2, 64), inserts=30)
        assert results["V-CDBS"]["relabel_events"] == 0
        assert (
            results["Gapped(gap=2)"]["relabel_events"]
            > results["Gapped(gap=64)"]["relabel_events"]
        )
        assert (
            results["Gapped(gap=64)"]["initial_bits_per_node"]
            > results["Gapped(gap=2)"]["initial_bits_per_node"]
        )

    def test_adaptive_skew_fast(self):
        from repro.bench import run_adaptive_skew

        results = run_adaptive_skew(inserts=120, field_bits=5)
        assert results["QED"]["relabel_events"] == 0
        local = results["Adaptive-CDBS (local)"]
        full = results["V-CDBS (full re-label)"]
        if full["relabel_events"]:
            assert local["relabeled_nodes"] < full["relabeled_nodes"]

    def test_uniform_size_validity_fast(self):
        from repro.bench import run_uniform_size_validity

        result = run_uniform_size_validity(inserts=200)
        assert result["uniform_overhead_ratio"] < 1.1
        assert result["bulk_max_label_bits"] <= result["uniform_max_label_bits"]
