"""benchmarks/bench_gate.py: baseline comparison logic and CLI.

``benchmarks/`` is a scripts directory, not a package, so the module
under test is loaded by file path.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

GATE_PATH = (
    Path(__file__).parents[2] / "benchmarks" / "bench_gate.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("bench_gate", GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def bench_payload(median=50e-6, totals=None, calibration=0.01):
    """A minimal bench_update_hotpath-shaped JSON payload."""
    if totals is None:
        totals = {"pager.pages_written": 45, "middle.bits_generated": 310}
    return {
        "calibration_seconds": calibration,
        "configs": [
            {
                "scheme": "V-CDBS-Containment",
                "n": 1000,
                "mode": "optimized",
                "median_seconds_per_update": median,
                "obs": {"ledger": {"totals": dict(totals)}},
            },
            {
                # Legacy configs re-create seed behaviour; the gate
                # must ignore them entirely.
                "scheme": "V-CDBS-Containment",
                "n": 1000,
                "mode": "legacy",
                "median_seconds_per_update": median * 40,
            },
        ],
    }


class TestLoadEntries:
    def test_keys_optimized_configs_only(self, gate):
        loaded = gate.load_entries(bench_payload())
        assert set(loaded["entries"]) == {"V-CDBS-Containment@1000"}
        entry = loaded["entries"]["V-CDBS-Containment@1000"]
        assert entry["median_seconds_per_update"] == 50e-6
        assert entry["ledger_totals"]["pager.pages_written"] == 45
        assert loaded["calibration_seconds"] == 0.01

    def test_tolerates_missing_obs_section(self, gate):
        payload = bench_payload()
        del payload["configs"][0]["obs"]
        entry = gate.load_entries(payload)["entries"][
            "V-CDBS-Containment@1000"
        ]
        assert "ledger_totals" not in entry


class TestCompare:
    def test_identical_runs_pass(self, gate):
        entries = gate.load_entries(bench_payload())
        rows, ok = gate.compare(entries, entries)
        assert ok
        assert all(row[-1] == gate.OK for row in rows)

    def test_small_drift_within_tolerance_passes(self, gate):
        baseline = gate.load_entries(bench_payload(median=50e-6))
        current = gate.load_entries(bench_payload(median=60e-6))
        rows, ok = gate.compare(current, baseline, tolerance=0.30)
        assert ok and "+20.0%" in rows[0][4]

    def test_2x_slowdown_fails(self, gate):
        baseline = gate.load_entries(bench_payload(median=50e-6))
        current = gate.load_entries(bench_payload(median=100e-6))
        rows, ok = gate.compare(current, baseline)
        assert not ok
        (time_row,) = [r for r in rows if "median" in r[1]]
        assert time_row[-1] == gate.FAIL
        assert "+100.0%" in time_row[4]

    def test_2x_speedup_also_fails(self, gate):
        # Symmetric: an unexplained speedup usually means the bench
        # stopped measuring what it used to measure.
        baseline = gate.load_entries(bench_payload(median=50e-6))
        current = gate.load_entries(bench_payload(median=25e-6))
        _, ok = gate.compare(current, baseline)
        assert not ok

    def test_calibration_cancels_machine_speed(self, gate):
        # Median doubled, but so did the busy-loop calibration: the
        # machine is uniformly slower, not the code — must pass.
        baseline = gate.load_entries(
            bench_payload(median=50e-6, calibration=0.01)
        )
        current = gate.load_entries(
            bench_payload(median=100e-6, calibration=0.02)
        )
        rows, ok = gate.compare(current, baseline)
        assert ok
        assert "calibrated" in rows[0][1]

    def test_counter_drift_fails_exactly(self, gate):
        baseline = gate.load_entries(bench_payload())
        current = gate.load_entries(
            bench_payload(
                totals={"pager.pages_written": 46, "middle.bits_generated": 310}
            )
        )
        rows, ok = gate.compare(current, baseline)
        assert not ok
        (drift_row,) = [r for r in rows if r[1] == "pager.pages_written"]
        assert drift_row[2:] == ("45", "46", "drift", gate.FAIL)

    def test_counter_missing_on_either_side_fails(self, gate):
        baseline = gate.load_entries(bench_payload())
        current = gate.load_entries(
            bench_payload(totals={"pager.pages_written": 45})
        )
        _, ok = gate.compare(current, baseline)
        assert not ok

    def test_missing_config_fails(self, gate):
        baseline = gate.load_entries(bench_payload())
        current = {"calibration_seconds": 0.01, "entries": {}}
        rows, ok = gate.compare(current, baseline)
        assert not ok
        assert rows[0][1] == "(config)"


class TestMain:
    def test_update_then_compare_roundtrip(self, gate, tmp_path, capsys):
        run = tmp_path / "run.json"
        baseline = tmp_path / "baseline.json"
        run.write_text(json.dumps(bench_payload()))
        assert gate.main([str(run), str(baseline), "--update"]) == 0
        saved = json.loads(baseline.read_text())
        assert saved["benchmark"] == "update_hotpath_smoke"
        assert gate.main([str(run), str(baseline)]) == 0
        assert "bench-gate: ok" in capsys.readouterr().out

    def test_regression_exits_nonzero_with_diff_table(
        self, gate, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "benchmark": "update_hotpath_smoke",
                    **gate.load_entries(bench_payload(median=50e-6)),
                }
            )
        )
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(bench_payload(median=100e-6)))
        assert gate.main([str(slow), str(baseline)]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "REGRESSION" in captured.err
        assert "make bench-baseline" in captured.err

    def test_unreadable_baseline_is_a_usage_error(self, gate, tmp_path):
        run = tmp_path / "run.json"
        run.write_text(json.dumps(bench_payload()))
        assert gate.main([str(run), str(tmp_path / "missing.json")]) == 2

    def test_checked_in_baseline_matches_gate_schema(self, gate):
        # Guard against hand-edits: the real baseline must carry exactly
        # what compare() consumes.
        baseline = json.loads(gate.BASELINE_PATH.read_text())
        assert baseline["calibration_seconds"] > 0
        assert baseline["entries"]
        for entry in baseline["entries"].values():
            assert entry["median_seconds_per_update"] > 0
            assert entry["ledger_totals"]
