"""End-to-end integration: parse → label → query → update → re-query.

Walks the full pipeline the way a downstream user would, across all
three labeling families, and cross-checks against the reference
evaluator after every mutation.
"""

from __future__ import annotations

import pytest

from repro.datasets import build_hamlet
from repro.labeling import make_scheme
from repro.query import QueryEngine, TABLE3_QUERIES, evaluate_reference
from repro.updates import UpdateEngine
from repro.xmltree import (
    Node,
    merge_adjacent_text,
    parse_document,
    serialize_document,
)

PIPELINE_SCHEMES = ("V-CDBS-Containment", "QED-Prefix", "Prime")


@pytest.mark.parametrize("scheme_name", PIPELINE_SCHEMES)
def test_full_pipeline(scheme_name):
    # 1. Author a document as XML text and parse it.
    text = serialize_document(build_hamlet())
    document = parse_document(text, name="hamlet")
    assert document.node_count() == 6636

    # 2. Label it.
    scheme = make_scheme(scheme_name)
    labeled = scheme.label_document(document)

    # 3. Query it; spot-check against the reference evaluator.
    engine = QueryEngine(labeled)
    for query in ("/play/act", "//speech/speaker", "/play/act[3]//line"):
        expected = [id(n) for n in evaluate_reference(document, query)]
        assert [id(n) for n in engine.evaluate(query)] == expected

    # 4. Update: insert a new scene at the front of act 1.
    updates = UpdateEngine(labeled, with_storage=True)
    act1 = document.elements_by_tag("act")[0]
    scene = Node.element("scene")
    title = scene.append_child(Node.element("title"))
    title.append_child(Node.text("SCENE 0. A new beginning."))
    speech = scene.append_child(Node.element("speech"))
    speech.append_child(Node.element("speaker")).append_child(Node.text("GHOST"))
    result = updates.insert_child(act1, scene, index=1)  # after act title
    assert result.stats.inserted_nodes == 6
    assert result.total_seconds > 0

    # 5. Re-query: results still agree with the reference.
    for query in ("/play/act[1]/scene[1]/title", "//speaker"):
        expected = [id(n) for n in evaluate_reference(document, query)]
        assert [id(n) for n in engine.evaluate(query)] == expected

    # 6. Delete the new scene again and re-check.
    updates.delete(scene)
    assert document.node_count() == 6636
    expected = [id(n) for n in evaluate_reference(document, "//scene/title")]
    assert [id(n) for n in engine.evaluate("//scene/title")] == expected


def test_serialization_of_updated_document_round_trips():
    document = parse_document("<library><shelf><book>A</book></shelf></library>")
    labeled = make_scheme("QED-Containment").label_document(document)
    updates = UpdateEngine(labeled, with_storage=False)
    shelf = document.elements_by_tag("shelf")[0]
    book = Node.element("book")
    book.append_child(Node.text("B"))
    updates.insert_child(shelf, book)
    merge_adjacent_text(document.root)
    text = serialize_document(document)
    reparsed = parse_document(text)
    assert [b.text_content() for b in reparsed.elements_by_tag("book")] == [
        "A",
        "B",
    ]


def test_order_keys_survive_heavy_churn():
    """A labeled document subjected to interleaved updates keeps a
    totally ordered, reference-consistent label set (all families)."""
    import random

    for scheme_name in PIPELINE_SCHEMES:
        document = parse_document(
            "<r>" + "<s><t/><t/></s>" * 10 + "</r>"
        )
        labeled = make_scheme(scheme_name).label_document(document)
        engine = UpdateEngine(labeled, with_storage=False)
        rng = random.Random(13)
        for step in range(40):
            elements = [
                n
                for n in labeled.nodes_in_order
                if n.kind.value == "element"
            ]
            if step % 5 == 4:
                victims = [
                    n for n in elements if n.parent is not None and not n.children
                ]
                if victims:
                    engine.delete(rng.choice(victims))
                    continue
            parent = rng.choice(elements)
            engine.insert_child(
                parent, Node.element("u"), rng.randint(0, len(parent.children))
            )
        keys = [
            labeled.scheme.order_key(labeled.label_of(n))
            for n in labeled.nodes_in_order
        ]
        assert keys == sorted(keys), scheme_name
        expected = [id(n) for n in evaluate_reference(document, "//u")]
        got = [id(n) for n in QueryEngine(labeled).evaluate("//u")]
        assert got == expected, scheme_name
