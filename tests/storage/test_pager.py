"""Page store and I/O cost model."""

from __future__ import annotations

import pytest

from repro.storage import BufferPool, IOCostModel, PageCounter, PageStore


class TestIOCostModel:
    def test_defaults(self):
        model = IOCostModel()
        assert model.cost(1, 0) == pytest.approx(0.008)
        assert model.cost(0, 2) == pytest.approx(0.016)

    def test_custom(self):
        model = IOCostModel(read_seconds=0.001, write_seconds=0.002)
        assert model.cost(3, 4) == pytest.approx(0.011)


class TestPageCounter:
    def test_merge(self):
        merged = PageCounter(1, 2).merge(PageCounter(3, 4))
        assert (merged.reads, merged.writes) == (4, 6)


class TestPageStore:
    def test_bad_page_size(self):
        with pytest.raises(ValueError):
            PageStore(0)

    def test_empty(self):
        store = PageStore(100)
        assert store.record_count() == 0
        assert store.page_count() == 0

    def test_load_counts_pages(self):
        store = PageStore(100)
        store.load_records([40] * 10)  # 400 bytes -> 4 pages
        assert store.record_count() == 10
        assert store.total_bytes() == 400
        assert store.page_count() == 4
        assert store.counter.writes == 4

    def test_load_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            PageStore(100).load_records([10, -1])

    def test_pages_of_range(self):
        store = PageStore(100)
        store.load_records([40] * 10)
        assert store.pages_of_range(0, 0) == 1
        assert store.pages_of_range(0, 9) == 4
        # Records 2 (bytes 80..119) spans pages 0 and 1.
        assert store.pages_of_range(2, 2) == 2

    def test_touch_range_counts(self):
        store = PageStore(100)
        store.load_records([40] * 10)
        store.counter = PageCounter()
        pages = store.touch_range(0, 9)
        assert pages == 4
        assert store.counter.reads == 4
        assert store.counter.writes == 4

    def test_overwrite_single(self):
        store = PageStore(100)
        store.load_records([10] * 5)
        store.counter = PageCounter()
        assert store.overwrite(2) == 1

    def test_splice_insert_local_cost(self):
        store = PageStore(4096)
        store.load_records([4] * 1000)
        store.counter = PageCounter()
        pages = store.splice(500, [4])
        assert pages == 1  # slotted-page local insert
        assert store.record_count() == 1001

    def test_splice_large_insert_spans_pages(self):
        store = PageStore(100)
        store.load_records([10] * 10)
        store.counter = PageCounter()
        pages = store.splice(5, [50] * 10)  # 500 new bytes
        assert pages == 1 + 500 // 100
        assert store.record_count() == 20

    def test_splice_remove(self):
        store = PageStore(100)
        store.load_records([10] * 10)
        assert store.splice(2, [], removed=3) >= 1
        assert store.record_count() == 7
        assert store.total_bytes() == 70

    def test_splice_noop(self):
        store = PageStore(100)
        store.load_records([10] * 10)
        store.counter = PageCounter()
        assert store.splice(5, []) == 0
        assert store.counter.reads == 0

    def test_splice_bounds(self):
        store = PageStore(100)
        store.load_records([10] * 10)
        with pytest.raises(ValueError):
            store.splice(11, [10])
        with pytest.raises(ValueError):
            store.splice(8, [], removed=5)

    def test_relabel_vs_insert_asymmetry(self):
        """The Figure 7 asymmetry: a re-label storm touches many pages,
        a dynamic insert touches one."""
        store = PageStore(4096)
        store.load_records([4] * 6636)
        store.counter = PageCounter()
        insert_pages = store.splice(41, [4])
        relabel_pages = store.touch_range(41, 6636)
        assert insert_pages == 1
        assert relabel_pages >= 6

    def test_splice_rejects_negative_sizes(self):
        store = PageStore(100)
        store.load_records([10] * 10)
        with pytest.raises(ValueError):
            store.splice(5, [10, -2])


class TestSharedPoolNamespacing:
    """Two stores sharing one pool must not alias each other's pages.

    Before namespacing, both stores numbered pages from 0, so a read of
    store B's page 0 after a read of store A's page 0 counted as a cache
    hit on a page the pool never held — inflating hit ratios (and
    deflating modelled I/O) for every two-file workload, e.g. Prime's
    label + SC files.
    """

    def test_same_page_number_different_store_misses(self):
        pool = BufferPool(8)
        labels = PageStore(100, buffer_pool=pool, namespace="labels")
        sc = PageStore(100, buffer_pool=pool, namespace="sc")
        labels.load_records([10] * 10)
        sc.load_records([10] * 10)
        labels.touch_range(0, 9)  # caches labels pages 0
        hits_before = pool.hits
        sc.counter = PageCounter()
        sc.touch_range(0, 9)  # must MISS: sc page 0 was never cached
        assert pool.hits == hits_before
        assert sc.counter.reads == 1

    def test_same_store_still_hits(self):
        pool = BufferPool(8)
        store = PageStore(100, buffer_pool=pool, namespace="labels")
        store.load_records([10] * 10)
        store.touch_range(0, 9)
        store.counter = PageCounter()
        store.touch_range(0, 9)
        assert store.counter.reads == 0  # warm

    def test_direct_pool_access_unaffected(self):
        # Tests and callers may key pages with bare ints; namespaced
        # tuples must coexist without clashing.
        pool = BufferPool(8)
        assert not pool.access(0)
        assert pool.access(0)
        store = PageStore(100, buffer_pool=pool, namespace="x")
        store.load_records([10] * 10)
        store.counter = PageCounter()
        store.touch_range(0, 0)
        assert store.counter.reads == 1  # ("x", 0) != 0


class TestSpliceInvalidation:
    """A splice shifts every later record; cached pages past the ones it
    rewrote describe pre-shift contents and must be dropped."""

    def test_pages_after_splice_are_reread(self):
        pool = BufferPool(64)
        store = PageStore(100, buffer_pool=pool, namespace="x")
        store.load_records([10] * 100)  # 10 pages
        store.touch_range(0, 99)  # warm all 10 pages
        store.splice(5, [10])  # rewrites page 0, shifts pages 1..
        store.counter = PageCounter()
        store.touch_range(50, 59)  # pages past the splice point
        assert store.counter.reads > 0

    def test_rewritten_page_stays_cached(self):
        pool = BufferPool(64)
        store = PageStore(100, buffer_pool=pool, namespace="x")
        store.load_records([10] * 100)
        store.touch_range(0, 99)
        store.splice(5, [10])  # page 0 goes through the pool
        store.counter = PageCounter()
        store.touch_range(0, 0)
        assert store.counter.reads == 0

    def test_invalidate_from_reports_drops(self):
        pool = BufferPool(64)
        store = PageStore(100, buffer_pool=pool, namespace="x")
        store.load_records([10] * 100)
        store.touch_range(0, 99)
        assert pool.invalidate_from("x", 4) == 6
        assert pool.invalidate_from("x", 0) == 4
        assert pool.invalidate_from("other", 0) == 0
