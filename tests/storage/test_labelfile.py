"""Label bundle persistence: save/load round-trips."""

from __future__ import annotations

import pytest

from repro.labeling import make_scheme, scheme_names
from repro.query import QueryEngine, evaluate_reference
from repro.storage import LabelFileError, load_labeled, save_labeled
from repro.updates import UpdateEngine
from repro.xmltree import Node, merge_adjacent_text, parse_document

from tests.conftest import make_small_document


def make_labeled(scheme_name, seed=41, size=140):
    document = make_small_document(seed=seed, size=size)
    merge_adjacent_text(document.root)
    return make_scheme(scheme_name).label_document(document)


class TestRoundTrip:
    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_queries_identical_after_reload(self, scheme_name, tmp_path):
        labeled = make_labeled(scheme_name)
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        reloaded = load_labeled(path)
        assert reloaded.scheme.name == scheme_name
        assert reloaded.node_count() == labeled.node_count()
        for query in ("/root/a", "//b", "//a/b", "//c[1]", "/root/*"):
            original = [
                n.text_content()
                for n in QueryEngine(labeled).evaluate(query)
            ]
            restored = [
                n.text_content()
                for n in QueryEngine(reloaded).evaluate(query)
            ]
            assert original == restored, query

    def test_reloaded_document_still_updatable(self, tmp_path):
        labeled = make_labeled("V-CDBS-Containment")
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        reloaded = load_labeled(path)
        engine = UpdateEngine(reloaded, with_storage=False)
        result = engine.insert_child(reloaded.document.root, Node.element("new"), 0)
        assert result.stats.relabeled_nodes == 0
        keys = [
            reloaded.scheme.order_key(reloaded.label_of(n))
            for n in reloaded.nodes_in_order
        ]
        assert keys == sorted(keys)

    def test_reloaded_prime_supports_order_and_updates(self, tmp_path):
        labeled = make_labeled("Prime")
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        reloaded = load_labeled(path)
        keys = [
            reloaded.scheme.order_key(reloaded.label_of(n))
            for n in reloaded.nodes_in_order
        ]
        assert keys == sorted(keys)
        engine = UpdateEngine(reloaded, with_storage=False)
        new = Node.element("fresh")
        engine.insert_child(reloaded.document.root, new, 0)
        # The new prime must not collide with any persisted one.
        selfs = [label.self_label for label in reloaded.labels.values()]
        assert len(set(selfs)) == len(selfs)

    def test_reload_agrees_with_reference_evaluator(self, tmp_path):
        labeled = make_labeled("QED-Containment")
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        reloaded = load_labeled(path)
        expected = [
            n.text_content()
            for n in evaluate_reference(reloaded.document, "//b")
        ]
        got = [
            n.text_content() for n in QueryEngine(reloaded).evaluate("//b")
        ]
        assert got == expected


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.rpro"
        path.write_bytes(b"NOT A BUNDLE")
        with pytest.raises(LabelFileError):
            load_labeled(path)

    def test_truncated_payload(self, tmp_path):
        labeled = make_labeled("QED-Prefix")
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(LabelFileError):
            load_labeled(path)

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "doc.rpro"
        path.write_bytes(b"RPRO-LABELS-1\nonly-one-line")
        with pytest.raises(LabelFileError):
            load_labeled(path)

    def test_unknown_scheme(self, tmp_path):
        path = tmp_path / "doc.rpro"
        path.write_bytes(
            b"RPRO-LABELS-1\nNo-Such-Scheme\n{}\n1 1\n<a"
        )
        with pytest.raises(KeyError):
            load_labeled(path)
