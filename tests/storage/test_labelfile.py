"""Label bundle persistence: save/load round-trips."""

from __future__ import annotations

import pytest

from repro.labeling import make_scheme, scheme_names
from repro.query import QueryEngine, evaluate_reference
from repro.storage import LabelFileError, load_labeled, save_labeled
from repro.updates import UpdateEngine
from repro.xmltree import Node, merge_adjacent_text, parse_document

from tests.conftest import make_small_document


def make_labeled(scheme_name, seed=41, size=140):
    document = make_small_document(seed=seed, size=size)
    merge_adjacent_text(document.root)
    return make_scheme(scheme_name).label_document(document)


class TestRoundTrip:
    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_queries_identical_after_reload(self, scheme_name, tmp_path):
        labeled = make_labeled(scheme_name)
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        reloaded = load_labeled(path)
        assert reloaded.scheme.name == scheme_name
        assert reloaded.node_count() == labeled.node_count()
        for query in ("/root/a", "//b", "//a/b", "//c[1]", "/root/*"):
            original = [
                n.text_content()
                for n in QueryEngine(labeled).evaluate(query)
            ]
            restored = [
                n.text_content()
                for n in QueryEngine(reloaded).evaluate(query)
            ]
            assert original == restored, query

    def test_reloaded_document_still_updatable(self, tmp_path):
        labeled = make_labeled("V-CDBS-Containment")
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        reloaded = load_labeled(path)
        engine = UpdateEngine(reloaded, with_storage=False)
        result = engine.insert_child(reloaded.document.root, Node.element("new"), 0)
        assert result.stats.relabeled_nodes == 0
        keys = [
            reloaded.scheme.order_key(reloaded.label_of(n))
            for n in reloaded.nodes_in_order
        ]
        assert keys == sorted(keys)

    def test_reloaded_prime_supports_order_and_updates(self, tmp_path):
        labeled = make_labeled("Prime")
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        reloaded = load_labeled(path)
        keys = [
            reloaded.scheme.order_key(reloaded.label_of(n))
            for n in reloaded.nodes_in_order
        ]
        assert keys == sorted(keys)
        engine = UpdateEngine(reloaded, with_storage=False)
        new = Node.element("fresh")
        engine.insert_child(reloaded.document.root, new, 0)
        # The new prime must not collide with any persisted one.
        selfs = [label.self_label for label in reloaded.labels.values()]
        assert len(set(selfs)) == len(selfs)

    def test_reload_agrees_with_reference_evaluator(self, tmp_path):
        labeled = make_labeled("QED-Containment")
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        reloaded = load_labeled(path)
        expected = [
            n.text_content()
            for n in evaluate_reference(reloaded.document, "//b")
        ]
        got = [
            n.text_content() for n in QueryEngine(reloaded).evaluate("//b")
        ]
        assert got == expected


class TestFormatV2:
    def test_bundles_are_written_as_v2(self, tmp_path):
        labeled = make_labeled("V-CDBS-Containment")
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        assert path.read_bytes().startswith(b"RPRO-LABELS-2\n")

    def test_v1_bundles_still_load(self, tmp_path):
        labeled = make_labeled("V-CDBS-Containment")
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        # rewrite the bundle as v1: old magic, no checksum field
        magic, scheme, config, sizes, payload = path.read_bytes().split(
            b"\n", 4
        )
        xml_size, label_size, _ = sizes.split()
        path.write_bytes(
            b"RPRO-LABELS-1\n"
            + scheme
            + b"\n"
            + config
            + b"\n"
            + xml_size
            + b" "
            + label_size
            + b"\n"
            + payload
        )
        reloaded = load_labeled(path)
        assert reloaded.node_count() == labeled.node_count()

    def test_flipped_payload_byte_is_caught_by_checksum(self, tmp_path):
        labeled = make_labeled("V-CDBS-Containment")
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF  # corrupt the label stream, sizes unchanged
        path.write_bytes(bytes(data))
        with pytest.raises(LabelFileError, match="checksum"):
            load_labeled(path)

    def test_bad_checksum_field(self, tmp_path):
        labeled = make_labeled("V-CDBS-Containment")
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        magic, scheme, config, sizes, payload = path.read_bytes().split(
            b"\n", 4
        )
        xml_size, label_size, _ = sizes.split()
        path.write_bytes(
            b"\n".join(
                (magic, scheme, config, xml_size + b" " + label_size + b" 1")
            )
            + b"\n"
            + payload
        )
        with pytest.raises(LabelFileError, match="checksum"):
            load_labeled(path)


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.rpro"
        path.write_bytes(b"NOT A BUNDLE")
        with pytest.raises(LabelFileError):
            load_labeled(path)

    def test_truncated_payload(self, tmp_path):
        labeled = make_labeled("QED-Prefix")
        path = tmp_path / "doc.rpro"
        save_labeled(labeled, path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(LabelFileError):
            load_labeled(path)

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "doc.rpro"
        path.write_bytes(b"RPRO-LABELS-1\nonly-one-line")
        with pytest.raises(LabelFileError):
            load_labeled(path)

    def test_v1_header_with_checksum_field_is_malformed(self, tmp_path):
        path = tmp_path / "doc.rpro"
        path.write_bytes(b"RPRO-LABELS-1\nPrime\n{}\n1 1 0\n<a")
        with pytest.raises(LabelFileError, match="header"):
            load_labeled(path)

    def test_unknown_scheme(self, tmp_path):
        path = tmp_path / "doc.rpro"
        path.write_bytes(
            b"RPRO-LABELS-1\nNo-Such-Scheme\n{}\n1 1\n<a"
        )
        with pytest.raises(LabelFileError, match="scheme"):
            load_labeled(path)

    def test_malformed_config_json(self, tmp_path):
        path = tmp_path / "doc.rpro"
        path.write_bytes(b"RPRO-LABELS-1\nPrime\nnot json\n1 1\n<a")
        with pytest.raises(LabelFileError, match="config"):
            load_labeled(path)

    def test_undecodable_payload(self, tmp_path):
        body = b"\xff\xfe\x00\x01"
        path = tmp_path / "doc.rpro"
        path.write_bytes(
            b"RPRO-LABELS-1\nPrime\n{}\n%d 0\n" % len(body) + body
        )
        with pytest.raises(LabelFileError, match="payload"):
            load_labeled(path)
