"""The LRU buffer pool."""

from __future__ import annotations

import pytest

from repro.storage import BufferPool, PageCounter, PageStore


class TestBufferPool:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    def test_miss_then_hit(self):
        pool = BufferPool(4)
        assert pool.access(1) is False
        assert pool.access(1) is True
        assert (pool.hits, pool.misses) == (1, 1)
        assert pool.hit_ratio == 0.5

    def test_lru_eviction(self):
        pool = BufferPool(2)
        pool.access(1)
        pool.access(2)
        pool.access(1)  # 1 becomes most-recent
        pool.access(3)  # evicts 2
        assert pool.access(2) is False
        assert pool.access(1) is False  # 1 was evicted by re-adding 2

    def test_invalidate(self):
        pool = BufferPool(4)
        pool.access(7)
        pool.invalidate(7)
        assert pool.access(7) is False

    def test_clear(self):
        pool = BufferPool(4)
        pool.access(1)
        pool.clear()
        assert pool.access(1) is False

    def test_empty_ratio(self):
        assert BufferPool(4).hit_ratio == 0.0


class TestPageStoreIntegration:
    def make(self, pool=None):
        store = PageStore(100, buffer_pool=pool)
        store.load_records([10] * 50)  # 5 pages
        store.counter = PageCounter()
        return store

    def test_without_pool_every_read_counts(self):
        store = self.make()
        store.touch_range(0, 49)
        store.touch_range(0, 49)
        assert store.counter.reads == 10

    def test_pool_absorbs_repeat_reads(self):
        pool = BufferPool(16)
        store = self.make(pool)
        store.touch_range(0, 49)
        assert store.counter.reads == 5  # cold
        store.touch_range(0, 49)
        assert store.counter.reads == 5  # warm: all hits
        assert pool.hits == 5

    def test_writes_are_write_through(self):
        pool = BufferPool(16)
        store = self.make(pool)
        store.touch_range(0, 49)
        store.touch_range(0, 49)
        assert store.counter.writes == 10  # every touch writes

    def test_small_pool_thrashes(self):
        pool = BufferPool(2)
        store = self.make(pool)
        store.touch_range(0, 49)
        store.touch_range(0, 49)
        # 5-page scans through a 2-page pool: no useful hits.
        assert store.counter.reads == 10

    def test_skewed_updates_enjoy_locality(self):
        """The skew workload's silver lining: its page is always hot."""
        pool = BufferPool(4)
        store = self.make(pool)
        for _ in range(100):
            store.touch_range(25, 26)  # same neighbourhood every time
        assert pool.hit_ratio > 0.95


class TestEngineWithCache:
    def test_skewed_updates_cheaper_with_cache(self):
        from repro.datasets import build_hamlet
        from repro.labeling import make_scheme
        from repro.updates import UpdateEngine, run_skewed_insertions, table4_cases

        def run(cache_pages):
            document = build_hamlet()
            labeled = make_scheme("QED-Containment").label_document(document)
            engine = UpdateEngine(
                labeled, with_storage=True, cache_pages=cache_pages
            )
            target = table4_cases(document)[2]
            report = run_skewed_insertions(engine, target, 40)
            return report.io_seconds, engine.store

        cold_io, _ = run(None)
        warm_io, store = run(64)
        assert warm_io < cold_io
        assert store.buffer_pool is not None
        assert store.buffer_pool.hit_ratio > 0.5
