"""Bit-exact label stream encoding/decoding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitstring import BitString
from repro.errors import InvalidCodeError
from repro.labeling import make_scheme, scheme_names
from repro.storage.encoding import (
    BitReader,
    BitWriter,
    EncodingError,
    decode_labels,
    decode_ordpath_component,
    decode_utf8_varint,
    encode_labels,
    encode_ordpath_component,
    encode_utf8_varint,
    make_label_codec,
)

from tests.conftest import make_small_document


class TestBitIO:
    def test_empty(self):
        writer = BitWriter()
        assert writer.to_bytes() == b""
        assert writer.bit_length() == 0

    def test_roundtrip_values(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0b0001, 4)
        writer.write(1, 1)
        data = writer.to_bytes()
        assert len(data) == 1
        reader = BitReader(data)
        assert reader.read(3) == 0b101
        assert reader.read(4) == 0b0001
        assert reader.read(1) == 1

    def test_write_overflow_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(4, 2)

    def test_read_past_end(self):
        reader = BitReader(b"\x00")
        reader.read(8)
        with pytest.raises(EncodingError):
            reader.read(1)

    def test_bitstring_io(self):
        writer = BitWriter()
        writer.write_bitstring(BitString.from_str("01101"))
        reader = BitReader(writer.to_bytes())
        assert reader.read_bitstring(5).to01() == "01101"

    @settings(max_examples=40)
    @given(st.lists(st.tuples(st.integers(0, 2**20), st.integers(21, 24)), max_size=20))
    def test_property_roundtrip(self, fields):
        writer = BitWriter()
        for value, width in fields:
            writer.write(value, width)
        reader = BitReader(writer.to_bytes())
        for value, width in fields:
            assert reader.read(width) == value


class TestUtf8Varint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 2047, 2048, 65535, 10**7])
    def test_roundtrip(self, value):
        writer = BitWriter()
        encode_utf8_varint(writer, value)
        assert decode_utf8_varint(BitReader(writer.to_bytes())) == value

    def test_frame_sizes_match_accounting(self):
        from repro.labeling.prefix import utf8_bits

        for value in (1, 127, 128, 2047, 2048, 70000):
            writer = BitWriter()
            encode_utf8_varint(writer, value)
            assert writer.bit_length() == utf8_bits(max(1, value.bit_length()))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_utf8_varint(BitWriter(), -1)

    def test_too_large_rejected(self):
        with pytest.raises(InvalidCodeError):
            encode_utf8_varint(BitWriter(), 1 << 40)

    def test_malformed_lead_byte(self):
        with pytest.raises(EncodingError):
            decode_utf8_varint(BitReader(b"\x80\x80"))  # bare continuation

    def test_malformed_continuation(self):
        with pytest.raises(EncodingError):
            decode_utf8_varint(BitReader(b"\xc2\x00"))  # '00' marker

    @settings(max_examples=60)
    @given(st.integers(min_value=0, max_value=(1 << 36) - 1))
    def test_property_roundtrip(self, value):
        writer = BitWriter()
        encode_utf8_varint(writer, value)
        assert decode_utf8_varint(BitReader(writer.to_bytes())) == value


class TestOrdPathComponent:
    @pytest.mark.parametrize(
        "value", [0, 1, 7, 8, 23, 24, 87, 343, 4439, 69975, 10**6, -1, -8, -344, -70000]
    )
    def test_roundtrip(self, value):
        writer = BitWriter()
        encode_ordpath_component(writer, value)
        assert decode_ordpath_component(BitReader(writer.to_bytes())) == value

    def test_bits_match_accounting(self):
        from repro.labeling.prefix import ordpath_li_oi_bits

        for value in (1, 20, 100, 5000, -5, -300):
            writer = BitWriter()
            encode_ordpath_component(writer, value)
            assert writer.bit_length() == ordpath_li_oi_bits(value)

    def test_out_of_range(self):
        with pytest.raises(InvalidCodeError):
            encode_ordpath_component(BitWriter(), 1 << 70)

    @settings(max_examples=60)
    @given(st.integers(min_value=-60_000, max_value=1_000_000))
    def test_property_roundtrip(self, value):
        writer = BitWriter()
        encode_ordpath_component(writer, value)
        assert decode_ordpath_component(BitReader(writer.to_bytes())) == value


def _labels_equal(scheme, original, decoded) -> bool:
    if scheme.family == "containment":
        key = scheme.codec.key
        return all(
            (key(a.start), key(a.end), a.level)
            == (key(b.start), key(b.end), b.level)
            for a, b in zip(original, decoded)
        )
    if scheme.family == "prime":
        return all(
            (a.product, a.self_label) == (b.product, b.self_label)
            for a, b in zip(original, decoded)
        )
    return original == decoded


class TestLabelStreams:
    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_roundtrip_every_scheme(self, scheme_name):
        document = make_small_document(seed=21, size=150)
        scheme = make_scheme(scheme_name)
        labeled = scheme.label_document(document)
        blob = encode_labels(labeled)
        decoded = decode_labels(scheme, blob)
        original = [labeled.label_of(n) for n in labeled.nodes_in_order]
        assert len(decoded) == len(original)
        assert _labels_equal(scheme, original, decoded)

    @pytest.mark.parametrize(
        "scheme_name",
        [
            "V-Binary-Containment",
            "F-Binary-Containment",
            "V-CDBS-Containment",
            "F-CDBS-Containment",
            "QED-Containment",
            "Float-point-Containment",
        ],
    )
    def test_containment_stream_matches_size_accounting(self, scheme_name):
        """Figure 5's bit counts equal the real encoded stream size
        (modulo the 32-bit count header and byte padding)."""
        document = make_small_document(seed=23, size=120)
        scheme = make_scheme(scheme_name)
        labeled = scheme.label_document(document)
        blob = encode_labels(labeled)
        encoded_bits = len(blob) * 8 - 32
        accounted = labeled.total_label_bits()
        assert 0 <= encoded_bits - accounted < 8  # only byte padding

    def test_roundtrip_after_updates(self):
        from repro.updates import UpdateEngine
        from repro.xmltree import Node

        document = make_small_document(seed=29, size=100)
        scheme = make_scheme("V-CDBS-Containment")
        labeled = scheme.label_document(document)
        engine = UpdateEngine(labeled, with_storage=False)
        for index in (0, 1, 2):
            engine.insert_child(document.root, Node.element("n"), index)
        blob = encode_labels(labeled)
        decoded = decode_labels(scheme, blob)
        original = [labeled.label_of(n) for n in labeled.nodes_in_order]
        assert _labels_equal(scheme, original, decoded)

    def test_truncated_stream_rejected(self):
        document = make_small_document(seed=31, size=60)
        scheme = make_scheme("QED-Containment")
        labeled = scheme.label_document(document)
        blob = encode_labels(labeled)
        with pytest.raises(EncodingError):
            decode_labels(scheme, blob[: len(blob) // 2])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            make_label_codec(object())
