"""atomic_write_bytes and the atomic save_labeled regression.

The regression this file pins down (ISSUE 5 satellite): before the
atomic rewrite, ``save_labeled`` opened the destination with ``"wb"`` —
a failure mid-save *truncated the previous good bundle*.  Now a failed
save must leave the old bundle byte-identical and loadable.
"""

from __future__ import annotations

import os

import pytest

from repro.labeling import make_scheme
from repro.storage import atomic_write_bytes
from repro.storage.labelfile import load_labeled, save_labeled
from repro.xmltree import parse_document, serialize_document


class TestAtomicWriteBytes:
    def test_writes_and_returns_length(self, tmp_path):
        target = tmp_path / "artifact.bin"
        assert atomic_write_bytes(target, b"hello") == 5
        assert target.read_bytes() == b"hello"
        assert not target.with_name("artifact.bin.tmp").exists()

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "artifact.bin"
        target.write_bytes(b"old")
        atomic_write_bytes(target, b"new bytes")
        assert target.read_bytes() == b"new bytes"

    def test_failure_leaves_destination_untouched(self, tmp_path, monkeypatch):
        target = tmp_path / "artifact.bin"
        target.write_bytes(b"the good copy")

        real_replace = os.replace

        def exploding_replace(src, dst):
            raise OSError("disk pulled")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk pulled"):
            atomic_write_bytes(target, b"half-written garbage")
        monkeypatch.setattr(os, "replace", real_replace)

        assert target.read_bytes() == b"the good copy"
        assert not target.with_name("artifact.bin.tmp").exists()

    def test_failure_during_write_cleans_tmp(self, tmp_path, monkeypatch):
        target = tmp_path / "artifact.bin"

        def exploding_fsync(fd):
            raise OSError("power cut")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="power cut"):
            atomic_write_bytes(target, b"data")
        assert not target.exists()
        assert not target.with_name("artifact.bin.tmp").exists()


class TestSaveLabeledIsAtomic:
    def build(self):
        doc = parse_document("<r><a><b/></a><c/></r>")
        return make_scheme("V-CDBS-Containment").label_document(doc)

    def test_failed_resave_keeps_the_previous_bundle(
        self, tmp_path, monkeypatch
    ):
        labeled = self.build()
        path = tmp_path / "doc.labels"
        save_labeled(labeled, path)
        good = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("crash mid-save")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="crash mid-save"):
            save_labeled(labeled, path)
        monkeypatch.undo()

        assert path.read_bytes() == good
        reloaded = load_labeled(path)
        assert serialize_document(reloaded.document) == serialize_document(
            labeled.document
        )

    def test_save_returns_the_bundle_size(self, tmp_path):
        labeled = self.build()
        path = tmp_path / "doc.labels"
        written = save_labeled(labeled, path)
        assert written == path.stat().st_size > 0
