"""LabelStore: translating UpdateStats into page I/O."""

from __future__ import annotations

import pytest

from repro.labeling import UpdateStats, make_scheme
from repro.storage import IOCostModel, LabelStore
from repro.xmltree import parse_document


def build_store(scheme_name="V-CDBS-Containment", body=None):
    doc = parse_document(body or "<r>" + "<a><b/></a>" * 50 + "</r>")
    labeled = make_scheme(scheme_name).label_document(doc)
    return LabelStore(labeled, io_model=IOCostModel(0.001, 0.001))


class TestLoad:
    def test_initial_layout(self):
        store = build_store()
        assert store.pages.record_count() == 101
        assert store.pages.total_bytes() > 0

    def test_prime_has_sc_file(self):
        store = build_store("Prime")
        assert store.sc_pages.record_count() == -(-101 // 5)

    def test_non_prime_has_empty_sc_file(self):
        store = build_store()
        assert store.sc_pages.record_count() == 0

    def test_io_seconds_counts_initial_write(self):
        store = build_store()
        assert store.io_seconds_so_far() > 0


class TestApplyUpdate:
    def test_dynamic_insert_one_page(self):
        store = build_store()
        pages, seconds = store.apply_update(
            UpdateStats(inserted_nodes=1, labels_written=1), position=10
        )
        assert pages == 1
        assert seconds == pytest.approx(0.002)

    def test_relabel_touches_suffix(self):
        store = build_store()
        pages, seconds = store.apply_update(
            UpdateStats(inserted_nodes=1, relabeled_nodes=90, labels_written=91),
            position=10,
        )
        assert pages >= 1
        assert seconds > 0.002 * 0  # read+write charged

    def test_delete(self):
        store = build_store()
        before = store.pages.record_count()
        pages, _ = store.apply_update(
            UpdateStats(deleted_nodes=5), position=10
        )
        assert pages >= 1
        assert store.pages.record_count() == before - 5

    def test_sc_recompute_reads_label_suffix(self):
        store = build_store("Prime")
        reads_before = store.pages.counter.reads
        store.apply_update(UpdateStats(sc_recomputed=10), position=0)
        assert store.pages.counter.reads > reads_before

    def test_relabel_costs_more_than_insert(self):
        insert_store = build_store()
        relabel_store = build_store()
        _, insert_seconds = insert_store.apply_update(
            UpdateStats(inserted_nodes=1, labels_written=1), position=0
        )
        _, relabel_seconds = relabel_store.apply_update(
            UpdateStats(inserted_nodes=1, relabeled_nodes=100, labels_written=101),
            position=0,
        )
        assert relabel_seconds >= insert_seconds
