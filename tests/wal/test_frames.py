"""WAL frame/record codec: round-trips, tolerant scans, corruption.

The load-bearing property (ISSUE 5 satellite): under arbitrary single
byte flips and truncations, parsing either yields a clean prefix of the
original records or raises :class:`WalError` — it never hands back an
altered record as if it were valid.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wal import (
    FRAME_HEADER_BYTES,
    TailStatus,
    WalError,
    WalRecord,
    decode_frames,
    decode_record,
    encode_frame,
    encode_record,
    scan_frames,
)


def sample_record(lsn=1, blob=b"\x01\x02\x03"):
    return WalRecord(
        lsn=lsn,
        op="insert",
        scheme="V-CDBS-Containment",
        subops=(
            {
                "kind": "insert",
                "parent": 4,
                "index": 0,
                "xml": ["<e7/>"],
                "labels": blob,
            },
        ),
    )


def sample_log(count=4):
    records = [
        sample_record(lsn=lsn, blob=bytes([lsn]) * lsn)
        for lsn in range(1, count + 1)
    ]
    return records, b"".join(
        encode_frame(encode_record(record)) for record in records
    )


class TestRecordRoundTrip:
    def test_round_trip_preserves_everything(self):
        record = sample_record()
        assert decode_record(encode_record(record)) == record

    def test_multi_subop_blobs_slice_correctly(self):
        record = WalRecord(
            lsn=9,
            op="move_before",
            scheme="CDBS(UTF8)-Prefix",
            subops=(
                {"kind": "delete", "root": 3, "labels": b""},
                {
                    "kind": "insert",
                    "parent": 1,
                    "index": 2,
                    "xml": ["<a/>"],
                    "labels": b"\xff\x00\xff",
                },
            ),
        )
        decoded = decode_record(encode_record(record))
        assert decoded == record
        assert decoded.label_bytes() == 3

    def test_empty_subops(self):
        record = WalRecord(lsn=1, op="noop", scheme="s", subops=())
        assert decode_record(encode_record(record)) == record

    def test_trailing_bytes_rejected(self):
        payload = encode_record(sample_record()) + b"junk"
        with pytest.raises(WalError, match="trailing bytes"):
            decode_record(payload)

    def test_short_payload_rejected(self):
        with pytest.raises(WalError):
            decode_record(b"\x00\x01")

    def test_blob_overrun_rejected(self):
        # A header that claims more label bytes than the payload holds.
        payload = encode_record(sample_record(blob=b"abcdef"))
        with pytest.raises(WalError, match="overruns"):
            decode_record(payload[:-2])


class TestScanFrames:
    def test_clean_log_yields_all_records(self):
        records, data = sample_log(4)
        payloads, tail = scan_frames(data)
        assert tail == TailStatus(clean=True, valid_bytes=len(data))
        assert [decode_record(p) for p in payloads] == records

    def test_empty_log_is_clean(self):
        assert scan_frames(b"") == ([], TailStatus(clean=True, valid_bytes=0))

    def test_torn_tail_bounds_the_scan(self):
        records, data = sample_log(3)
        torn = data[:-5]  # chop mid-frame: classic torn write
        payloads, tail = scan_frames(torn)
        assert [decode_record(p) for p in payloads] == records[:2]
        assert not tail.clean
        assert tail.reason == "torn frame body"
        assert tail.valid_bytes + tail.dropped_bytes == len(torn)

    def test_bad_magic_stops_without_resync(self):
        records, data = sample_log(2)
        frame = encode_frame(encode_record(sample_record(lsn=9)))
        # Garbage between two otherwise-valid frames: the scan must not
        # skip ahead to the later frame (it could be a stale remnant).
        mangled = data + b"XX" + frame
        payloads, tail = scan_frames(mangled)
        assert len(payloads) == 2
        assert not tail.clean
        assert tail.reason == "bad frame magic"

    def test_crc_mismatch_detected(self):
        _, data = sample_log(1)
        flipped = bytearray(data)
        flipped[-1] ^= 0xFF  # inside the payload, CRC now wrong
        payloads, tail = scan_frames(bytes(flipped))
        assert payloads == []
        assert tail.reason == "frame CRC mismatch"

    def test_short_header_tail(self):
        _, data = sample_log(1)
        payloads, tail = scan_frames(data + b"WF\x00")
        assert len(payloads) == 1
        assert tail.reason == "short frame header"


class TestDecodeFramesStrict:
    def test_clean_log_decodes(self):
        records, data = sample_log(3)
        assert decode_frames(data) == records

    def test_any_corruption_raises(self):
        _, data = sample_log(3)
        with pytest.raises(WalError, match="corrupt at byte"):
            decode_frames(data[:-1])


class TestMutationProperty:
    """Byte flips / truncation => clean prefix or WalError, never a lie."""

    @given(
        flip_at=st.integers(min_value=0),
        flip_bits=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=120, deadline=None)
    def test_single_byte_flip_never_alters_a_record(self, flip_at, flip_bits):
        records, data = sample_log(4)
        flip_at %= len(data)
        mutated = bytearray(data)
        mutated[flip_at] ^= flip_bits
        payloads, tail = scan_frames(bytes(mutated))
        decoded = []
        for payload in payloads:
            try:
                decoded.append(decode_record(payload))
            except WalError:
                break  # logical corruption bounds the usable prefix
        # Every record that parsed must be one of the originals, in
        # order, from the start — a flipped byte may shorten the log
        # but can never smuggle in a different record.
        assert decoded == records[: len(decoded)]
        if tail.clean and len(decoded) == len(payloads) == len(records):
            # The flip landed somewhere it provably cannot hide: frames
            # are CRC-checked and records reject trailing/short blobs.
            assert bytes(mutated) == data

    @given(keep=st.integers(min_value=0))
    @settings(max_examples=80, deadline=None)
    def test_truncation_yields_a_strict_prefix(self, keep):
        records, data = sample_log(4)
        keep %= len(data) + 1
        payloads, tail = scan_frames(data[:keep])
        decoded = [decode_record(p) for p in payloads]
        assert decoded == records[: len(decoded)]
        assert tail.valid_bytes + tail.dropped_bytes == keep
        if keep == len(data):
            assert tail.clean

    @given(
        cut=st.integers(min_value=1, max_value=FRAME_HEADER_BYTES + 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_torn_last_frame_preserves_the_rest(self, cut):
        records, data = sample_log(3)
        cut = min(cut, len(data) - 1)
        payloads, tail = scan_frames(data[:-cut])
        assert [decode_record(p) for p in payloads] == records[: len(payloads)]
        assert len(payloads) >= 2  # only the last frame is cuttable here
        assert not tail.clean
