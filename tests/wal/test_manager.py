"""WalManager: logging protocol, checkpoint policy, reopen, costs."""

from __future__ import annotations

import pytest

from repro.errors import UpdateAborted
from repro.faults import FAULTS, FaultPlan
from repro.labeling import make_scheme
from repro.obs import OBS
from repro.updates import UpdateEngine, apply_churn_op, churn_script
from repro.wal import WalManager, decode_frames, recover
from repro.wal.writer import LOG_NAME, checkpoint_files
from repro.xmltree import Node

from tests.wal.walutil import build_wal_engine, logical_state, seed_document

SCHEME = "V-CDBS-Containment"


@pytest.fixture(autouse=True)
def clean_slate():
    OBS.reset()
    OBS.enabled = False
    yield
    FAULTS.disarm()
    OBS.reset()
    OBS.enabled = False


def log_bytes(engine):
    return (engine.wal.directory / LOG_NAME).read_bytes()


class TestFreshDirectory:
    def test_initial_checkpoint_and_empty_log(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        bundles = checkpoint_files(tmp_path)
        assert [watermark for watermark, _ in bundles] == [0]
        assert log_bytes(engine) == b""
        assert engine.wal.next_lsn == 1

    def test_wal_dir_required(self):
        labeled = make_scheme(SCHEME).label_document(seed_document())
        with pytest.raises(ValueError, match="wal_dir"):
            UpdateEngine(labeled, durability="wal")

    def test_unknown_durability_mode_rejected(self):
        labeled = make_scheme(SCHEME).label_document(seed_document())
        with pytest.raises(ValueError, match="durability"):
            UpdateEngine(labeled, durability="paranoid")


class TestCommitLogging:
    def test_each_commit_appends_one_frame(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        root = engine.labeled.document.root
        engine.insert_child(root, Node.element("x"))
        engine.insert_child(root, Node.element("y"))
        records = decode_frames(log_bytes(engine))
        assert [record.lsn for record in records] == [1, 2]
        assert {record.op for record in records} == {"insert"}
        assert all(record.scheme == SCHEME for record in records)
        assert all(record.label_bytes() > 0 for record in records)

    def test_move_logs_one_record_with_two_subops(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        root = engine.labeled.document.root
        node, target = Node.element("m"), Node.element("t")
        engine.insert_child(root, node)
        engine.insert_child(root, target)
        engine.move_before(node, target)
        records = decode_frames(log_bytes(engine))
        assert len(records) == 3
        assert records[-1].op == "move_before"
        assert [subop["kind"] for subop in records[-1].subops] == [
            "delete",
            "insert",
        ]

    def test_aborted_op_logs_nothing(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        root = engine.labeled.document.root
        engine.insert_child(root, Node.element("x"))
        before = log_bytes(engine)
        lsn_before = engine.wal.next_lsn
        with pytest.raises(UpdateAborted):
            with FAULTS.armed(FaultPlan.single("pager.page_write", at=1)):
                engine.insert_child(root, Node.element("y"))
        assert log_bytes(engine) == before
        assert engine.wal.next_lsn == lsn_before


class TestCheckpointPolicy:
    def test_commit_threshold_truncates_and_prunes(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path, checkpoint_commits=3)
        root = engine.labeled.document.root
        for index in range(3):
            engine.insert_child(root, Node.element(f"c{index}"))
        bundles = checkpoint_files(tmp_path)
        assert [watermark for watermark, _ in bundles] == [3]
        assert log_bytes(engine) == b""  # truncated at the checkpoint
        # the watermark-0 bundle was pruned, and LSNs keep counting
        engine.insert_child(root, Node.element("after"))
        assert decode_frames(log_bytes(engine))[0].lsn == 4

    def test_byte_threshold_also_triggers(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path, checkpoint_bytes=1)
        root = engine.labeled.document.root
        engine.insert_child(root, Node.element("x"))
        assert checkpoint_files(tmp_path)[0][0] == 1
        assert log_bytes(engine) == b""

    def test_bad_policy_rejected(self, tmp_path):
        labeled = make_scheme(SCHEME).label_document(seed_document())
        with pytest.raises(ValueError):
            WalManager(tmp_path, labeled, checkpoint_every_commits=0)
        with pytest.raises(ValueError):
            WalManager(tmp_path / "b", labeled, checkpoint_every_bytes=0)


class TestReopen:
    def test_reopen_resumes_lsn_lineage(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        root = engine.labeled.document.root
        engine.insert_child(root, Node.element("x"))
        engine.insert_child(root, Node.element("y"))

        recovered = recover(tmp_path).labeled
        resumed = UpdateEngine(
            recovered, with_storage=True, durability="wal", wal_dir=tmp_path
        )
        assert resumed.wal.next_lsn == 3
        resumed.insert_child(recovered.document.root, Node.element("z"))
        assert [r.lsn for r in decode_frames(log_bytes(resumed))] == [1, 2, 3]

    def test_reopen_truncates_a_torn_tail(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        root = engine.labeled.document.root
        engine.insert_child(root, Node.element("x"))
        engine.insert_child(root, Node.element("y"))
        log_path = tmp_path / LOG_NAME
        whole = log_path.read_bytes()
        log_path.write_bytes(whole[:-7])  # torn final frame

        recovered = recover(tmp_path).labeled
        resumed = UpdateEngine(
            recovered, with_storage=True, durability="wal", wal_dir=tmp_path
        )
        records = decode_frames(log_path.read_bytes())
        assert [r.lsn for r in records] == [1]  # tail gone for good
        assert resumed.wal.next_lsn == 2


class TestCosts:
    def test_wal_units_and_io_land_in_the_result(self, tmp_path):
        OBS.reset()
        OBS.enabled = True
        engine = build_wal_engine(SCHEME, tmp_path)
        result = engine.insert_child(
            engine.labeled.document.root, Node.element("x")
        )
        assert result.costs is not None
        assert result.costs["wal.records_appended"] == 1
        assert result.costs["wal.fsyncs"] == 1
        assert result.costs["wal.bytes_appended"] > 0
        assert result.io_seconds > 0
        # ledger agrees with the per-op delta
        assert OBS.ledger.totals["wal.records_appended"] == 1

    def test_durability_off_charges_no_wal_units(self, tmp_path):
        OBS.reset()
        OBS.enabled = True
        labeled = make_scheme(SCHEME).label_document(seed_document())
        engine = UpdateEngine(labeled, with_storage=True)  # durability="off"
        result = engine.insert_child(
            labeled.document.root, Node.element("x")
        )
        assert engine.wal is None
        assert not any(unit.startswith("wal.") for unit in result.costs)
        assert not any(unit.startswith("wal.") for unit in OBS.ledger.totals)


class TestDurableFootprint:
    def test_record_bytes_are_a_sliver_of_the_bundle(self, tmp_path):
        """ISSUE 5 acceptance: per-insert WAL bytes <= 5% of a checkpoint.

        The paper's Section 4 point, restated in durability terms: a
        CDBS insert mints labels only for the new nodes, so the redo
        record is tiny next to re-snapshotting the document.
        """
        OBS.reset()
        OBS.enabled = True
        engine = build_wal_engine(SCHEME, tmp_path, elements=1000, seed=3)
        root = engine.labeled.document.root
        frame_sizes = []
        for index in range(20):
            result = engine.insert_child(root, Node.element(f"n{index}"))
            frame_sizes.append(result.costs["wal.bytes_appended"])
        bundle_bytes = engine.wal.checkpoint().bundle_bytes
        median = sorted(frame_sizes)[len(frame_sizes) // 2]
        assert median <= 0.05 * bundle_bytes


class TestChurnEquivalence:
    @pytest.mark.parametrize(
        "scheme",
        ["V-CDBS-Containment", "F-CDBS-Containment", "CDBS(UTF8)-Prefix"],
    )
    def test_wal_mode_does_not_change_update_semantics(self, scheme, tmp_path):
        """durability="wal" is observationally pure w.r.t. the document."""
        script = churn_script(16, 11)
        plain_labeled = make_scheme(scheme).label_document(seed_document())
        plain = UpdateEngine(plain_labeled, with_storage=True)
        walled = build_wal_engine(scheme, tmp_path, checkpoint_commits=5)
        for op in script:
            apply_churn_op(plain, op)
            apply_churn_op(walled, op)
        assert logical_state(plain.labeled) == logical_state(walled.labeled)
