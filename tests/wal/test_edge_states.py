"""WAL directory edge states: missing dirs, stray temp files, impostors.

Regression tests for the reopen/``checkpoint_files`` crashes: a missing
WAL directory used to raise ``FileNotFoundError`` out of the bundle
scan, and a stray ``.tmp`` file (or a *directory*) matching the
``ckpt-*.labels`` pattern broke reopen.  Both edge states are real: a
crash between ``mkdir`` and the first checkpoint leaves the former, a
crash inside ``atomic_write_bytes`` leaves the latter.
"""

from __future__ import annotations

import pytest

from repro.wal import WalManager, recover
from repro.wal.writer import LOG_NAME, checkpoint_files
from repro.xmltree import Node

from tests.wal.walutil import build_wal_engine, logical_state

SCHEME = "V-CDBS-Containment"


class TestCheckpointFilesTolerance:
    def test_missing_directory_is_empty_not_an_error(self, tmp_path):
        assert checkpoint_files(tmp_path / "never" / "created") == []

    def test_directory_entry_matching_bundle_pattern_is_skipped(
        self, tmp_path
    ):
        engine = build_wal_engine(SCHEME, tmp_path)
        watermarks = [w for w, _ in checkpoint_files(tmp_path)]
        (tmp_path / "ckpt-000099.labels").mkdir()
        assert [w for w, _ in checkpoint_files(tmp_path)] == watermarks
        del engine

    def test_unparseable_names_are_skipped(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        watermarks = [w for w, _ in checkpoint_files(tmp_path)]
        (tmp_path / "ckpt-xyz.labels").write_bytes(b"junk")
        (tmp_path / "notes.txt").write_bytes(b"junk")
        assert [w for w, _ in checkpoint_files(tmp_path)] == watermarks
        del engine


class TestReopenEdgeStates:
    def test_open_on_missing_directory_creates_it(self, tmp_path):
        target = tmp_path / "brand" / "new" / "wal"
        engine = build_wal_engine(SCHEME, target)
        assert target.is_dir()
        assert (target / LOG_NAME).exists()
        assert [w for w, _ in checkpoint_files(target)] == [0]
        del engine

    def test_stray_tmp_files_swept_on_open(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        engine.insert_child(
            engine.labeled.document.root, Node.element("survivor")
        )
        state = logical_state(engine.labeled)
        # A crash inside atomic_write_bytes leaves a .tmp sibling; it is
        # never a valid artifact, so reopen must remove, not trip over it.
        (tmp_path / "ckpt-000123.labels.tmp").write_bytes(b"half-written")
        reopened = WalManager(tmp_path, engine.labeled)
        assert not list(tmp_path.glob("*.tmp"))
        assert reopened.next_lsn == engine.wal.next_lsn
        report = recover(tmp_path)
        assert logical_state(report.labeled) == state

    def test_tmp_directory_is_left_alone_but_harmless(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        (tmp_path / "weird.tmp").mkdir()
        reopened = WalManager(tmp_path, engine.labeled)
        assert (tmp_path / "weird.tmp").is_dir()
        assert reopened.next_lsn == engine.wal.next_lsn

    def test_reopen_with_impostor_bundle_entries(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        engine.insert_child(engine.labeled.document.root, Node.element("x"))
        state = logical_state(engine.labeled)
        (tmp_path / "ckpt-999999.labels").mkdir()
        report = recover(tmp_path)
        assert logical_state(report.labeled) == state


@pytest.mark.parametrize("junk", ["ckpt-.labels", "ckpt--12.labels"])
def test_malformed_watermarks_do_not_break_the_scan(tmp_path, junk):
    engine = build_wal_engine(SCHEME, tmp_path)
    (tmp_path / junk).write_bytes(b"")
    assert [w for w, _ in checkpoint_files(tmp_path)] == [0]
    del engine
