"""Shared builders for the WAL tests: seeded trees and logical snapshots.

A *logical* snapshot (tree bytes + every label in document order) is
the equality the durability contract promises: :func:`repro.wal.recover`
rebuilds a document that queries identically, not the page layout or
I/O counters of the live engine (those belong to the process that
crashed).
"""

from __future__ import annotations

import random

from repro.labeling import make_scheme
from repro.updates import UpdateEngine
from repro.xmltree import Node, parse_document, serialize_document

__all__ = ["seed_document", "build_wal_engine", "logical_state"]


def seed_document(elements=30, seed=7):
    rng = random.Random(seed)
    doc = parse_document("<root/>")
    pool = [doc.root]
    for index in range(elements):
        parent = rng.choice(pool)
        child = Node.element(f"e{index % 9}")
        parent.insert_child(len(parent.children), child)
        pool.append(child)
    return doc


def build_wal_engine(
    scheme,
    wal_dir,
    *,
    elements=30,
    seed=7,
    checkpoint_commits=10_000,
    checkpoint_bytes=1 << 30,
):
    """An engine with WAL durability and (by default) no auto-checkpoint."""
    labeled = make_scheme(scheme).label_document(
        seed_document(elements=elements, seed=seed)
    )
    return UpdateEngine(
        labeled,
        with_storage=True,
        durability="wal",
        wal_dir=wal_dir,
        wal_checkpoint_commits=checkpoint_commits,
        wal_checkpoint_bytes=checkpoint_bytes,
    )


def logical_state(labeled):
    return (
        serialize_document(labeled.document),
        tuple(
            repr(labeled.labels.get(id(node)))
            for node in labeled.nodes_in_order
        ),
    )
