"""recover(): checkpoint + replay equals the live engine, torn tails heal."""

from __future__ import annotations

import pytest

from repro.faults import FAULTS
from repro.obs import OBS
from repro.updates import apply_churn_op, churn_script
from repro.verify import verify_integrity
from repro.wal import FRAME_HEADER_BYTES, WalError, recover, scan_frames
from repro.wal.writer import LOG_NAME, checkpoint_files
from repro.xmltree import Node

from tests.wal.walutil import build_wal_engine, logical_state

SCHEMES = [
    "V-CDBS-Containment",
    "F-CDBS-Containment",
    "CDBS(UTF8)-Prefix",
]


@pytest.fixture(autouse=True)
def clean_slate():
    OBS.reset()
    OBS.enabled = False
    yield
    FAULTS.disarm()
    OBS.reset()
    OBS.enabled = False


def run_churn(engine, ops=20, seed=7):
    for op in churn_script(ops, seed):
        apply_churn_op(engine, op)


class TestRecoverEqualsLiveState:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_full_churn_with_checkpoints(self, scheme, tmp_path):
        engine = build_wal_engine(scheme, tmp_path, checkpoint_commits=5)
        run_churn(engine)
        report = recover(tmp_path)
        assert logical_state(report.labeled) == logical_state(engine.labeled)
        assert verify_integrity(report.labeled) == []
        assert not report.tail_truncated
        assert report.last_lsn == engine.wal.next_lsn - 1

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_replay_only_no_intermediate_checkpoint(self, scheme, tmp_path):
        engine = build_wal_engine(scheme, tmp_path)  # thresholds never hit
        run_churn(engine)
        report = recover(tmp_path)
        assert report.watermark == 0
        assert report.skipped == 0
        assert report.replayed == engine.wal.next_lsn - 1
        assert logical_state(report.labeled) == logical_state(engine.labeled)

    def test_recover_is_idempotent(self, tmp_path):
        engine = build_wal_engine(SCHEMES[0], tmp_path)
        run_churn(engine, ops=10)
        first = recover(tmp_path)
        second = recover(tmp_path)
        assert logical_state(first.labeled) == logical_state(second.labeled)
        assert (first.replayed, first.skipped) == (
            second.replayed,
            second.skipped,
        )


class TestTornTail:
    def test_torn_tail_recovers_the_valid_prefix(self, tmp_path):
        engine = build_wal_engine(SCHEMES[0], tmp_path)
        root = engine.labeled.document.root
        for index in range(4):
            engine.insert_child(root, Node.element(f"n{index}"))
        log_path = tmp_path / LOG_NAME
        whole = log_path.read_bytes()

        # oracle for the 3-commit prefix: recover from a log truncated
        # cleanly at the third frame boundary
        payloads, _ = scan_frames(whole)
        three = sum(
            len(p) + FRAME_HEADER_BYTES for p in payloads[:3]
        )
        log_path.write_bytes(whole[:three])
        prefix_state = logical_state(recover(tmp_path).labeled)

        # now the torn version: the 4th frame is half-written
        log_path.write_bytes(whole[:-9])
        report = recover(tmp_path)
        assert report.tail_truncated
        assert report.tail_reason == "torn frame body"
        assert report.replayed == 3
        assert logical_state(report.labeled) == prefix_state
        assert verify_integrity(report.labeled) == []

    def test_mid_log_corruption_bounds_replay(self, tmp_path):
        engine = build_wal_engine(SCHEMES[0], tmp_path)
        root = engine.labeled.document.root
        for index in range(3):
            engine.insert_child(root, Node.element(f"n{index}"))
        log_path = tmp_path / LOG_NAME
        data = bytearray(log_path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # flip a byte in the middle frame
        log_path.write_bytes(bytes(data))
        report = recover(tmp_path)  # must not raise
        assert report.tail_truncated
        assert report.replayed < 3
        assert verify_integrity(report.labeled) == []


class TestCheckpointLineage:
    def test_no_checkpoint_raises(self, tmp_path):
        with pytest.raises(WalError, match="no checkpoint"):
            recover(tmp_path)

    def test_every_bundle_dead_refuses(self, tmp_path):
        """With no loadable base state, recovery refuses rather than
        replaying the log onto a wrong document."""
        engine = build_wal_engine(SCHEMES[0], tmp_path, checkpoint_commits=4)
        run_churn(engine, ops=12)
        bundles = checkpoint_files(tmp_path)
        assert len(bundles) == 1
        bundles[0][1].write_bytes(b"RPRO-LABELS-2\ngarbage")
        with pytest.raises(WalError, match="no checkpoint bundle is loadable"):
            recover(tmp_path)

    def test_fallback_to_previous_bundle_plus_log(self, tmp_path):
        """Newest bundle corrupt, previous bundle + full log survive."""
        engine = build_wal_engine(SCHEMES[0], tmp_path)
        run_churn(engine, ops=10)
        live = logical_state(engine.labeled)
        # write a newer bundle by hand, then corrupt it; the original
        # ckpt-0 bundle and the full log still reconstruct everything
        watermark = engine.wal.next_lsn - 1
        bogus = tmp_path / f"ckpt-{watermark:016d}.labels"
        bogus.write_bytes(b"not a bundle")
        report = recover(tmp_path)
        assert report.checkpoint_path.name.endswith("0.labels")
        assert report.watermark == 0
        assert logical_state(report.labeled) == live
