"""Group commit at the WAL layer: batch protocol, receipts, crash loss."""

from __future__ import annotations

import pytest

from repro.errors import SimulatedCrash
from repro.faults import FAULTS, FaultPlan
from repro.obs import OBS
from repro.wal import WalError, decode_frames, recover
from repro.wal.writer import LOG_NAME
from repro.xmltree import Node

from tests.wal.walutil import build_wal_engine, logical_state

SCHEME = "V-CDBS-Containment"


@pytest.fixture(autouse=True)
def clean_slate():
    OBS.reset()
    OBS.enabled = False
    yield
    FAULTS.disarm()
    OBS.reset()
    OBS.enabled = False


def log_bytes(engine):
    return (engine.wal.directory / LOG_NAME).read_bytes()


def insert(engine, tag="x"):
    return engine.insert_child(engine.labeled.document.root, Node.element(tag))


class TestBatchProtocol:
    def test_commits_stay_volatile_until_end_batch(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        wal = engine.wal
        wal.begin_batch()
        assert wal.in_batch
        insert(engine, "a")
        insert(engine, "b")
        # Nothing on disk yet: the frames sit in the volatile buffer.
        assert log_bytes(engine) == b""
        receipt = wal.end_batch()
        assert not wal.in_batch
        assert receipt.commits == 2
        assert receipt.charges["wal.fsyncs"] == 1
        assert receipt.charges["wal.batch_commits"] == 2
        assert (receipt.first_lsn, receipt.last_lsn) == (1, 2)
        records = decode_frames(log_bytes(engine))
        assert [record.lsn for record in records] == [1, 2]

    def test_batched_commit_receipts_carry_no_fsync_charge(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        wal = engine.wal
        receipt_outside = wal.commit("probe", [{"kind": "noop"}])
        assert receipt_outside.charges["wal.fsyncs"] == 1
        wal.begin_batch()
        receipt_inside = wal.commit("probe", [{"kind": "noop"}])
        assert "wal.fsyncs" not in receipt_inside.charges
        assert receipt_inside.io_seconds == 0.0
        wal.end_batch()

    def test_empty_batch_skips_the_fsync(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        wal = engine.wal
        wal.begin_batch()
        assert wal.end_batch() is None

    def test_nested_begin_batch_rejected(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        engine.wal.begin_batch()
        with pytest.raises(WalError, match="already open"):
            engine.wal.begin_batch()

    def test_end_batch_without_begin_rejected(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        with pytest.raises(WalError, match="no commit batch"):
            engine.wal.end_batch()

    def test_checkpoint_inside_open_batch_rejected(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        engine.wal.begin_batch()
        insert(engine)
        # A bundle here would cover records that are still volatile.
        with pytest.raises(WalError, match="open commit batch"):
            engine.wal.checkpoint()
        engine.wal.abandon_batch()

    def test_abandon_batch_flushes_nothing(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        before = logical_state(engine.labeled)
        engine.wal.begin_batch()
        insert(engine, "doomed")
        engine.wal.abandon_batch()
        assert not engine.wal.in_batch
        assert log_bytes(engine) == b""
        # Recovery sees only the pre-batch state: the abandoned records
        # were never durable (and never acknowledged).
        report = recover(tmp_path)
        assert logical_state(report.labeled) == before

    def test_abandon_without_batch_is_a_noop(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        engine.wal.abandon_batch()
        assert not engine.wal.in_batch


class TestCrashMidBatch:
    def test_crash_at_batch_fsync_loses_the_whole_batch(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        insert(engine, "acked")
        acked = logical_state(engine.labeled)
        engine.wal.begin_batch()
        insert(engine, "staged1")
        insert(engine, "staged2")
        with FAULTS.armed(FaultPlan.crash("wal.fsync", at=1)):
            with pytest.raises(SimulatedCrash):
                engine.wal.end_batch()
        # The contract: no commit of the batch was acked, so losing all
        # of them is allowed — and the previously acked commit survives.
        report = recover(tmp_path)
        assert logical_state(report.labeled) == acked

    def test_crash_mid_batch_append_loses_earlier_batch_commits(
        self, tmp_path
    ):
        engine = build_wal_engine(SCHEME, tmp_path)
        insert(engine, "acked")
        acked = logical_state(engine.labeled)
        engine.wal.begin_batch()
        insert(engine, "staged")
        with FAULTS.armed(FaultPlan.crash("wal.append", at=1)):
            with pytest.raises(SimulatedCrash):
                insert(engine, "crashing")
        engine.wal.abandon_batch()
        report = recover(tmp_path)
        assert logical_state(report.labeled) == acked
