"""python -m repro.wal inspect: output shapes and exit codes."""

from __future__ import annotations

import json

from repro.wal.__main__ import inspect_dir, main
from repro.wal.writer import LOG_NAME
from repro.xmltree import Node

from tests.wal.walutil import build_wal_engine

SCHEME = "V-CDBS-Containment"


def populated_dir(tmp_path, commits=2):
    engine = build_wal_engine(SCHEME, tmp_path)
    root = engine.labeled.document.root
    for index in range(commits):
        engine.insert_child(root, Node.element(f"n{index}"))
    return tmp_path


class TestInspectDir:
    def test_report_shape(self, tmp_path):
        report = inspect_dir(populated_dir(tmp_path))
        assert [b["watermark"] for b in report["checkpoints"]] == [0]
        assert [f["lsn"] for f in report["frames"]] == [1, 2]
        assert all(f["crc"] == "ok" for f in report["frames"])
        assert all(f["label_bytes"] > 0 for f in report["frames"])
        assert report["tail"]["clean"]

    def test_torn_tail_reported_not_fatal(self, tmp_path):
        populated_dir(tmp_path)
        log_path = tmp_path / LOG_NAME
        log_path.write_bytes(log_path.read_bytes()[:-4])
        report = inspect_dir(tmp_path)
        assert len(report["frames"]) == 1
        assert not report["tail"]["clean"]
        assert report["tail"]["dropped_bytes"] > 0


class TestCLI:
    def test_clean_dir_exits_zero(self, tmp_path, capsys):
        assert main(["inspect", str(populated_dir(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "checkpoint ckpt-" in out
        assert "lsn=1" in out
        assert "log clean" in out

    def test_json_output_parses(self, tmp_path, capsys):
        assert main(["inspect", str(populated_dir(tmp_path)), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["log_bytes"] > 0
        assert len(report["frames"]) == 2

    def test_torn_tail_exits_one(self, tmp_path, capsys):
        populated_dir(tmp_path)
        log_path = tmp_path / LOG_NAME
        log_path.write_bytes(log_path.read_bytes()[:-4])
        assert main(["inspect", str(tmp_path)]) == 1
        assert "TORN TAIL" in capsys.readouterr().out

    def test_no_lineage_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["inspect", str(empty)]) == 2
        assert "no checkpoint bundles" in capsys.readouterr().err

    def test_missing_directory_exits_two(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err
