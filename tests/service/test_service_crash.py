"""Acked-prefix semantics through the service stack, deterministically.

The crash matrix sweeps every WAL site at scale; these tests pin the
two interesting outcomes at test speed by driving ``apply_batch``
synchronously on a registry-served document:

* a crash *before* the batch fsync (``wal.fsync``) loses the whole
  batch — recovery is exactly the previously acked prefix;
* a crash *after* commit, inside the deferred checkpoint
  (``wal.checkpoint_write``), keeps the batch — it was durable before
  the crash point, even though no client was ever acked.

Either way the service's promise holds: **an acked commit is never
lost**, and a quarantined document refuses writes while its stats tell
clients the truth.
"""

from __future__ import annotations

import pytest

from repro.errors import ServiceCrashed, SimulatedCrash
from repro.faults import FAULTS, FaultPlan
from repro.service import DocumentRegistry, UpdateRequest
from repro.verify import verify_integrity
from repro.wal import recover

from tests.wal.walutil import logical_state


@pytest.fixture(autouse=True)
def disarm():
    yield
    FAULTS.disarm()


@pytest.fixture
def handle(tmp_path):
    registry = DocumentRegistry(str(tmp_path), max_batch=8)
    served = registry.create(
        "<root><a/></root>", "QED-Prefix", start_writer=False
    )
    yield served
    registry.close(timeout=5.0)


def batch(tags):
    return [
        UpdateRequest(
            op={"kind": "insert_child", "parent": 0, "xml": f"<{tag}/>"}
        )
        for tag in tags
    ]


def test_crash_before_fsync_loses_exactly_the_unacked_batch(handle):
    writer = handle.writer
    acked = batch(["first", "second"])
    writer.apply_batch(acked)
    for request in acked:
        assert request.future.result(timeout=0)["version"] == 2
    acked_state = logical_state(handle.engine.labeled)

    doomed = batch(["third", "fourth"])
    with FAULTS.armed(FaultPlan.crash("wal.fsync", at=1)):
        with pytest.raises(SimulatedCrash):
            writer.apply_batch(doomed)
    for request in doomed:
        with pytest.raises(ServiceCrashed):
            request.future.result(timeout=0)

    # The quarantined handle is honest with clients (auto-recover off:
    # the self-healing path has its own suite in test_recovery.py)...
    assert handle.stats()["status"] == "crashed"
    writer.auto_recover = False
    with pytest.raises(ServiceCrashed, match="crashed"):
        writer.submit({"kind": "delete", "target": 1})
    # ...and recovery rebuilds exactly the acked prefix: batch 1 is
    # there in full, batch 2 left no trace.
    report = recover(handle.wal_dir)
    assert logical_state(report.labeled) == acked_state
    assert verify_integrity(report.labeled) == []


def test_crash_in_deferred_checkpoint_keeps_the_durable_batch(handle):
    writer = handle.writer
    survivors = batch(["kept"])
    # Make the deferred checkpoint due immediately.  The writer runs it
    # strictly after its acks (a checkpoint truncates the log, and the
    # log must retain unacked request_id frames), so the crash fires
    # after the client already heard back — the commit is on disk AND
    # acked; recovery must include it.
    handle.engine.wal.checkpoint_every_commits = 1
    with FAULTS.armed(FaultPlan.crash("wal.checkpoint_write", at=1)):
        with pytest.raises(SimulatedCrash):
            writer.apply_batch(survivors)
    assert survivors[0].future.result(timeout=0)["batch_commits"] == 1
    assert writer.status == "crashed"
    report = recover(handle.wal_dir)
    assert logical_state(report.labeled) == logical_state(
        handle.engine.labeled
    )
    names = [
        node.name
        for node in report.labeled.nodes_in_order
        if node.name is not None
    ]
    assert "kept" in names
    assert verify_integrity(report.labeled) == []
