"""End-to-end HTTP tests: a real socket, real threads, JSON in and out.

One module-scoped server instance (ThreadingHTTPServer on an ephemeral
port) serves every test; each test creates its own documents so state
never leaks between them.  The assertions pin the HTTP contract: route
shapes, the 400/404/409/503-style error mapping, and the pipelined
``ops`` form coalescing into fewer fsyncs than commits.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import SimulatedCrash
from repro.faults import FAULTS, FaultPlan
from repro.service import (
    DocumentService,
    ServiceConfig,
    UpdateRequest,
    make_server,
)

XML = "<root><a><b/></a><c>text</c></root>"


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-wal")
    service = DocumentService(ServiceConfig(root_dir=str(root), max_batch=8))
    httpd = make_server(service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address
    yield f"http://{host}:{port}"
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5.0)
    service.close()


def call(base, method, path, body=None):
    """Returns (status, decoded-json) without raising on HTTP errors."""
    status, payload, _ = call_full(base, method, path, body)
    return status, payload


def call_full(base, method, path, body=None):
    """Like :func:`call` but also returns the response headers."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def create(base, **extra):
    status, doc = call(base, "POST", "/docs", {"xml": XML, **extra})
    assert status == 201, doc
    return doc


class TestDocumentLifecycle:
    def test_create_returns_stats(self, server):
        doc = create(server)
        assert doc["doc_id"].startswith("doc-")
        assert doc["status"] == "serving"
        assert doc["scheme"] == "QED-Prefix"
        assert doc["nodes"] == 5  # root, a, b, c and the text node

    def test_create_with_explicit_id_and_scheme(self, server):
        doc = create(server, doc_id="mine", scheme="V-CDBS-Containment")
        assert doc["doc_id"] == "mine"
        assert doc["scheme"] == "V-CDBS-Containment"
        status, _ = call(
            server, "POST", "/docs", {"xml": XML, "doc_id": "mine"}
        )
        assert status == 400  # duplicate id

    def test_list_and_single_stats(self, server):
        doc = create(server)
        status, listing = call(server, "GET", "/docs")
        assert status == 200
        assert doc["doc_id"] in {d["doc_id"] for d in listing["documents"]}
        status, stats = call(server, "GET", f"/docs/{doc['doc_id']}")
        assert status == 200
        assert stats["fsyncs_per_commit"] == 0.0


class TestReadEndpoints:
    def test_xml_round_trips_the_snapshot(self, server):
        doc = create(server)
        status, payload = call(server, "GET", f"/docs/{doc['doc_id']}/xml")
        assert status == 200
        assert "<b/>" in payload["xml"]
        assert payload["version"] == 0

    def test_query_runs_on_the_committed_view(self, server):
        doc = create(server)
        status, payload = call(
            server, "GET", f"/docs/{doc['doc_id']}/query?q=//a"
        )
        assert status == 200
        assert payload["count"] == 1
        (match,) = payload["matches"]
        assert match["tag"] == "a"
        assert payload["scan_bytes"] > 0

    def test_relationship_is_label_only(self, server):
        doc = create(server)
        status, payload = call(
            server,
            "GET",
            f"/docs/{doc['doc_id']}/relationship?first=1&second=2",
        )
        assert status == 200
        assert payload["ancestor"] is True
        assert payload["parent"] is True
        assert payload["sibling"] is False

    @pytest.mark.parametrize(
        "path, fragment",
        [
            ("/query", "needs ?q="),
            ("/relationship?first=1", "missing required parameter"),
            ("/relationship?first=1&second=x", "must be an integer"),
            ("/relationship?first=1&second=999", "outside the"),
        ],
    )
    def test_read_endpoint_validation_is_400(self, server, path, fragment):
        doc = create(server)
        status, payload = call(server, "GET", f"/docs/{doc['doc_id']}{path}")
        assert status == 400
        assert fragment in payload["message"]


class TestUpdateEndpoint:
    def test_single_op_acks_after_fsync(self, server):
        doc = create(server)
        status, payload = call(
            server,
            "POST",
            f"/docs/{doc['doc_id']}/updates",
            {"op": {"kind": "insert_child", "parent": 0, "xml": "<new/>"}},
        )
        assert status == 200
        ack = payload["ack"]
        assert ack["lsn"] == 1
        assert ack["inserted_nodes"] == 1
        status, payload = call(server, "GET", f"/docs/{doc['doc_id']}/xml")
        assert "<new/>" in payload["xml"]
        assert payload["version"] == ack["version"]

    def test_pipelined_ops_coalesce_fsyncs(self, server):
        doc = create(server)
        ops = [
            {"kind": "insert_child", "parent": 0, "xml": f"<n{i}/>"}
            for i in range(6)
        ]
        status, payload = call(
            server, "POST", f"/docs/{doc['doc_id']}/updates", {"ops": ops}
        )
        assert status == 200
        assert all(result["ok"] for result in payload["results"])
        status, stats = call(server, "GET", f"/docs/{doc['doc_id']}")
        assert stats["commits_acked"] == 6
        assert stats["fsyncs"] < 6  # group commit actually coalesced

    def test_pipelined_failures_are_per_op(self, server):
        doc = create(server)
        ops = [
            {"kind": "insert_child", "parent": 0, "xml": "<good/>"},
            {"kind": "bogus"},
        ]
        status, payload = call(
            server, "POST", f"/docs/{doc['doc_id']}/updates", {"ops": ops}
        )
        assert status == 200
        good, bad = payload["results"]
        assert good["ok"] is True
        assert bad["ok"] is False
        assert bad["error"] == "ServiceError"

    @pytest.mark.parametrize(
        "body, fragment",
        [
            ({}, "needs 'op' or 'ops'"),
            ({"ops": []}, "non-empty list"),
            ({"op": {"kind": "bogus"}}, "unknown update kind"),
            ({"op": {"kind": "delete", "target": 999}}, "outside the"),
        ],
    )
    def test_bad_update_requests_are_400(self, server, body, fragment):
        doc = create(server)
        status, payload = call(
            server, "POST", f"/docs/{doc['doc_id']}/updates", body
        )
        assert status == 400
        assert fragment in payload["message"]


class TestErrorMapping:
    def test_unknown_document_is_404_everywhere(self, server):
        for method, path, body in (
            ("GET", "/docs/ghost", None),
            ("GET", "/docs/ghost/xml", None),
            ("GET", "/docs/ghost/query?q=//a", None),
            ("POST", "/docs/ghost/updates", {"op": {"kind": "delete"}}),
        ):
            status, payload = call(server, method, path, body)
            assert status == 404, path
            assert "unknown document" in payload["message"]

    def test_unrouted_path_is_404(self, server):
        status, payload = call(server, "GET", "/nothing/here")
        assert status == 404
        assert payload["error"] == "NotFound"

    def test_malformed_json_body_is_400(self, server):
        request = urllib.request.Request(
            server + "/docs",
            data=b"this is not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 400
        assert "not valid JSON" in json.loads(excinfo.value.read())["message"]

    def test_non_object_json_body_is_400(self, server):
        status, payload = call(server, "POST", "/docs", ["not", "an", "obj"])
        assert status == 400
        assert "JSON object" in payload["message"]


@pytest.fixture()
def healing(tmp_path):
    """A function-scoped server whose service object the test can reach
    into (to crash, overload, or stall a writer deterministically)."""
    service = DocumentService(ServiceConfig(root_dir=str(tmp_path), max_batch=8))
    httpd = make_server(service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address
    yield f"http://{host}:{port}", service
    FAULTS.disarm()
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5.0)
    service.close()


def crash_writer(service, doc_id):
    """Quarantine one served document at a WAL site, deterministically."""
    writer = service.registry.get(doc_id).writer
    doomed = UpdateRequest(
        op={"kind": "insert_child", "parent": 0, "xml": "<doomed/>"}
    )
    with FAULTS.armed(FaultPlan.crash("wal.fsync", at=1)):
        with pytest.raises(SimulatedCrash):
            writer.apply_batch([doomed])
    assert writer.status == "crashed"
    return writer


class TestRobustnessEndpoints:
    def test_healthz_tracks_crash_and_heal(self, healing):
        base, service = healing
        doc = create(base)
        status, health = call(base, "GET", "/healthz")
        assert status == 200
        assert health["ok"] is True

        crash_writer(service, doc["doc_id"])
        status, health = call(base, "GET", "/healthz")
        assert status == 503
        assert health["ok"] is False
        assert health["by_status"]["crashed"] == 1

        status, outcome = call(
            base, "POST", f"/docs/{doc['doc_id']}/recover"
        )
        assert status == 200
        assert outcome["healed"] is True
        assert outcome["generation"] == 1
        status, health = call(base, "GET", "/healthz")
        assert status == 200

    def test_status_route_exposes_the_state_machine(self, healing):
        base, service = healing
        doc = create(base)
        status, payload = call(base, "GET", f"/docs/{doc['doc_id']}/status")
        assert status == 200
        assert payload["status"] == "serving"
        assert payload["generation"] == 0
        assert payload["crash_cause"] is None
        for counter in (
            "recoveries",
            "retries_deduped",
            "rejected_overload",
            "deadlines_expired",
            "queue_depth",
            "dedup_entries",
        ):
            assert payload[counter] == 0, counter

        crash_writer(service, doc["doc_id"])
        _, payload = call(base, "GET", f"/docs/{doc['doc_id']}/status")
        assert payload["status"] == "crashed"
        assert "SimulatedCrash" in payload["crash_cause"]

    def test_recover_on_a_serving_document_is_a_no_op(self, healing):
        base, _ = healing
        doc = create(base)
        status, outcome = call(
            base, "POST", f"/docs/{doc['doc_id']}/recover"
        )
        assert status == 200
        assert outcome["healed"] is False
        assert outcome["doc_id"] == doc["doc_id"]

    def test_crashed_document_is_503_with_retry_after(self, healing):
        base, service = healing
        doc = create(base)
        writer = crash_writer(service, doc["doc_id"])
        writer.auto_recover = False  # pin the refusal, not the self-heal
        status, payload, headers = call_full(
            base,
            "POST",
            f"/docs/{doc['doc_id']}/updates",
            {"op": {"kind": "insert_child", "parent": 0, "xml": "<x/>"}},
        )
        assert status == 503
        assert payload["error"] == "ServiceCrashed"
        assert payload["state"] == "crashed"
        assert payload["doc_id"] == doc["doc_id"]
        assert payload["retry_after"] == 1
        assert headers["Retry-After"] == "1"

    def test_overloaded_queue_is_429_with_retry_after(self, healing):
        base, service = healing
        doc = create(base)
        service.registry.get(doc["doc_id"]).writer.max_queue = 0
        status, payload, headers = call_full(
            base,
            "POST",
            f"/docs/{doc['doc_id']}/updates",
            {"op": {"kind": "insert_child", "parent": 0, "xml": "<x/>"}},
        )
        assert status == 429
        assert payload["error"] == "ServiceOverloaded"
        assert payload["state"] == "serving"
        assert payload["retry_after"] > 0
        assert int(headers["Retry-After"]) >= 1

    def test_expired_deadline_is_408(self, healing):
        base, service = healing
        doc = create(base)
        writer = service.registry.get(doc["doc_id"]).writer
        # Two clock reads happen for a single queued op: the submit
        # stamp, then the writer's deadline check.  Feeding them 0 and
        # then "much later" expires the op deterministically, however
        # fast the writer thread actually drains.
        reads = iter([0.0])
        writer.clock = lambda: next(reads, 1e6)
        status, payload = call(
            base,
            "POST",
            f"/docs/{doc['doc_id']}/updates",
            {
                "op": {
                    "kind": "insert_child",
                    "parent": 0,
                    "xml": "<x/>",
                    "deadline": 0.5,
                }
            },
        )
        assert status == 408
        assert payload["error"] == "DeadlineExceeded"
        assert "not applied" in payload["message"]
        _, payload = call(base, "GET", f"/docs/{doc['doc_id']}/status")
        assert payload["deadlines_expired"] == 1

    def test_request_id_dedups_over_http(self, healing):
        base, _ = healing
        doc = create(base)
        op = {
            "kind": "insert_child",
            "parent": 0,
            "xml": "<once/>",
            "request_id": "http-rid-1",
        }
        _, first = call(
            base, "POST", f"/docs/{doc['doc_id']}/updates", {"op": op}
        )
        status, second = call(
            base, "POST", f"/docs/{doc['doc_id']}/updates", {"op": op}
        )
        assert status == 200
        assert second["ack"]["deduplicated"] is True
        assert second["ack"]["lsn"] == first["ack"]["lsn"]
        _, payload = call(base, "GET", f"/docs/{doc['doc_id']}/status")
        assert payload["retries_deduped"] == 1
        assert payload["dedup_entries"] == 1
