"""Self-healing: online recovery, idempotent retries, deadlines, limits.

This suite pins the robustness contract ISSUE 9 added on top of the
writer's ack protocol:

* a crashed document heals *in place* — ``crashed -> recovering ->
  serving`` with the generation counter bumped, the durable prefix
  intact, and nothing replayed twice;
* concurrent submits against a crashed document elect exactly one
  healer (the heal lock), never two;
* a ``request_id`` makes retries idempotent across the crash: the dedup
  table survives recovery because it is rebuilt from the WAL's frame
  headers, so a durable-but-unacked commit acks its retry instead of
  applying twice;
* deadlines expire queued work without applying it, and a bounded queue
  refuses overload with a modeled retry hint instead of collapsing.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    DeadlineExceeded,
    ServiceCrashed,
    ServiceError,
    ServiceOverloaded,
    SimulatedCrash,
)
from repro.faults import FAULTS, FaultPlan
from repro.obs import OBS
from repro.service import DocumentRegistry, DocumentWriter, UpdateRequest
from repro.wal import recover

from tests.wal.walutil import build_wal_engine, logical_state

SCHEME = "QED-Prefix"


@pytest.fixture(autouse=True)
def clean_slate():
    OBS.reset()
    OBS.enabled = False
    yield
    FAULTS.disarm()
    OBS.reset()
    OBS.enabled = False


@pytest.fixture
def writer(tmp_path):
    healing = DocumentWriter(build_wal_engine(SCHEME, tmp_path))
    yield healing
    healing.close(timeout=5.0)


def insert_spec(tag="n", **extra):
    return {"kind": "insert_child", "parent": 0, "xml": f"<{tag}/>", **extra}


def batch(*ops):
    return [UpdateRequest(op=op) for op in ops]


def crash(writer, *ops, site="wal.fsync"):
    """Kill one batch at a WAL site; returns the doomed requests."""
    doomed = batch(*(ops or (insert_spec(tag="lost"),)))
    with FAULTS.armed(FaultPlan.crash(site, at=1)):
        with pytest.raises(SimulatedCrash):
            writer.apply_batch(doomed)
    assert writer.status == "crashed"
    return doomed


class TestOnlineRecovery:
    def test_recover_heals_in_place_and_bumps_generation(self, writer):
        acked = batch(insert_spec(tag="durable"))
        writer.apply_batch(acked)
        acked[0].future.result(timeout=0)
        durable = logical_state(writer.engine.labeled)

        crash(writer)
        outcome = writer.recover()
        assert outcome["healed"] is True
        assert outcome["generation"] == 1
        assert writer.status == "serving"
        assert writer.generation == 1
        assert writer.recoveries == 1
        # The healed engine is exactly the durable prefix, and the
        # published view follows it.
        assert logical_state(writer.engine.labeled) == durable
        assert writer.view.version == writer.acked_version

        # The healed writer serves again — same document, new engine.
        resumed = batch(insert_spec(tag="after-heal"))
        writer.apply_batch(resumed)
        ack = resumed[0].future.result(timeout=0)
        assert ack["generation"] == 1

    def test_recover_on_a_serving_writer_is_a_no_op(self, writer):
        outcome = writer.recover()
        assert outcome == {
            "healed": False,
            "status": "serving",
            "generation": 0,
        }
        assert writer.recoveries == 0

    def test_recovery_replays_nothing_twice(self, writer, tmp_path):
        for round_tags in (("a", "b"), ("c",)):
            acked = batch(*(insert_spec(tag=t) for t in round_tags))
            writer.apply_batch(acked)
        crash(writer)
        writer.recover()
        # In-place heal and offline recovery agree byte for byte.
        assert logical_state(writer.engine.labeled) == logical_state(
            recover(tmp_path).labeled
        )
        assert writer.acked_version == writer.engine.wal.next_lsn - 1

    def test_submit_auto_recovers_a_crashed_document(self, tmp_path):
        writer = DocumentWriter(build_wal_engine(SCHEME, tmp_path)).start()
        try:
            writer.submit(insert_spec(tag="before")).result(timeout=5.0)
            with FAULTS.armed(FaultPlan.crash("wal.fsync", at=1)):
                doomed = writer.submit(insert_spec(tag="doomed"))
                with pytest.raises(ServiceCrashed):
                    doomed.result(timeout=5.0)
            # The next submit heals the document *and* restarts the
            # writer thread: the future must resolve, not hang.
            ack = writer.submit(insert_spec(tag="healed")).result(timeout=5.0)
            assert ack["generation"] == 1
            assert writer.status == "serving"
            assert writer.recoveries == 1
        finally:
            writer.close(timeout=5.0)

    def test_crash_during_recovery_stays_healable(self, writer):
        crash(writer)
        with FAULTS.armed(FaultPlan.crash("service.recover", at=1)):
            with pytest.raises(SimulatedCrash):
                writer.recover()
        # Back in quarantine, generation unmoved — and the *next*
        # attempt (fault gone) heals normally.
        assert writer.status == "crashed"
        assert writer.generation == 0
        assert isinstance(writer.crash_cause, SimulatedCrash)
        outcome = writer.recover()
        assert outcome["healed"] is True
        assert writer.generation == 1

    def test_concurrent_submits_elect_exactly_one_healer(self, writer):
        crash(writer)
        barrier = threading.Barrier(4)
        errors = []

        def racer(tag):
            barrier.wait(timeout=5.0)
            try:
                writer.submit(insert_spec(tag=tag))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=racer, args=(f"r{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert errors == []
        # All four submits went through, but the crash was healed
        # exactly once: one recovery, one generation bump.
        assert writer.recoveries == 1
        assert writer.generation == 1
        assert writer.status == "serving"
        assert writer.queue_depth == 4

    def test_recover_without_a_wal_is_refused(self):
        from repro.labeling import make_scheme
        from repro.updates import UpdateEngine
        from tests.wal.walutil import seed_document

        labeled = make_scheme(SCHEME).label_document(seed_document())
        writer = DocumentWriter(UpdateEngine(labeled, with_storage=True))
        writer.status = "crashed"
        with pytest.raises(ServiceError, match="no WAL"):
            writer.recover()

    def test_closed_writer_refuses_recovery(self, writer):
        writer.close(timeout=5.0)
        with pytest.raises(ServiceError, match="closed"):
            writer.recover()


class TestIdempotentRetries:
    def test_retry_returns_the_original_ack_without_a_second_frame(
        self, writer
    ):
        first = batch(insert_spec(tag="once", request_id="rid-1"))
        writer.apply_batch(first)
        original = first[0].future.result(timeout=0)
        frames_after = writer.engine.wal.next_lsn
        nodes_after = writer.view.node_count()

        retry = writer.submit(insert_spec(tag="once", request_id="rid-1"))
        ack = retry.result(timeout=0)
        assert ack["deduplicated"] is True
        assert ack["lsn"] == original["lsn"]
        assert writer.retries_deduped == 1
        # No second apply: no new WAL frame, no new node.
        assert writer.engine.wal.next_lsn == frames_after
        assert writer.view.node_count() == nodes_after

    def test_duplicate_within_one_batch_applies_once(self, writer):
        nodes_before = writer.view.node_count()
        requests = batch(
            insert_spec(tag="twin", request_id="rid-twin"),
            insert_spec(tag="twin", request_id="rid-twin"),
        )
        writer.apply_batch(requests)
        applied = requests[0].future.result(timeout=0)
        deduped = requests[1].future.result(timeout=0)
        assert "deduplicated" not in applied
        assert deduped["deduplicated"] is True
        assert deduped["lsn"] == applied["lsn"]
        assert writer.view.node_count() == nodes_before + 1
        assert writer.commits_acked == 1
        assert writer.retries_deduped == 1

    def test_dedup_table_is_rebuilt_from_the_log_after_recovery(
        self, writer
    ):
        acked = batch(
            insert_spec(tag="a", request_id="rid-a"),
            insert_spec(tag="b", request_id="rid-b"),
        )
        writer.apply_batch(acked)
        for request in acked:
            request.future.result(timeout=0)
        crash(writer)
        writer.recover()
        assert writer.dedup_entries == 2
        # The retry of an acked rid resolves from the rebuilt table: a
        # reduced ack (the batch context died with the old process),
        # honestly flagged as recovered — and still no re-apply.
        frames = writer.engine.wal.next_lsn
        ack = writer.submit(insert_spec(tag="a", request_id="rid-a")).result(
            timeout=0
        )
        assert ack["deduplicated"] is True
        assert ack["recovered"] is True
        assert writer.engine.wal.next_lsn == frames

    def test_retry_storm_across_a_durable_unacked_crash(self, writer):
        """The crash class dedup exists for: fsync'd, then died pre-ack.

        A ``service.dedup`` crash fires after the batch fsync but
        before any future resolves — every client times out and
        retries.  The rebuilt dedup table must ack all of them from the
        log without a single duplicate apply.
        """
        rids = [f"storm-{i}" for i in range(3)]
        doomed = crash(
            writer,
            *(insert_spec(tag=f"s{i}", request_id=rid)
              for i, rid in enumerate(rids)),
            site="service.dedup",
        )
        for request in doomed:
            with pytest.raises(ServiceCrashed):
                request.future.result(timeout=0)
        writer.recover()
        nodes = writer.view.node_count()
        frames = writer.engine.wal.next_lsn
        for i, rid in enumerate(rids):
            ack = writer.submit(
                insert_spec(tag=f"s{i}", request_id=rid)
            ).result(timeout=0)
            assert ack["deduplicated"] is True
        assert writer.retries_deduped == 3
        # The storm re-applied nothing: same node count, same log.
        assert writer.view.node_count() == nodes
        assert writer.engine.wal.next_lsn == frames

    def test_lost_batch_retries_apply_fresh_exactly_once(self, writer):
        """A pre-fsync crash *loses* the batch — retries must apply."""
        doomed = crash(
            writer,
            insert_spec(tag="redo", request_id="rid-redo"),
            site="wal.fsync",
        )
        with pytest.raises(ServiceCrashed):
            doomed[0].future.result(timeout=0)
        writer.recover()
        assert writer.dedup_entries == 0  # the frame never hit disk
        retried = batch(insert_spec(tag="redo", request_id="rid-redo"))
        writer.apply_batch(retried)
        ack = retried[0].future.result(timeout=0)
        assert "deduplicated" not in ack
        assert writer.retries_deduped == 0

    def test_dedup_table_is_bounded_fifo(self, tmp_path):
        writer = DocumentWriter(
            build_wal_engine(SCHEME, tmp_path), dedup_capacity=2
        )
        try:
            for i in range(4):
                requests = batch(
                    insert_spec(tag=f"e{i}", request_id=f"rid-{i}")
                )
                writer.apply_batch(requests)
                requests[0].future.result(timeout=0)
            assert writer.dedup_entries == 2
            # Oldest evicted: its retry is *not* recognized any more.
            assert writer._dedup_lookup("rid-0") is None
            assert writer._dedup_lookup("rid-3") is not None
        finally:
            writer.close(timeout=5.0)

    @pytest.mark.parametrize(
        "request_id", ["", 7, True, "x" * 201], ids=repr
    )
    def test_bad_request_ids_are_refused(self, writer, request_id):
        with pytest.raises(ServiceError, match="request_id"):
            writer.submit(insert_spec(request_id=request_id))


class TestDeadlines:
    def test_expired_request_fails_without_being_applied(self, tmp_path):
        now = [100.0]
        writer = DocumentWriter(
            build_wal_engine(SCHEME, tmp_path), clock=lambda: now[0]
        )
        try:
            future = writer.submit(insert_spec(tag="slow", deadline=0.5))
            fresh = writer.submit(insert_spec(tag="fast", deadline=60.0))
            now[0] += 2.0  # the queue "waited" past the first deadline
            pending = [
                writer._queue.get_nowait(), writer._queue.get_nowait()
            ]
            writer.apply_batch(pending)
            with pytest.raises(DeadlineExceeded, match="not applied"):
                future.result(timeout=0)
            fresh.result(timeout=0)  # its 60s budget was plenty
            assert writer.deadlines_expired == 1
            assert writer.commits_acked == 1
        finally:
            writer.close(timeout=5.0)

    def test_directly_built_requests_never_expire(self, writer):
        # The crash matrix builds UpdateRequest without going through
        # submit: no enqueued_at, no expiry, ever.
        requests = batch(insert_spec(tag="matrix"))
        writer.apply_batch(requests)
        requests[0].future.result(timeout=0)

    def test_bad_deadline_is_refused(self, writer):
        with pytest.raises(ServiceError, match="deadline"):
            writer.submit(insert_spec(deadline=-1))


class TestBackpressure:
    def test_full_queue_refuses_with_a_modeled_hint(self, tmp_path):
        writer = DocumentWriter(
            build_wal_engine(SCHEME, tmp_path), max_queue=2
        )
        try:
            writer.submit(insert_spec(tag="q1"))
            writer.submit(insert_spec(tag="q2"))
            with pytest.raises(ServiceOverloaded, match="retry after") as exc:
                writer.submit(insert_spec(tag="q3"))
            assert exc.value.retry_after > 0
            assert writer.rejected_overload == 1
            # The refusal queued nothing.
            assert writer.queue_depth == 2
        finally:
            writer.close(timeout=5.0)

    def test_zero_queue_is_drain_only(self, tmp_path):
        writer = DocumentWriter(
            build_wal_engine(SCHEME, tmp_path), max_queue=0
        )
        try:
            with pytest.raises(ServiceOverloaded):
                writer.submit(insert_spec())
        finally:
            writer.close(timeout=5.0)

    def test_retry_after_scales_with_queue_depth(self, tmp_path):
        writer = DocumentWriter(
            build_wal_engine(SCHEME, tmp_path), max_batch=2, max_queue=None
        )
        try:
            shallow = writer.retry_after_hint()
            for i in range(6):
                writer.submit(insert_spec(tag=f"d{i}"))
            assert writer.retry_after_hint() >= shallow * 3
        finally:
            writer.close(timeout=5.0)


class TestRegistryShutdown:
    def test_close_joins_writers_and_refuses_new_documents(self, tmp_path):
        registry = DocumentRegistry(str(tmp_path))
        handle = registry.create("<root/>", SCHEME)
        handle.writer.submit(insert_spec(tag="x")).result(timeout=5.0)
        registry.close(timeout=5.0)
        assert handle.writer.status == "closed"
        with pytest.raises(ServiceError, match="shut down"):
            registry.create("<root/>", SCHEME, doc_id="late")
        with pytest.raises(ServiceError, match="closed"):
            handle.writer.submit(insert_spec(tag="y"))
