"""The storm test: many client threads, one document, live writer thread.

This is the service's concurrency contract under real thread
interleaving: every snapshot read sees a *committed* version (never an
in-flight batch), every acked write is immediately visible to its own
client, group commit keeps fsyncs at or below the batch count, and the
WAL recovers the exact final state after the storm.
"""

from __future__ import annotations

import threading

import pytest

from repro.service import DocumentService, ServiceConfig
from repro.verify import verify_integrity
from repro.wal import recover
from repro.xmltree import serialize_document

THREADS = 8
OPS_PER_THREAD = 12


@pytest.fixture
def service(tmp_path):
    built = DocumentService(
        ServiceConfig(root_dir=str(tmp_path), max_batch=16)
    )
    yield built
    built.close()


def storm(service, doc_id, errors, reads):
    """One client: alternate committed writes with snapshot reads."""
    thread = threading.current_thread().name
    for index in range(OPS_PER_THREAD):
        try:
            ack = service.update(
                doc_id,
                {
                    "kind": "insert_child",
                    "parent": 0,
                    "xml": f"<w_{thread}_{index}/>",
                },
                timeout=30.0,
            )
            # Read-after-own-write: the published view must already
            # carry (at least) this client's acked version.
            view = service.snapshot(doc_id)
            acked = service.stats(doc_id)["version"]
            reads.append(
                {
                    "view_version": view.version,
                    "acked_version": acked,
                    "own_version": ack["version"],
                    "nodes": view.node_count(),
                    "serialized": view.serialize(),
                }
            )
        except Exception as error:  # noqa: BLE001 - collected, asserted on
            errors.append(error)


def test_storm_on_one_document(service):
    doc = service.create_document("<root/>")
    doc_id = doc["doc_id"]
    errors, reads = [], []
    threads = [
        threading.Thread(
            target=storm,
            args=(service, doc_id, errors, reads),
            name=f"c{index}",
        )
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads)
    assert errors == []
    assert len(reads) == THREADS * OPS_PER_THREAD

    # Every read observed a committed version: at or beyond the
    # client's own acked commit, never beyond what was acked when the
    # reader sampled the counter right after.
    for read in reads:
        assert read["own_version"] <= read["view_version"] <= read["acked_version"]
        # A snapshot is internally consistent: its serialized bytes
        # carry exactly its node population.
        assert read["serialized"].count("<w_") == read["nodes"] - 1

    handle = service.registry.get(doc_id)
    writer = handle.writer
    total_writes = THREADS * OPS_PER_THREAD
    assert writer.commits_acked == total_writes
    assert writer.requests_failed == 0
    assert writer.view.node_count() == total_writes + 1

    # Group commit did its job: never more than one fsync per batch,
    # and strictly fewer fsyncs than commits once batching kicked in.
    assert writer.fsyncs <= writer.batches
    assert writer.fsyncs <= writer.commits_acked
    stats = handle.stats()
    assert stats["fsyncs_per_commit"] == pytest.approx(
        writer.amortized_fsyncs_per_commit
    )

    # The live document is structurally sound after the storm...
    assert verify_integrity(handle.engine.labeled, handle.engine.store) == []

    # ...and the WAL replays to exactly the live state once drained.
    live = serialize_document(handle.engine.labeled.document)
    service.close()
    report = recover(handle.wal_dir)
    assert serialize_document(report.labeled.document) == live
    assert verify_integrity(report.labeled) == []


def test_storm_across_documents_is_isolated(service):
    ids = [service.create_document("<root/>")["doc_id"] for _ in range(3)]
    errors, reads = [], []
    threads = [
        threading.Thread(
            target=storm,
            args=(service, ids[index % len(ids)], errors, reads),
            name=f"c{index}",
        )
        for index in range(6)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert errors == []
    writers_per_doc = 6 // len(ids)
    for doc_id in ids:
        handle = service.registry.get(doc_id)
        assert handle.writer.commits_acked == writers_per_doc * OPS_PER_THREAD
        assert verify_integrity(handle.engine.labeled, handle.engine.store) == []
        # No cross-document leakage: only this doc's writers appear.
        serialized = handle.view.serialize()
        own = {f"c{i}" for i in range(6) if ids[i % len(ids)] == doc_id}
        for client in range(6):
            marker = f"<w_c{client}_"
            assert (marker in serialized) == (f"c{client}" in own)
