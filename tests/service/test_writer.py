"""DocumentWriter: spec validation, batching, acks, quarantine, lifecycle.

The writer is the service's durability boundary, so these tests pin the
ack protocol precisely: one fsync per batch, futures resolved only
after it, per-request failures isolated to their own future, and a
mid-batch crash failing every unacked waiter with ``ServiceCrashed``
while refusing all further writes.
"""

from __future__ import annotations

import pytest

from repro.errors import ServiceCrashed, ServiceError, SimulatedCrash
from repro.faults import FAULTS, FaultPlan
from repro.labeling import make_scheme
from repro.obs import OBS
from repro.service import DocumentWriter, UpdateRequest
from repro.updates import UpdateEngine
from repro.wal import recover

from repro.xmltree import parse_document

from tests.wal.walutil import build_wal_engine, logical_state, seed_document

SCHEME = "QED-Prefix"


@pytest.fixture(autouse=True)
def clean_slate():
    OBS.reset()
    OBS.enabled = False
    yield
    FAULTS.disarm()
    OBS.reset()
    OBS.enabled = False


@pytest.fixture
def writer(tmp_path):
    wal_writer = DocumentWriter(build_wal_engine(SCHEME, tmp_path))
    yield wal_writer
    wal_writer.close(timeout=5.0)


def batch(*ops):
    return [UpdateRequest(op=op) for op in ops]


def insert_spec(parent=0, tag="n"):
    return {"kind": "insert_child", "parent": parent, "xml": f"<{tag}/>"}


class TestSpecValidation:
    @pytest.mark.parametrize(
        "op, message",
        [
            ("not-a-dict", "must be an object"),
            ({"kind": "rename"}, "unknown update kind"),
            ({}, "unknown update kind"),
            ({"kind": "delete", "target": "root"}, "integer 'target'"),
            ({"kind": "delete", "target": True}, "integer 'target'"),
            ({"kind": "delete", "target": 10_000}, "outside the current"),
            ({"kind": "delete", "target": -1}, "outside the current"),
            ({"kind": "insert_child", "parent": 0}, "non-empty 'xml'"),
            (
                {"kind": "insert_child", "parent": 0, "xml": "<x/>", "index": "end"},
                "integer or null",
            ),
        ],
    )
    def test_bad_specs_fail_with_service_errors(self, writer, op, message):
        (request,) = batch(op)
        writer.apply_batch([request])
        with pytest.raises(ServiceError, match=message):
            request.future.result(timeout=0)

    def test_bad_spec_failure_is_isolated_in_its_batch(self, writer):
        requests = batch(insert_spec(tag="a"), {"kind": "nope"}, insert_spec(tag="b"))
        writer.apply_batch(requests)
        assert requests[0].future.result(timeout=0)["inserted_nodes"] == 1
        with pytest.raises(ServiceError):
            requests[1].future.result(timeout=0)
        assert requests[2].future.result(timeout=0)["inserted_nodes"] == 1
        assert writer.commits_acked == 2
        assert writer.requests_failed == 1
        # The two commits still shared one fsync.
        assert writer.fsyncs == 1
        assert writer.batches == 1


class TestBatchAcks:
    def test_one_fsync_covers_the_whole_batch(self, writer):
        requests = batch(*(insert_spec(tag=f"t{i}") for i in range(5)))
        writer.apply_batch(requests)
        acks = [request.future.result(timeout=0) for request in requests]
        assert writer.fsyncs == 1
        assert all(ack["batch_commits"] == 5 for ack in acks)
        assert all(ack["batch_fsyncs"] == 1 for ack in acks)
        assert writer.amortized_fsyncs_per_commit == pytest.approx(0.2)

    def test_ack_carries_lsn_version_and_stats(self, writer):
        (request,) = batch(insert_spec())
        writer.apply_batch([request])
        ack = request.future.result(timeout=0)
        assert ack["lsn"] == writer.engine.wal.next_lsn - 1
        assert ack["version"] == writer.acked_version
        assert ack["inserted_nodes"] == 1
        assert ack["deleted_nodes"] == 0
        assert ack["processing_seconds"] >= 0.0

    def test_view_is_republished_at_batch_boundaries(self, writer):
        before = writer.view
        count = before.node_count()
        writer.apply_batch(batch(insert_spec()))
        assert writer.view is not before
        assert before.node_count() == count  # the old snapshot is frozen
        assert writer.view.node_count() == count + 1
        assert writer.view.version == writer.acked_version

    def test_positions_resolve_at_apply_time(self):
        # The second op addresses the node the first op just inserted:
        # position indexes are interpreted against the post-op order.
        labeled = make_scheme(SCHEME).label_document(
            parse_document("<root><a/></root>")
        )
        writer = DocumentWriter(UpdateEngine(labeled, with_storage=True))
        # Document order after op 1: root=0, a=1, outer=2.
        requests = batch(
            insert_spec(parent=0, tag="outer"),
            {"kind": "insert_child", "parent": 2, "xml": "<inner/>"},
        )
        writer.apply_batch(requests)
        for request in requests:
            request.future.result(timeout=0)
        outer = labeled.nodes_in_order[2]
        assert outer.name == "outer"
        assert [child.name for child in outer.children] == ["inner"]


class TestQuarantine:
    def test_crash_mid_batch_fails_every_unacked_future(self, writer):
        requests = batch(*(insert_spec(tag=f"t{i}") for i in range(3)))
        with FAULTS.armed(FaultPlan.crash("wal.fsync", at=1)):
            with pytest.raises(SimulatedCrash):
                writer.apply_batch(requests)
        assert writer.status == "crashed"
        assert isinstance(writer.crash_cause, SimulatedCrash)
        for request in requests:
            with pytest.raises(ServiceCrashed, match="recover"):
                request.future.result(timeout=0)
        # With auto-recover off, the quarantined writer refuses writes
        # (the self-healing path is pinned in test_recovery.py).
        writer.auto_recover = False
        with pytest.raises(ServiceCrashed, match="crashed"):
            writer.submit(insert_spec())

    def test_queued_requests_behind_a_crash_fail_too(self, writer):
        straggler = UpdateRequest(op=insert_spec())
        writer._queue.put(straggler)
        with FAULTS.armed(FaultPlan.crash("wal.fsync", at=1)):
            with pytest.raises(SimulatedCrash):
                writer.apply_batch(batch(insert_spec()))
        with pytest.raises(ServiceCrashed):
            straggler.future.result(timeout=0)

    def test_recovery_after_crash_is_the_acked_prefix(self, writer, tmp_path):
        acked = batch(insert_spec(tag="durable"))
        writer.apply_batch(acked)
        acked[0].future.result(timeout=0)
        state = logical_state(writer.engine.labeled)
        with FAULTS.armed(FaultPlan.crash("wal.fsync", at=1)):
            with pytest.raises(SimulatedCrash):
                writer.apply_batch(batch(insert_spec(tag="lost")))
        report = recover(tmp_path)
        assert logical_state(report.labeled) == state


class TestLifecycle:
    def test_thread_submit_and_close(self, tmp_path):
        writer = DocumentWriter(build_wal_engine(SCHEME, tmp_path)).start()
        futures = [writer.submit(insert_spec(tag=f"t{i}")) for i in range(4)]
        acks = [future.result(timeout=5.0) for future in futures]
        assert writer.commits_acked == 4
        assert all(ack["version"] <= writer.acked_version for ack in acks)
        writer.close(timeout=5.0)
        assert writer.status == "closed"
        with pytest.raises(ServiceError, match="closed"):
            writer.submit(insert_spec())

    def test_start_is_idempotent(self, tmp_path):
        writer = DocumentWriter(build_wal_engine(SCHEME, tmp_path)).start()
        thread = writer._thread
        assert writer.start()._thread is thread
        writer.close(timeout=5.0)

    def test_durability_off_mode_still_batches_and_publishes(self):
        labeled = make_scheme(SCHEME).label_document(seed_document())
        engine = UpdateEngine(labeled, with_storage=True)
        writer = DocumentWriter(engine)
        requests = batch(insert_spec(tag="a"), insert_spec(tag="b"))
        writer.apply_batch(requests)
        acks = [request.future.result(timeout=0) for request in requests]
        assert writer.fsyncs == 0
        assert all(ack["lsn"] is None for ack in acks)
        assert all(ack["batch_fsyncs"] == 0 for ack in acks)
        assert writer.acked_version == 2
        assert writer.view.version == 2

    def test_max_batch_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_batch"):
            DocumentWriter(build_wal_engine(SCHEME, tmp_path), max_batch=0)
