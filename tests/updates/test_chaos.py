"""Chaos harness: seeded churn with a fault at every site.

For every (scheme, site) cell the same scripted churn workload runs
three ways:

1. an *oracle* engine replays the script with no faults armed;
2. a *victim* engine replays it with a persistent fault armed at the
   site — every op whose path crosses the site aborts, must roll back
   to a byte-identical pre-op snapshot with zero integrity violations,
   and is then replayed fault-free;
3. the victim's final state must equal the oracle's, byte for byte —
   rollback + replay is indistinguishable from never having failed.

The script names positions, never node objects (see
:func:`repro.updates.workloads.churn_script`), which is what makes the
oracle comparison sound after a rollback.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import UpdateAborted
from repro.faults import FAULTS, KNOWN_SITES, FaultPlan
from repro.labeling import make_scheme
from repro.updates import UpdateEngine, apply_churn_op, churn_script
from repro.verify import verify_integrity
from repro.xmltree import Node, parse_document

from tests.updates.stateutil import full_snapshot

SCHEMES = [
    "V-CDBS-Containment",
    "F-CDBS-Containment",
    "CDBS(UTF8)-Prefix",
    "Prime",
]

OPERATIONS = 12
DOC_SEED = 7
SCRIPT_SEED = 20060403  # the paper's conference date, nothing magic


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


def seed_document(elements=30, seed=DOC_SEED):
    """A deterministic random tree, bushy enough for moves and deletes."""
    rng = random.Random(seed)
    doc = parse_document("<root/>")
    pool = [doc.root]
    for index in range(elements):
        parent = rng.choice(pool)
        child = Node.element(f"e{index % 9}")
        parent.insert_child(len(parent.children), child)
        pool.append(child)
    return doc


def build_engine(scheme):
    labeled = make_scheme(scheme).label_document(seed_document())
    return UpdateEngine(labeled, with_storage=True)


def run_oracle(scheme, script):
    engine = build_engine(scheme)
    for op in script:
        apply_churn_op(engine, op)
    return full_snapshot(engine)


class TestChaosMatrix:
    @pytest.mark.parametrize("site", KNOWN_SITES)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_rollback_then_replay_matches_fault_free_oracle(
        self, scheme, site
    ):
        script = churn_script(OPERATIONS, SCRIPT_SEED)
        oracle = run_oracle(scheme, script)
        engine = build_engine(scheme)
        aborts = 0
        for op in script:
            before = full_snapshot(engine)
            try:
                with FAULTS.armed(FaultPlan.single(site, at=1)):
                    apply_churn_op(engine, op)
            except UpdateAborted:
                aborts += 1
                assert full_snapshot(engine) == before
                assert verify_integrity(engine.labeled, engine.store) == []
                apply_churn_op(engine, op)  # replay fault-free
        assert full_snapshot(engine) == oracle
        assert verify_integrity(engine.labeled, engine.store) == []
        if site == "pager.page_write":
            # every scripted op writes pages, so every one must abort
            assert aborts == OPERATIONS

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_deep_ordinals_roll_back_too(self, scheme):
        """Faults landing mid-operation (not on the first write) unwind."""
        script = churn_script(OPERATIONS, SCRIPT_SEED)
        oracle = run_oracle(scheme, script)
        engine = build_engine(scheme)
        for ordinal, op in enumerate(script, start=1):
            before = full_snapshot(engine)
            plan = FaultPlan.single(
                "pager.page_write", at=1 + ordinal % 3
            )
            try:
                with FAULTS.armed(plan):
                    apply_churn_op(engine, op)
            except UpdateAborted:
                assert full_snapshot(engine) == before
                assert verify_integrity(engine.labeled, engine.store) == []
                apply_churn_op(engine, op)
        assert full_snapshot(engine) == oracle

    def test_seeded_plans_replay_identically(self):
        """A serialized failing plan re-arms to the identical failure."""
        script = churn_script(OPERATIONS, SCRIPT_SEED)
        plan = FaultPlan.seeded(99)
        outcomes = []
        for trial in range(2):
            engine = build_engine("V-CDBS-Containment")
            armed = FaultPlan.from_dict(plan.to_dict()) if trial else plan
            trace = []
            for op in script:
                try:
                    with FAULTS.armed(armed):
                        apply_churn_op(engine, op)
                    trace.append("ok")
                except UpdateAborted:
                    trace.append("abort")
                    apply_churn_op(engine, op)
            outcomes.append((trace, full_snapshot(engine)))
        assert outcomes[0] == outcomes[1]
