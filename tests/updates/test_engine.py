"""UpdateEngine: positioned edits with cost accounting."""

from __future__ import annotations

import pytest

from repro.labeling import make_scheme
from repro.updates import UpdateEngine
from repro.xmltree import Node, parse_document


def build_engine(scheme="V-CDBS-Containment", storage=False):
    doc = parse_document("<r><a><b/><c/></a><d/></r>")
    labeled = make_scheme(scheme).label_document(doc)
    return UpdateEngine(labeled, with_storage=storage), doc


class TestOperations:
    def test_insert_before(self):
        engine, doc = build_engine()
        target = doc.root.children[1]  # <d/>
        new = Node.element("x")
        result = engine.insert_before(target, new)
        assert doc.root.children[1] is new
        assert result.stats.inserted_nodes == 1

    def test_insert_after(self):
        engine, doc = build_engine()
        target = doc.root.children[0]
        new = Node.element("x")
        engine.insert_after(target, new)
        assert doc.root.children[1] is new

    def test_insert_child_default_last(self):
        engine, doc = build_engine()
        new = Node.element("x")
        engine.insert_child(doc.root, new)
        assert doc.root.children[-1] is new

    def test_insert_child_at_index(self):
        engine, doc = build_engine()
        new = Node.element("x")
        engine.insert_child(doc.root, new, index=0)
        assert doc.root.children[0] is new

    def test_insert_sibling_of_root_rejected(self):
        engine, doc = build_engine()
        with pytest.raises(ValueError):
            engine.insert_before(doc.root, Node.element("x"))
        with pytest.raises(ValueError):
            engine.insert_after(doc.root, Node.element("x"))

    def test_delete(self):
        engine, doc = build_engine()
        victim = doc.root.children[0]
        result = engine.delete(victim)
        assert result.stats.deleted_nodes == 3
        assert victim.parent is None

    def test_totals_accumulate(self):
        engine, doc = build_engine()
        engine.insert_child(doc.root, Node.element("x"))
        engine.insert_child(doc.root, Node.element("y"))
        assert engine.totals.inserted_nodes == 2

    def test_insert_empty_run_is_free(self):
        # The empty run used to still call the scheme and bill the
        # store a phantom splice at position 0.
        engine, doc = build_engine(storage=True)
        target = doc.root.children[1]
        reads = engine.store.pages.counter.reads
        writes = engine.store.pages.counter.writes
        result = engine.insert_run_before(target, [])
        assert result.stats.inserted_nodes == 0
        assert result.stats.labels_written == 0
        assert result.processing_seconds == 0.0
        assert result.io_seconds == 0.0
        assert result.pages_touched == 0
        assert engine.store.pages.counter.reads == reads
        assert engine.store.pages.counter.writes == writes
        assert engine.totals.inserted_nodes == 0


class TestCostAccounting:
    def test_processing_time_measured(self):
        engine, doc = build_engine()
        result = engine.insert_child(doc.root, Node.element("x"))
        assert result.processing_seconds > 0

    def test_no_storage_no_io(self):
        engine, doc = build_engine(storage=False)
        result = engine.insert_child(doc.root, Node.element("x"))
        assert result.io_seconds == 0.0
        assert result.pages_touched == 0

    def test_storage_charges_io(self):
        engine, doc = build_engine(storage=True)
        result = engine.insert_child(doc.root, Node.element("x"))
        assert result.io_seconds > 0
        assert result.pages_touched >= 1

    def test_total_is_sum(self):
        engine, doc = build_engine(storage=True)
        result = engine.insert_child(doc.root, Node.element("x"))
        assert result.total_seconds == pytest.approx(
            result.processing_seconds + result.io_seconds
        )

    def test_move_merges_delete_and_insert_costs(self):
        # move_before is delete + insert; its accounting must equal the
        # two steps run explicitly on an identical twin document.
        engine, doc = build_engine(storage=True)
        twin_engine, twin_doc = build_engine(storage=True)

        moved = doc.root.children[0].children[0]  # <b/>
        target = doc.root.children[1]  # <d/>
        move = engine.move_before(moved, target)

        twin_moved = twin_doc.root.children[0].children[0]
        twin_target = twin_doc.root.children[1]
        deletion = twin_engine.delete(twin_moved)
        insertion = twin_engine.insert_before(twin_target, twin_moved)

        merged = deletion.stats.merge(insertion.stats)
        assert move.stats.deleted_nodes == merged.deleted_nodes == 1
        assert move.stats.inserted_nodes == merged.inserted_nodes == 1
        assert move.stats.relabeled_nodes == merged.relabeled_nodes
        assert move.stats.labels_written == merged.labels_written
        assert move.pages_touched == (
            deletion.pages_touched + insertion.pages_touched
        )
        assert move.io_seconds == pytest.approx(
            deletion.io_seconds + insertion.io_seconds
        )
        assert doc.root.children[1] is moved
        # Document order stayed coherent through the merge.
        assert [id(n) for n in engine.labeled.nodes_in_order] == [
            id(n) for n in doc.pre_order()
        ]

    def test_static_scheme_charges_relabel_io(self):
        dynamic_engine, dynamic_doc = build_engine("V-CDBS-Containment", storage=True)
        static_engine, static_doc = build_engine("V-Binary-Containment", storage=True)
        dynamic = dynamic_engine.insert_child(
            dynamic_doc.root, Node.element("x"), index=0
        )
        static = static_engine.insert_child(
            static_doc.root, Node.element("x"), index=0
        )
        assert static.stats.relabeled_nodes > 0
        assert dynamic.stats.relabeled_nodes == 0
        assert static.pages_touched >= dynamic.pages_touched
