"""UpdateEngine: positioned edits with cost accounting."""

from __future__ import annotations

import pytest

from repro.labeling import make_scheme
from repro.updates import UpdateEngine
from repro.xmltree import Node, parse_document


def build_engine(scheme="V-CDBS-Containment", storage=False):
    doc = parse_document("<r><a><b/><c/></a><d/></r>")
    labeled = make_scheme(scheme).label_document(doc)
    return UpdateEngine(labeled, with_storage=storage), doc


class TestOperations:
    def test_insert_before(self):
        engine, doc = build_engine()
        target = doc.root.children[1]  # <d/>
        new = Node.element("x")
        result = engine.insert_before(target, new)
        assert doc.root.children[1] is new
        assert result.stats.inserted_nodes == 1

    def test_insert_after(self):
        engine, doc = build_engine()
        target = doc.root.children[0]
        new = Node.element("x")
        engine.insert_after(target, new)
        assert doc.root.children[1] is new

    def test_insert_child_default_last(self):
        engine, doc = build_engine()
        new = Node.element("x")
        engine.insert_child(doc.root, new)
        assert doc.root.children[-1] is new

    def test_insert_child_at_index(self):
        engine, doc = build_engine()
        new = Node.element("x")
        engine.insert_child(doc.root, new, index=0)
        assert doc.root.children[0] is new

    def test_insert_sibling_of_root_rejected(self):
        engine, doc = build_engine()
        with pytest.raises(ValueError):
            engine.insert_before(doc.root, Node.element("x"))
        with pytest.raises(ValueError):
            engine.insert_after(doc.root, Node.element("x"))

    def test_delete(self):
        engine, doc = build_engine()
        victim = doc.root.children[0]
        result = engine.delete(victim)
        assert result.stats.deleted_nodes == 3
        assert victim.parent is None

    def test_totals_accumulate(self):
        engine, doc = build_engine()
        engine.insert_child(doc.root, Node.element("x"))
        engine.insert_child(doc.root, Node.element("y"))
        assert engine.totals.inserted_nodes == 2


class TestCostAccounting:
    def test_processing_time_measured(self):
        engine, doc = build_engine()
        result = engine.insert_child(doc.root, Node.element("x"))
        assert result.processing_seconds > 0

    def test_no_storage_no_io(self):
        engine, doc = build_engine(storage=False)
        result = engine.insert_child(doc.root, Node.element("x"))
        assert result.io_seconds == 0.0
        assert result.pages_touched == 0

    def test_storage_charges_io(self):
        engine, doc = build_engine(storage=True)
        result = engine.insert_child(doc.root, Node.element("x"))
        assert result.io_seconds > 0
        assert result.pages_touched >= 1

    def test_total_is_sum(self):
        engine, doc = build_engine(storage=True)
        result = engine.insert_child(doc.root, Node.element("x"))
        assert result.total_seconds == pytest.approx(
            result.processing_seconds + result.io_seconds
        )

    def test_static_scheme_charges_relabel_io(self):
        dynamic_engine, dynamic_doc = build_engine("V-CDBS-Containment", storage=True)
        static_engine, static_doc = build_engine("V-Binary-Containment", storage=True)
        dynamic = dynamic_engine.insert_child(
            dynamic_doc.root, Node.element("x"), index=0
        )
        static = static_engine.insert_child(
            static_doc.root, Node.element("x"), index=0
        )
        assert static.stats.relabeled_nodes > 0
        assert dynamic.stats.relabeled_nodes == 0
        assert static.pages_touched >= dynamic.pages_touched
