"""Bulk run insertion and subtree moves."""

from __future__ import annotations

import pytest

from repro.labeling import make_scheme, scheme_names
from repro.query import evaluate_reference
from repro.updates import UpdateEngine
from repro.xmltree import Node, parse_document

RUN_SCHEMES = (
    "V-CDBS-Containment",
    "QED-Containment",
    "QED-Prefix",
    "CDBS(UTF8)-Prefix",
    "OrdPath1-Prefix",
    "Prime",
    "V-Binary-Containment",
    "DeweyID(UTF8)-Prefix",
)


def build(scheme_name):
    doc = parse_document("<r><a><x/></a><b/><c/></r>")
    labeled = make_scheme(scheme_name).label_document(doc)
    return doc, labeled, UpdateEngine(labeled, with_storage=False)


class TestInsertRun:
    @pytest.mark.parametrize("scheme_name", RUN_SCHEMES)
    def test_run_before_keeps_invariants(self, scheme_name):
        doc, labeled, engine = build(scheme_name)
        roots = [Node.element(f"n{i}") for i in range(7)]
        result = engine.insert_run_before(doc.root.children[1], roots)
        assert result.stats.inserted_nodes == 7
        assert [c.name for c in doc.root.children] == [
            "a", "n0", "n1", "n2", "n3", "n4", "n5", "n6", "b", "c",
        ]
        scheme = labeled.scheme
        keys = [
            scheme.order_key(labeled.label_of(n))
            for n in labeled.nodes_in_order
        ]
        assert keys == sorted(keys)
        for a in labeled.nodes_in_order:
            for b in doc.root.children:
                assert scheme.is_parent(
                    labeled.label_of(doc.root), labeled.label_of(b)
                )

    def test_empty_run(self):
        doc, labeled, engine = build("V-CDBS-Containment")
        result = engine.insert_run_before(doc.root.children[1], [])
        assert result.stats.inserted_nodes == 0

    def test_balanced_run_grows_logarithmically(self):
        """A 63-sibling run in one gap: balanced codes stay ~log(K)
        bits; a chained loop would grow them linearly."""
        doc, labeled, engine = build("V-CDBS-Containment")
        roots = [Node.element(f"n{i}") for i in range(63)]
        engine.insert_run_before(doc.root.children[1], roots)
        lengths = [len(labeled.label_of(r).start) for r in roots]
        assert max(lengths) <= 16

        chained_doc, chained_labeled, chained_engine = build(
            "V-CDBS-Containment"
        )
        target = chained_doc.root.children[1]
        for i in range(63):
            chained_engine.insert_before(target, Node.element(f"m{i}"))
        chained_lengths = [
            len(chained_labeled.label_of(c).start)
            for c in chained_doc.root.children
            if c.name.startswith("m")
        ]
        assert max(chained_lengths) > max(lengths)

    def test_run_with_subtrees(self):
        doc, labeled, engine = build("QED-Prefix")
        roots = []
        for i in range(3):
            root = Node.element("s")
            root.append_child(Node.element("t")).append_child(Node.text(str(i)))
            roots.append(root)
        result = engine.insert_run_before(doc.root.children[2], roots)
        assert result.stats.inserted_nodes == 9
        expected = [id(n) for n in evaluate_reference(doc, "//s/t")]
        from repro.query import QueryEngine

        got = [id(n) for n in QueryEngine(labeled).evaluate("//s/t")]
        assert got == expected

    def test_static_scheme_run_counts_relabels(self):
        doc, labeled, engine = build("V-Binary-Containment")
        roots = [Node.element(f"n{i}") for i in range(4)]
        result = engine.insert_run_before(doc.root.children[1], roots)
        assert result.stats.inserted_nodes == 4
        assert result.stats.relabeled_nodes > 0


class TestMove:
    @pytest.mark.parametrize("scheme_name", RUN_SCHEMES)
    def test_move_before(self, scheme_name):
        doc, labeled, engine = build(scheme_name)
        c = doc.root.children[2]
        a = doc.root.children[0]
        result = engine.move_before(c, a)
        assert [ch.name for ch in doc.root.children] == ["c", "a", "b"]
        assert result.stats.deleted_nodes == 1
        assert result.stats.inserted_nodes == 1
        scheme = labeled.scheme
        keys = [
            scheme.order_key(labeled.label_of(n))
            for n in labeled.nodes_in_order
        ]
        assert keys == sorted(keys)

    def test_move_subtree_keeps_descendants(self):
        doc, labeled, engine = build("V-CDBS-Containment")
        a = doc.root.children[0]  # has child x
        engine.move_before(a, doc.root.children[2])
        assert [c.name for c in doc.root.children] == ["b", "a", "c"]
        assert a.children[0].name == "x"
        assert id(a.children[0]) in labeled.labels
        assert labeled.scheme.is_parent(
            labeled.label_of(a), labeled.label_of(a.children[0])
        )

    def test_move_onto_own_descendant_rejected(self):
        doc, labeled, engine = build("QED-Containment")
        a = doc.root.children[0]
        with pytest.raises(ValueError):
            engine.move_before(a, a.children[0])
        with pytest.raises(ValueError):
            engine.move_before(a, a)
