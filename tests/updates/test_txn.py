"""Undo-log transactions: UndoLog mechanics and engine-level atomicity."""

from __future__ import annotations

import pytest

from repro.errors import (
    PersistentFault,
    RollbackError,
    UpdateAborted,
)
from repro.faults import FAULTS, FaultPlan
from repro.labeling import make_scheme
from repro.obs import OBS
from repro.updates import Transaction, UndoLog, UpdateEngine
from repro.verify import verify_integrity
from repro.xmltree import Node, parse_document

from tests.updates.stateutil import full_snapshot


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


def build_engine(scheme="V-CDBS-Containment", storage=True):
    doc = parse_document("<r><a><b/><c/></a><d/><e><f/></e></r>")
    labeled = make_scheme(scheme).label_document(doc)
    return UpdateEngine(labeled, with_storage=storage), doc


class TestUndoLog:
    def test_rollback_runs_inverses_newest_first(self):
        log = UndoLog()
        order = []
        log.record(lambda: order.append("first"))
        log.record(lambda: order.append("second"))
        assert len(log) == 2
        assert log.rollback() == 2
        assert order == ["second", "first"]
        assert len(log) == 0

    def test_rollback_of_empty_log(self):
        assert UndoLog().rollback() == 0

    def test_failing_inverse_raises_rollback_error(self):
        log = UndoLog()
        ran = []

        def bad():
            raise RuntimeError("boom")

        log.record(lambda: ran.append("bottom"))
        log.record(bad)
        log.record(lambda: ran.append("top"))
        with pytest.raises(RollbackError) as excinfo:
            log.rollback()
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        # entries below the failure are dropped, not half-applied later
        assert ran == ["top"]
        assert len(log) == 0


class TestTransaction:
    def test_commit_unbinds_and_discards(self):
        engine, _ = build_engine()
        labeled, store = engine.labeled, engine.store
        with Transaction("noop", labeled, store) as txn:
            assert labeled.undo_log is txn.log
            assert store.pages.undo_log is txn.log
            assert store.sc_pages.undo_log is txn.log
        assert labeled.undo_log is None
        assert store.pages.undo_log is None

    def test_rollback_wraps_exceptions_as_update_aborted(self):
        engine, _ = build_engine()
        cause = RuntimeError("mid-op failure")
        with pytest.raises(UpdateAborted) as excinfo:
            with Transaction("insert", engine.labeled, engine.store):
                raise cause
        assert excinfo.value.__cause__ is cause
        assert engine.labeled.undo_log is None

    def test_rollback_counts_and_restores_ledger(self):
        engine, _ = build_engine()
        with OBS.capture():
            totals_before = OBS.ledger.totals_snapshot()
            with pytest.raises(UpdateAborted):
                with Transaction("insert", engine.labeled, engine.store):
                    OBS.charge("pager.pages_written", 17)
                    raise RuntimeError("abort")
            assert OBS.ledger.totals_snapshot() == totals_before
            assert OBS.counter("txn.rollbacks").value == 1

    def test_keyboard_interrupt_rolls_back_but_is_not_wrapped(self):
        engine, doc = build_engine()
        before = full_snapshot(engine)

        class Boom(KeyboardInterrupt):
            pass

        with pytest.raises(Boom):
            with Transaction("insert", engine.labeled, engine.store):
                engine.labeled.splice_in(doc.root, 0, Node.element("x"))
                raise Boom()
        assert full_snapshot(engine) == before


SCHEMES = [
    "V-CDBS-Containment",
    "F-CDBS-Containment",
    "CDBS(UTF8)-Prefix",
    "Prime",
    "DeweyID(UTF8)-Prefix",
]


class TestEngineAtomicity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_aborted_insert_restores_everything(self, scheme):
        engine, doc = build_engine(scheme)
        before = full_snapshot(engine)
        totals_before = engine.totals
        with FAULTS.armed(FaultPlan.single("pager.page_write", at=1)):
            with pytest.raises(UpdateAborted) as excinfo:
                engine.insert_before(doc.root.children[1], Node.element("x"))
        assert isinstance(excinfo.value.__cause__, PersistentFault)
        assert full_snapshot(engine) == before
        assert engine.totals is totals_before
        assert verify_integrity(engine.labeled, engine.store) == []

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_aborted_delete_restores_everything(self, scheme):
        engine, doc = build_engine(scheme)
        before = full_snapshot(engine)
        with FAULTS.armed(FaultPlan.single("pager.page_write", at=1)):
            with pytest.raises(UpdateAborted):
                engine.delete(doc.root.children[0])
        assert full_snapshot(engine) == before
        assert verify_integrity(engine.labeled, engine.store) == []

    def test_aborted_insert_run_restores_everything(self):
        engine, doc = build_engine()
        before = full_snapshot(engine)
        run = [Node.element("x"), Node.element("y"), Node.element("z")]
        with FAULTS.armed(FaultPlan.single("pager.page_write", at=1)):
            with pytest.raises(UpdateAborted):
                engine.insert_run_before(doc.root.children[1], run)
        assert full_snapshot(engine) == before
        assert verify_integrity(engine.labeled, engine.store) == []

    def test_guard_errors_do_not_open_a_transaction(self):
        engine, doc = build_engine()
        with OBS.capture():
            with pytest.raises(ValueError):
                engine.insert_before(doc.root, Node.element("x"))
            with pytest.raises(ValueError):
                engine.move_before(doc.root.children[0], doc.root.children[0])
            assert OBS.counter("txn.rollbacks").value == 0

    def test_operation_after_rollback_succeeds(self):
        engine, doc = build_engine()
        with FAULTS.armed(FaultPlan.single("label.write", at=1)):
            with pytest.raises(UpdateAborted):
                engine.insert_before(doc.root.children[1], Node.element("x"))
        result = engine.insert_before(doc.root.children[1], Node.element("x"))
        assert result.stats.inserted_nodes == 1
        assert verify_integrity(engine.labeled, engine.store) == []


class TestMoveAtomicity:
    """Satellite regression: ``move_before`` commits both halves or neither."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_fault_in_insert_half_restores_the_deleted_subtree(self, scheme):
        engine, doc = build_engine(scheme)
        moved = doc.root.children[0]  # <a><b/><c/></a>
        target = doc.root.children[2]  # <e><f/></e>
        before = full_snapshot(engine)
        # the delete half writes no labels; the first label.write is the
        # re-insert minting fresh labels at the destination
        with FAULTS.armed(FaultPlan.single("label.write", at=1)):
            with pytest.raises(UpdateAborted):
                engine.move_before(moved, target)
        assert full_snapshot(engine) == before
        assert doc.root.children[0] is moved
        assert moved.parent is doc.root
        assert verify_integrity(engine.labeled, engine.store) == []

    def test_move_succeeds_after_aborted_move(self):
        engine, doc = build_engine()
        moved = doc.root.children[0]
        target = doc.root.children[2]
        with FAULTS.armed(FaultPlan.single("label.write", at=1)):
            with pytest.raises(UpdateAborted):
                engine.move_before(moved, target)
        engine.move_before(moved, target)
        assert doc.root.children[1] is moved
        assert verify_integrity(engine.labeled, engine.store) == []
