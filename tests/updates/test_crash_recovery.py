"""Crash matrix: kill the process at every WAL site, recover, compare.

The cell contract (ISSUE 5 acceptance):

* a :class:`~repro.errors.SimulatedCrash` at ``wal.append`` or
  ``wal.fsync`` fires *before* the record reaches the durable log, so
  the crashing operation was never acknowledged — recovery must equal
  the script prefix **without** it;
* a crash at ``wal.checkpoint_write`` or ``wal.checkpoint_truncate``
  fires *after* the commit fsync'd, so the operation is durable —
  recovery must equal the prefix **including** it (the truncate site is
  also the idempotent-replay path: the new bundle and the full log
  coexist, and replay must skip the covered LSNs);
* either way the recovered document passes ``verify_integrity`` and can
  resume the rest of the script to the same final state as a run that
  never crashed.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulatedCrash
from repro.faults import FAULTS, WAL_CRASH_SITES, FaultPlan
from repro.labeling import make_scheme
from repro.updates import UpdateEngine, apply_churn_op, churn_script
from repro.verify import verify_integrity
from repro.wal import recover
from repro.wal.writer import LOG_NAME

from tests.wal.walutil import build_wal_engine, logical_state, seed_document

SCHEMES = [
    "V-CDBS-Containment",
    "F-CDBS-Containment",
    "CDBS(UTF8)-Prefix",
]

OPERATIONS = 20
SEED = 7
CHECKPOINT_EVERY = 3

#: Crashes at these sites land after the commit record is fsync'd: the
#: op survives the crash even though the caller never got its result.
_POST_COMMIT_SITES = ("wal.checkpoint_write", "wal.checkpoint_truncate")


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.disarm()


def prefix_oracle(scheme, script):
    """The logical state after each prefix of ``script`` (index = ops)."""
    engine = UpdateEngine(
        make_scheme(scheme).label_document(seed_document()),
        with_storage=True,
    )
    states = [logical_state(engine.labeled)]
    for op in script:
        apply_churn_op(engine, op)
        states.append(logical_state(engine.labeled))
    return states


def crash_cell(scheme, site, tmp_path, at=2):
    """Run the script until the armed crash fires; return (done, dir)."""
    engine = build_wal_engine(
        scheme, tmp_path, checkpoint_commits=CHECKPOINT_EVERY
    )
    script = churn_script(OPERATIONS, SEED)
    plan = FaultPlan.crash(site, at=at, note=f"{scheme}/{site}")
    done = None
    with FAULTS.armed(plan):
        for index, op in enumerate(script):
            try:
                apply_churn_op(engine, op)
            except SimulatedCrash:
                done = index
                break
    assert done is not None, f"crash at {site} never fired"
    return script, done


class TestCrashMatrix:
    @pytest.mark.parametrize("site", WAL_CRASH_SITES)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_recovery_equals_committed_prefix(self, scheme, site, tmp_path):
        script, done = crash_cell(scheme, site, tmp_path)
        committed = done + (1 if site in _POST_COMMIT_SITES else 0)
        oracle = prefix_oracle(scheme, script)

        report = recover(tmp_path)
        assert logical_state(report.labeled) == oracle[committed]
        assert verify_integrity(report.labeled) == []

    @pytest.mark.parametrize("site", WAL_CRASH_SITES)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_resume_after_recovery_reaches_the_oracle_end(
        self, scheme, site, tmp_path
    ):
        script, done = crash_cell(scheme, site, tmp_path)
        committed = done + (1 if site in _POST_COMMIT_SITES else 0)
        oracle = prefix_oracle(scheme, script)

        resumed = UpdateEngine(
            recover(tmp_path).labeled,
            with_storage=True,
            durability="wal",
            wal_dir=tmp_path,
            wal_checkpoint_commits=CHECKPOINT_EVERY,
        )
        for op in script[committed:]:
            apply_churn_op(resumed, op)
        assert logical_state(resumed.labeled) == oracle[-1]
        assert verify_integrity(resumed.labeled, resumed.store) == []

    def test_checkpoint_truncate_crash_exercises_the_skip_path(
        self, tmp_path
    ):
        """New bundle + full log: replay must skip the covered LSNs."""
        crash_cell(SCHEMES[0], "wal.checkpoint_truncate", tmp_path)
        report = recover(tmp_path)
        assert report.skipped > 0
        assert report.watermark > 0

    def test_crash_is_never_wrapped_as_update_aborted(self, tmp_path):
        """The engine must re-raise SimulatedCrash raw: rollback-and-retry
        semantics are for faults a live process can survive."""
        engine = build_wal_engine(SCHEMES[0], tmp_path)
        script = churn_script(OPERATIONS, SEED)
        with FAULTS.armed(FaultPlan.crash("wal.fsync", at=1)):
            with pytest.raises(SimulatedCrash):
                for op in script:
                    apply_churn_op(engine, op)

    def test_crash_then_torn_tail_still_recovers(self, tmp_path):
        """The worst cell: die at an fsync *and* lose half the last frame."""
        script, done = crash_cell(SCHEMES[0], "wal.fsync", tmp_path)
        assert done == 1  # op 2 crashed pre-fsync; only op 1 is durable
        oracle = prefix_oracle(SCHEMES[0], script)
        log_path = tmp_path / LOG_NAME
        data = log_path.read_bytes()
        assert data, "need a non-empty log to tear"
        log_path.write_bytes(data[:-5])

        report = recover(tmp_path)
        assert report.tail_truncated
        # the torn frame takes op 1 off the durable prefix too: the
        # recovered state is the initial checkpoint, nothing newer
        assert logical_state(report.labeled) == oracle[0]
        assert verify_integrity(report.labeled) == []
