"""Ledger/engine reconciliation on a churn workload.

The obs ledger and ``UpdateResult`` are two views of the same work:
the engine charges ``engine.*`` units from the very ``UpdateStats`` it
returns, the pager charges ``pager.*`` units alongside its own
``PageCounter``, and every update's ``costs`` dict is a ledger delta.
If instrumentation ever drifts from the accounting the paper's numbers
are built on, these tests fail.
"""

from __future__ import annotations

import random

import pytest

from repro.labeling import make_scheme
from repro.obs import OBS
from repro.updates import UpdateEngine
from repro.xmltree import Node, ShapeSpec
from repro.xmltree.generator import generate_document

CHURN_NODES = 500
CHURN_OPS = 90

SCHEMES = (
    "V-CDBS-Containment",
    "F-CDBS-Containment",
    "CDBS(UTF8)-Prefix",
    "Prime",
)


@pytest.fixture(autouse=True)
def clean_registry():
    OBS.reset()
    OBS.enabled = False
    yield
    OBS.reset()
    OBS.enabled = False


def _build_engine(scheme_name: str):
    spec = ShapeSpec(
        tags=("doc", "sect", "para", "span"),
        max_depth=6,
        subtree_range=(2, 12),
    )
    document = generate_document(
        "churn", "doc", CHURN_NODES, spec, seed=11
    )
    labeled = make_scheme(scheme_name).label_document(document)
    return UpdateEngine(labeled, with_storage=True)


def _pick_leaf(labeled, rng):
    nodes = labeled.nodes_in_order
    while True:
        node = nodes[rng.randrange(len(nodes))]
        if node.parent is not None and not node.children:
            return node


def _churn(engine, ops: int = CHURN_OPS):
    """Mixed insert/delete/move trace; returns every UpdateResult."""
    labeled = engine.labeled
    rng = random.Random(97)
    results = []
    counter = 0
    for step in range(ops):
        kind = ("insert", "delete", "move")[step % 3]
        if kind == "insert":
            target = _pick_leaf(labeled, rng)
            fresh = Node.element(f"n{counter}")
            counter += 1
            results.append(engine.insert_before(target, fresh))
        elif kind == "delete":
            results.append(engine.delete(_pick_leaf(labeled, rng)))
        else:
            node = _pick_leaf(labeled, rng)
            target = _pick_leaf(labeled, rng)
            if node is target:
                continue
            results.append(engine.move_before(node, target))
    return results


@pytest.mark.parametrize("scheme_name", SCHEMES)
class TestLedgerMatchesUpdateResults:
    @pytest.fixture()
    def churned(self, scheme_name):
        # Engine construction loads the label store (pages written!), so
        # build first, then snapshot the page counters before capturing.
        engine = _build_engine(scheme_name)
        stores = (engine.store.pages, engine.store.sc_pages)
        pages_before = [
            (store.counter.reads, store.counter.writes) for store in stores
        ]
        with OBS.capture():
            results = _churn(engine)
            pages_after = [
                (store.counter.reads, store.counter.writes)
                for store in stores
            ]
            totals = dict(OBS.ledger.totals)
            by_op = {
                op: dict(units) for op, units in OBS.ledger.by_op.items()
            }
        return engine, results, pages_before, pages_after, totals, by_op

    def test_engine_units_equal_summed_stats(self, churned):
        _, results, _, _, totals, _ = churned
        expected = {
            "engine.nodes_inserted": sum(
                r.stats.inserted_nodes for r in results
            ),
            "engine.nodes_deleted": sum(
                r.stats.deleted_nodes for r in results
            ),
            "engine.nodes_relabeled": sum(
                r.stats.relabeled_nodes for r in results
            ),
            "engine.sc_groups_recomputed": sum(
                r.stats.sc_recomputed for r in results
            ),
            "engine.labels_written": sum(
                r.stats.labels_written for r in results
            ),
            "engine.pages_touched": sum(r.pages_touched for r in results),
        }
        for unit, value in expected.items():
            assert totals.get(unit, 0) == value, unit
        # The workload actually exercised the interesting counters.
        assert expected["engine.nodes_inserted"] > 0
        assert expected["engine.nodes_deleted"] > 0
        assert expected["engine.pages_touched"] > 0

    def test_pager_units_equal_page_counter_deltas(self, churned):
        _, _, pages_before, pages_after, totals, _ = churned
        read_delta = sum(
            after[0] - before[0]
            for before, after in zip(pages_before, pages_after)
        )
        write_delta = sum(
            after[1] - before[1]
            for before, after in zip(pages_before, pages_after)
        )
        assert totals.get("pager.pages_read", 0) == read_delta
        assert totals.get("pager.pages_written", 0) == write_delta
        assert write_delta > 0

    def test_per_update_costs_partition_the_totals(self, churned):
        _, results, _, _, totals, _ = churned
        assert all(r.costs is not None for r in results)
        summed: dict[str, int] = {}
        for result in results:
            for unit, amount in result.costs.items():
                summed[unit] = summed.get(unit, 0) + amount
        # Every charge in the capture happened inside some update, so
        # the per-update deltas must sum back to the grand totals.
        assert summed == totals

    def test_costs_attributed_to_real_ops(self, churned):
        _, _, _, _, _, by_op = churned
        assert set(by_op) <= {"insert", "delete", "insert_run"}

    def test_processing_histogram_counts_every_account(self, churned):
        engine, results, _, _, _, _ = churned
        del engine
        histogram = OBS.histogram("update.processing_seconds")
        # A move is delete + insert: two accounting events, one result.
        # Every other result maps 1:1.
        accounted = sum(
            2 if (r.stats.inserted_nodes and r.stats.deleted_nodes) else 1
            for r in results
        )
        assert histogram.count == accounted


def test_disabled_registry_reports_no_costs():
    engine = _build_engine("V-CDBS-Containment")
    results = _churn(engine, ops=6)
    assert all(r.costs is None for r in results)
    assert OBS.snapshot()["ledger"]["totals"] == {}
    assert OBS.snapshot()["histograms"] == {}
    # Timing still works without the registry (pre-existing API).
    assert all(r.processing_seconds >= 0.0 for r in results)
