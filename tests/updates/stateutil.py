"""Byte-level state snapshots shared by the transaction and chaos tests.

A snapshot captures everything an aborted operation must restore: the
serialized tree, every label in document order, the Prime SC groups and
prime floor, and (when a store is attached) the page layout plus the
read/write counters of both page files.  Two snapshots compare equal
iff the observable state is identical.
"""

from __future__ import annotations

from repro.xmltree import serialize_document

__all__ = ["full_snapshot"]


def _store_state(store):
    if store is None:
        return None
    return (
        tuple(store.pages.record_sizes()),
        store.pages.counter.reads,
        store.pages.counter.writes,
        tuple(store.sc_pages.record_sizes()),
        store.sc_pages.counter.reads,
        store.sc_pages.counter.writes,
    )


def full_snapshot(engine):
    labeled = engine.labeled
    groups = labeled.extra.get("sc_groups")
    return (
        serialize_document(labeled.document),
        tuple(
            repr(labeled.labels.get(id(node)))
            for node in labeled.nodes_in_order
        ),
        None
        if groups is None
        else tuple((group.index, group.sc) for group in groups),
        labeled.extra.get("next_prime_floor"),
        _store_state(engine.store),
    )
