"""Workloads: Table 4 cases, skewed and uniform frequent updates."""

from __future__ import annotations

import pytest

from repro.labeling import make_scheme
from repro.updates import (
    UpdateEngine,
    run_mixed_workload,
    run_skewed_insertions,
    run_table4_case,
    run_uniform_insertions,
    table4_cases,
)
from repro.xmltree import parse_document

TABLE4_BINARY = [6596, 5121, 3932, 2431, 1300]
TABLE4_PRIME = [1320, 1025, 787, 487, 261]


def hamlet_engine(scheme_name, storage=False):
    from repro.datasets import build_hamlet

    labeled = make_scheme(scheme_name).label_document(build_hamlet())
    return UpdateEngine(labeled, with_storage=storage)


class TestTable4:
    def test_requires_five_acts(self):
        doc = parse_document("<play><act/></play>")
        with pytest.raises(ValueError):
            table4_cases(doc)

    @pytest.mark.parametrize("case", [1, 2, 3, 4, 5])
    def test_binary_counts_exact(self, case):
        engine = hamlet_engine("V-Binary-Containment")
        result = run_table4_case(engine, case)
        assert result.stats.relabeled_nodes == TABLE4_BINARY[case - 1]

    @pytest.mark.parametrize("case", [1, 2, 3, 4, 5])
    def test_prime_counts_exact(self, case):
        engine = hamlet_engine("Prime")
        result = run_table4_case(engine, case)
        assert result.stats.sc_recomputed == TABLE4_PRIME[case - 1]

    @pytest.mark.parametrize(
        "scheme",
        [
            "OrdPath1-Prefix",
            "OrdPath2-Prefix",
            "QED-Prefix",
            "Float-point-Containment",
            "V-CDBS-Containment",
            "F-CDBS-Containment",
            "QED-Containment",
        ],
    )
    def test_dynamic_schemes_zero(self, scheme):
        for case in (1, 3, 5):
            engine = hamlet_engine(scheme)
            assert run_table4_case(engine, case).stats.relabeled_nodes == 0


class TestSkewed:
    def test_cdbs_survives_moderate_skew(self):
        engine = hamlet_engine("V-CDBS-Containment")
        target = table4_cases(engine.labeled.document)[0]
        report = run_skewed_insertions(engine, target, 100)
        assert report.operations == 100
        assert report.relabel_events == 0

    def test_float_point_storms_under_skew(self):
        """~18 inserts per storm (the paper's float precision claim)."""
        engine = hamlet_engine("Float-point-Containment")
        target = table4_cases(engine.labeled.document)[0]
        report = run_skewed_insertions(engine, target, 100)
        assert report.relabel_events >= 3
        assert report.relabeled_nodes > 10_000

    def test_qed_never_relabels_under_skew(self):
        engine = hamlet_engine("QED-Containment")
        target = table4_cases(engine.labeled.document)[0]
        report = run_skewed_insertions(engine, target, 300)
        assert report.relabel_events == 0

    def test_order_preserved_after_skew(self):
        engine = hamlet_engine("QED-Prefix")
        target = table4_cases(engine.labeled.document)[0]
        run_skewed_insertions(engine, target, 50)
        labeled = engine.labeled
        keys = [
            labeled.scheme.order_key(labeled.label_of(n))
            for n in labeled.nodes_in_order
        ]
        assert keys == sorted(keys)


class TestUniform:
    def test_uniform_no_relabel_for_cdbs(self):
        engine = hamlet_engine("V-CDBS-Containment")
        report = run_uniform_insertions(engine, 60, seed=3)
        assert report.relabel_events == 0
        assert report.operations == 60

    def test_uniform_deterministic(self):
        first = hamlet_engine("QED-Containment")
        second = hamlet_engine("QED-Containment")
        r1 = run_uniform_insertions(first, 30, seed=9)
        r2 = run_uniform_insertions(second, 30, seed=9)
        assert r1.relabeled_nodes == r2.relabeled_nodes
        flat1 = [n.name for n in first.labeled.nodes_in_order]
        flat2 = [n.name for n in second.labeled.nodes_in_order]
        assert flat1 == flat2


class TestMixed:
    def test_mixed_keeps_invariants(self):
        doc = parse_document("<r>" + "<a><b/><c/></a>" * 20 + "</r>")
        labeled = make_scheme("QED-Containment").label_document(doc)
        engine = UpdateEngine(labeled, with_storage=False)
        report = run_mixed_workload(engine, 60, seed=11)
        assert report.operations == 60
        keys = [
            labeled.scheme.order_key(labeled.label_of(n))
            for n in labeled.nodes_in_order
        ]
        assert keys == sorted(keys)
        assert len(labeled.labels) == len(labeled.nodes_in_order)

    def test_mixed_report_totals(self):
        doc = parse_document("<r>" + "<a><b/></a>" * 10 + "</r>")
        labeled = make_scheme("V-CDBS-Containment").label_document(doc)
        engine = UpdateEngine(labeled, with_storage=False)
        report = run_mixed_workload(engine, 20, seed=2)
        assert report.total_seconds >= report.processing_seconds
        assert len(report.results) == 20
