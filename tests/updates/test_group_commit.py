"""UpdateEngine.commit_group: one fsync per batch, per-op isolation."""

from __future__ import annotations

import pytest

from repro.errors import UpdateAborted
from repro.faults import FAULTS, FaultPlan
from repro.labeling import make_scheme
from repro.obs import OBS
from repro.updates import UpdateEngine
from repro.wal import decode_frames, recover
from repro.wal.writer import LOG_NAME
from repro.xmltree import Node

from tests.wal.walutil import build_wal_engine, logical_state, seed_document

SCHEME = "V-CDBS-Containment"


@pytest.fixture(autouse=True)
def clean_slate():
    OBS.reset()
    OBS.enabled = False
    yield
    FAULTS.disarm()
    OBS.reset()
    OBS.enabled = False


def log_bytes(engine):
    return (engine.wal.directory / LOG_NAME).read_bytes()


def insert(engine, tag="x"):
    return engine.insert_child(engine.labeled.document.root, Node.element(tag))


class TestGroupCommit:
    def test_n_commits_one_fsync(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        with engine.commit_group() as group:
            insert(engine, "a")
            insert(engine, "b")
            insert(engine, "c")
            # Mid-group: everything volatile, nothing durable yet.
            assert log_bytes(engine) == b""
        assert group.commits == 3
        assert len(group.receipts) == 3
        assert group.batch is not None
        assert group.batch.commits == 3
        assert group.batch.charges["wal.fsyncs"] == 1
        assert [record.lsn for record in decode_frames(log_bytes(engine))] == [
            receipt.lsn for receipt in group.receipts
        ]

    def test_receipts_carry_no_per_commit_fsync(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        with engine.commit_group() as group:
            insert(engine)
        (receipt,) = group.receipts
        assert "wal.fsyncs" not in receipt.charges

    def test_aborted_op_inside_group_is_isolated(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        root = engine.labeled.document.root
        with engine.commit_group() as group:
            insert(engine, "good")
            with pytest.raises(UpdateAborted):
                with FAULTS.armed(FaultPlan.single("label.write", at=1)):
                    insert(engine, "bad")
            insert(engine, "also-good")
        # The abort rolled back before its commit hook: the batch holds
        # exactly the two successful transactions.
        assert group.commits == 2
        assert group.batch.commits == 2
        tags = [child.name for child in root.children]
        assert "bad" not in tags
        report = recover(tmp_path)
        assert logical_state(report.labeled) == logical_state(engine.labeled)

    def test_exception_abandons_batch_without_flush(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        before = logical_state(engine.labeled)
        with pytest.raises(RuntimeError, match="boom"):
            with engine.commit_group():
                insert(engine, "staged")
                raise RuntimeError("boom")
        assert not engine.wal.in_batch
        assert log_bytes(engine) == b""
        assert logical_state(recover(tmp_path).labeled) == before

    def test_empty_group_commits_nothing(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        with engine.commit_group() as group:
            pass
        assert group.commits == 0
        assert group.batch is None
        assert log_bytes(engine) == b""

    def test_nested_group_rejected(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path)
        with engine.commit_group():
            with pytest.raises(RuntimeError, match="already open"):
                with engine.commit_group():
                    pass

    def test_group_requires_wal_durability(self):
        labeled = make_scheme(SCHEME).label_document(seed_document())
        engine = UpdateEngine(labeled, with_storage=True)
        with pytest.raises(ValueError, match="durability"):
            with engine.commit_group():
                pass


class TestDeferredCheckpoint:
    def test_no_checkpoint_fires_inside_the_group(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path, checkpoint_commits=2)
        with engine.commit_group():
            for tag in ("a", "b", "c", "d"):
                insert(engine, tag)
            # Threshold long passed, but a checkpoint here would cover
            # volatile records; it must wait for the batch fsync.
            assert engine.wal.commits_since_checkpoint == 4
        # At group end the deferred checkpoint ran and reset the count.
        assert engine.wal.commits_since_checkpoint == 0

    def test_group_end_checkpoint_recovers_cleanly(self, tmp_path):
        engine = build_wal_engine(SCHEME, tmp_path, checkpoint_commits=2)
        with engine.commit_group():
            insert(engine, "a")
            insert(engine, "b")
            insert(engine, "c")
        report = recover(tmp_path)
        assert logical_state(report.labeled) == logical_state(engine.labeled)
