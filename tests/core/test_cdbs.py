"""Algorithm 2 (V-CDBS / F-CDBS): Table 1 and Theorems 4.1–4.4."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cdbs import (
    fbinary_encode,
    fcdbs_encode,
    max_code_bits,
    vbinary_encode,
    vcdbs_encode,
    vcdbs_position,
)
from repro.core.bitstring import BitString
from repro.errors import InvalidCodeError

TABLE1_V_CDBS = [
    "00001", "0001", "001", "0011", "01", "01001", "0101", "011", "0111",
    "1", "10001", "1001", "101", "1011", "11", "1101", "111", "1111",
]
TABLE1_F_CDBS = [
    "00001", "00010", "00100", "00110", "01000", "01001", "01010", "01100",
    "01110", "10000", "10001", "10010", "10100", "10110", "11000", "11010",
    "11100", "11110",
]
TABLE1_V_BINARY = [
    "1", "10", "11", "100", "101", "110", "111", "1000", "1001", "1010",
    "1011", "1100", "1101", "1110", "1111", "10000", "10001", "10010",
]


class TestTable1Exact:
    """Experiment E1: the paper's Table 1 must reproduce bit-for-bit."""

    def test_v_cdbs_codes(self):
        assert [c.to01() for c in vcdbs_encode(18)] == TABLE1_V_CDBS

    def test_f_cdbs_codes(self):
        assert [c.to01() for c in fcdbs_encode(18)] == TABLE1_F_CDBS

    def test_v_binary_codes(self):
        assert [c.to01() for c in vbinary_encode(18)] == TABLE1_V_BINARY

    def test_f_binary_codes(self):
        assert [c.to01() for c in fbinary_encode(18)] == [
            code.zfill(5) for code in TABLE1_V_BINARY
        ]

    def test_total_bits_64(self):
        assert sum(len(c) for c in vcdbs_encode(18)) == 64
        assert sum(len(c) for c in vbinary_encode(18)) == 64

    def test_total_bits_90(self):
        assert sum(len(c) for c in fcdbs_encode(18)) == 90
        assert sum(len(c) for c in fbinary_encode(18)) == 90


class TestInvariants:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 16, 17, 100, 1023, 1024])
    def test_theorem_4_3_sorted(self, count):
        codes = vcdbs_encode(count)
        assert all(a < b for a, b in zip(codes, codes[1:]))

    @pytest.mark.parametrize("count", [1, 2, 7, 64, 500])
    def test_lemma_4_2_all_end_with_one(self, count):
        assert all(code.ends_with_one() for code in vcdbs_encode(count))

    @pytest.mark.parametrize("count", [1, 2, 7, 31, 32, 33, 255, 256, 1000])
    def test_theorem_4_4_compactness(self, count):
        """The multiset of V-CDBS code lengths equals V-Binary's."""
        cdbs_lengths = sorted(len(c) for c in vcdbs_encode(count))
        binary_lengths = sorted(len(c) for c in vbinary_encode(count))
        assert cdbs_lengths == binary_lengths

    @pytest.mark.parametrize("count", [1, 2, 18, 100])
    def test_theorem_4_1_encodes_all(self, count):
        codes = vcdbs_encode(count)
        assert len(codes) == count
        assert len(set(codes)) == count

    def test_fcdbs_is_padded_vcdbs(self):
        width = max_code_bits(100)
        variable = vcdbs_encode(100)
        fixed = fcdbs_encode(100)
        assert all(
            f == v.pad_right(width) for v, f in zip(variable, fixed)
        )

    def test_fcdbs_all_same_width(self):
        assert {len(c) for c in fcdbs_encode(300)} == {max_code_bits(300)}

    def test_fcdbs_sorted(self):
        codes = fcdbs_encode(300)
        assert all(a < b for a, b in zip(codes, codes[1:]))

    @given(st.integers(min_value=1, max_value=2048))
    @settings(max_examples=30)
    def test_property_sorted_and_compact(self, count):
        codes = vcdbs_encode(count)
        assert all(a < b for a, b in zip(codes, codes[1:]))
        assert sum(len(c) for c in codes) == sum(
            i.bit_length() for i in range(1, count + 1)
        )


class TestValidation:
    @pytest.mark.parametrize("func", [vcdbs_encode, fcdbs_encode, vbinary_encode, fbinary_encode])
    def test_rejects_non_positive(self, func):
        with pytest.raises(ValueError):
            func(0)
        with pytest.raises(ValueError):
            func(-3)

    def test_max_code_bits(self):
        assert max_code_bits(18) == 5
        assert max_code_bits(1) == 1
        assert max_code_bits(15) == 4
        assert max_code_bits(16) == 5
        with pytest.raises(ValueError):
            max_code_bits(0)


class TestPositionInversion:
    """Section 5.1: positions recoverable 'by calculations only'."""

    @pytest.mark.parametrize("count", [1, 2, 5, 18, 100, 257])
    def test_roundtrip_all(self, count):
        for position, code in enumerate(vcdbs_encode(count), start=1):
            assert vcdbs_position(code, count) == position

    def test_rejects_non_cdbs_code(self):
        with pytest.raises(InvalidCodeError):
            vcdbs_position(BitString.from_str("10"), 18)  # ends with 0

    def test_rejects_foreign_code(self):
        # A valid-looking code that is not in the bulk encoding of 1..18.
        with pytest.raises(InvalidCodeError):
            vcdbs_position(BitString.from_str("010101"), 18)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            vcdbs_position(BitString.from_str("1"), 0)
