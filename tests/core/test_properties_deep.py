"""Deeper cross-cutting properties of the core encodings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitstring import EMPTY, BitString
from repro.core.cdbs import (
    fcdbs_encode,
    max_code_bits,
    vbinary_encode,
    vcdbs_encode,
    vcdbs_position,
)
from repro.core.middle import assign_middle_binary_string
from repro.core.qed import assign_middle_quaternary, qed_encode


class TestInsertionCompactness:
    @settings(max_examples=40)
    @given(
        st.integers(min_value=2, max_value=600),
        st.integers(min_value=0, max_value=10**9),
    )
    def test_middle_between_bulk_neighbors_grows_one_bit(self, count, pick):
        """Inserting between adjacent bulk codes costs at most one bit
        over the longer neighbour — the paper's cheap-insert claim."""
        codes = vcdbs_encode(count)
        index = pick % (count - 1)
        left, right = codes[index], codes[index + 1]
        middle = assign_middle_binary_string(left, right)
        assert len(middle) <= max(len(left), len(right)) + 1

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=400))
    def test_bulk_codes_bounded_by_maxlen(self, count):
        assert max(len(c) for c in vcdbs_encode(count)) == max_code_bits(count)

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=400))
    def test_fcdbs_strip_recovers_vcdbs(self, count):
        stripped = [c.strip_trailing_zeros() for c in fcdbs_encode(count)]
        assert stripped == vcdbs_encode(count)


class TestPositionInverse:
    @settings(max_examples=30)
    @given(
        st.integers(min_value=1, max_value=800),
        st.integers(min_value=0, max_value=10**9),
    )
    def test_position_roundtrip_property(self, count, pick):
        position = pick % count + 1
        code = vcdbs_encode(count)[position - 1]
        assert vcdbs_position(code, count) == position


class TestCrossEncodingSizes:
    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=1500))
    def test_vcdbs_exactly_matches_binary_total(self, count):
        cdbs = sum(len(c) for c in vcdbs_encode(count))
        binary = sum(len(c) for c in vbinary_encode(count))
        assert cdbs == binary

    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=729))
    def test_qed_symbol_count_tracks_log3(self, count):
        import math

        codes = qed_encode(count)
        bound = math.ceil(math.log(count + 2, 3)) + 2
        assert max(len(c) for c in codes) <= bound


class TestMixedBackendInterleaving:
    @settings(max_examples=25)
    @given(st.lists(st.booleans(), min_size=1, max_size=60))
    def test_cdbs_and_qed_insert_streams_stay_consistent(self, where):
        """The two encodings run side by side on the same logical list
        and must agree on every relative order."""
        cdbs: list[BitString] = []
        qed: list[str] = []
        for go_left in where:
            index = 0 if go_left else len(cdbs)
            c_left = cdbs[index - 1] if index > 0 else EMPTY
            c_right = cdbs[index] if index < len(cdbs) else EMPTY
            cdbs.insert(index, assign_middle_binary_string(c_left, c_right))
            q_left = qed[index - 1] if index > 0 else ""
            q_right = qed[index] if index < len(qed) else ""
            qed.insert(index, assign_middle_quaternary(q_left, q_right))
        cdbs_ranks = sorted(range(len(cdbs)), key=lambda i: cdbs[i])
        qed_ranks = sorted(range(len(qed)), key=lambda i: qed[i])
        assert cdbs_ranks == qed_ranks


class TestBytesPacking:
    @settings(max_examples=40)
    @given(st.text(alphabet="01", min_size=1, max_size=64))
    def test_to_bytes_left_aligned(self, bits):
        code = BitString.from_str(bits)
        packed = code.to_bytes()
        assert len(packed) == -(-len(bits) // 8)
        unpacked = "".join(f"{byte:08b}" for byte in packed)[: len(bits)]
        assert unpacked == bits
