"""Differential equivalence: packed codec vs the per-bit reference.

The packed :mod:`repro.core.bitstring` turns every operation into
shift/mask arithmetic on ``(value, length)`` pairs; the reference
:mod:`repro.core.bitstring_ref` is the literal per-bit transcription of
the paper's definitions and shares no code with it.  These tests run
random *programs* — sequences of construct / compare / concat / slice /
``encode_run`` steps — against both implementations in lockstep and
require bit-identical answers at every step.

This is the test behind the ``codec-differential`` CI lane.  When a
program disagrees, the failing program (op list plus the index of the
step that diverged) is serialized to ``codec-differential-failure.json``
(path overridable via ``CODEC_DIFFERENTIAL_ARTIFACT``) so CI can upload
it as an artifact and anyone can replay it locally with
``replay_program``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitstring_ref as ref
from repro.core.bitstring import EMPTY, BitString, compare_many, encode_run

ARTIFACT_ENV = "CODEC_DIFFERENTIAL_ARTIFACT"
ARTIFACT_DEFAULT = "codec-differential-failure.json"


# ---------------------------------------------------------------------------
# program interpreter
# ---------------------------------------------------------------------------

def _pick(stack, index):
    return stack[index % len(stack)]


def replay_program(program: list[dict]) -> None:
    """Run one differential program; raises AssertionError on divergence.

    The packed and reference interpreters each keep a value stack and a
    pool of ``encode_run`` outputs; every step asserts that both sides
    rendered the same bits (``to01``), the same hash, and — for compare
    steps — the same orderings.
    """
    packed: list[BitString] = [EMPTY]
    mirror: list[ref.BitStringRef] = [ref.EMPTY_REF]
    packed_pool: list[BitString] = []
    mirror_pool: list[ref.BitStringRef] = []

    def check_top():
        p, r = packed[-1], mirror[-1]
        assert p.to01() == r.to01()
        assert len(p) == len(r)
        # Cross-implementation identity: same pattern => equal both
        # ways round and co-hashing (leading zeros significant).
        assert p == r and r == p
        assert hash(p) == hash(r)
        assert p.bitstring_key == r.bitstring_key

    for step in program:
        op = step["op"]
        if op == "push":
            packed.append(BitString.from_str(step["bits"]))
            mirror.append(ref.BitStringRef.from_str(step["bits"]))
            check_top()
        elif op == "concat":
            a, b = step["a"], step["b"]
            packed.append(_pick(packed, a) + _pick(packed, b))
            mirror.append(_pick(mirror, a) + _pick(mirror, b))
            check_top()
        elif op == "slice":
            s, lo, hi = step["s"], step["lo"], step["hi"]
            p, r = _pick(packed, s), _pick(mirror, s)
            lo, hi = sorted((lo % (len(p) + 1), hi % (len(p) + 1)))
            packed.append(p[lo:hi])
            mirror.append(r[lo:hi])
            check_top()
        elif op == "compare":
            a, b = step["a"], step["b"]
            pa, pb = _pick(packed, a), _pick(packed, b)
            ra, rb = _pick(mirror, a), _pick(mirror, b)
            assert (pa < pb) == (ra < rb)
            assert (pa <= pb) == (ra <= rb)
            assert (pa > pb) == (ra > rb)
            assert (pa >= pb) == (ra >= rb)
            assert (pa == pb) == (ra == rb)
        elif op == "encode_run":
            count = step["count"]
            if step["endpoints"] is None or not packed_pool:
                p_left = p_right = EMPTY
                r_left = r_right = ref.EMPTY_REF
            else:
                i, j = step["endpoints"]
                i, j = sorted((i % len(packed_pool), j % len(packed_pool)))
                if i == j:
                    # Degenerate gap: fall back to the sentinels.
                    p_left = p_right = EMPTY
                    r_left = r_right = ref.EMPTY_REF
                else:
                    p_left, p_right = packed_pool[i], packed_pool[j]
                    r_left, r_right = mirror_pool[i], mirror_pool[j]
            packed_codes = encode_run(count, p_left, p_right)
            mirror_codes = ref.encode_run(count, r_left, r_right)
            assert [c.to01() for c in packed_codes] == [
                c.to01() for c in mirror_codes
            ]
            if packed_codes:
                packed_pool = packed_codes
                mirror_pool = mirror_codes
                probe = packed_codes[len(packed_codes) // 2]
                r_probe = mirror_codes[len(mirror_codes) // 2]
                assert compare_many(packed_codes, probe) == ref.compare_many(
                    mirror_codes, r_probe
                )
        else:  # pragma: no cover - strategy only emits the ops above
            raise ValueError(f"unknown differential op {op!r}")


def _dump_failure(program: list[dict], error: BaseException) -> Path:
    path = Path(os.environ.get(ARTIFACT_ENV, ARTIFACT_DEFAULT))
    path.write_text(
        json.dumps(
            {
                "note": (
                    "packed vs reference codec divergence; replay with "
                    "tests.core.test_codec_differential.replay_program"
                ),
                "error": repr(error),
                "program": program,
            },
            indent=2,
        )
        + "\n"
    )
    return path


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

bits_text = st.text(alphabet="01", min_size=0, max_size=24)
index = st.integers(min_value=0, max_value=63)

op_strategy = st.one_of(
    st.fixed_dictionaries({"op": st.just("push"), "bits": bits_text}),
    st.fixed_dictionaries(
        {"op": st.just("concat"), "a": index, "b": index}
    ),
    st.fixed_dictionaries(
        {"op": st.just("slice"), "s": index, "lo": index, "hi": index}
    ),
    st.fixed_dictionaries(
        {"op": st.just("compare"), "a": index, "b": index}
    ),
    st.fixed_dictionaries(
        {
            "op": st.just("encode_run"),
            "count": st.integers(min_value=0, max_value=120),
            "endpoints": st.one_of(
                st.none(), st.tuples(index, index).map(list)
            ),
        }
    ),
)


class TestDifferentialPrograms:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(op_strategy, min_size=1, max_size=30))
    def test_random_programs_agree(self, program):
        try:
            replay_program(program)
        except AssertionError as error:
            artifact = _dump_failure(program, error)
            raise AssertionError(
                f"codec divergence; failing program written to {artifact}"
            ) from error

    def test_replay_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown differential op"):
            replay_program([{"op": "frobnicate"}])

    def test_failure_dump_is_replayable_json(self, tmp_path, monkeypatch):
        """The artifact a CI failure uploads must round-trip to replay."""
        monkeypatch.setenv(ARTIFACT_ENV, str(tmp_path / "failure.json"))
        program = [{"op": "push", "bits": "0101"}]
        artifact = _dump_failure(program, AssertionError("synthetic"))
        payload = json.loads(artifact.read_text())
        replay_program(payload["program"])  # must not raise


# ---------------------------------------------------------------------------
# hash / equality regressions (leading zeros are significant)
# ---------------------------------------------------------------------------

class TestHashEqualityContract:
    def test_leading_zeros_distinct_packed(self):
        zero1 = BitString.from_str("0")
        zero2 = BitString.from_str("00")
        assert zero1 != zero2
        assert hash(zero1) != hash(zero2)
        assert zero1.bitstring_key == (0, 1)
        assert zero2.bitstring_key == (0, 2)

    def test_leading_zeros_distinct_reference(self):
        zero1 = ref.BitStringRef.from_str("0")
        zero2 = ref.BitStringRef.from_str("00")
        assert zero1 != zero2
        assert hash(zero1) != hash(zero2)

    @pytest.mark.parametrize(
        "pattern", ["", "0", "00", "1", "01", "10", "0010", "1" * 40]
    )
    def test_cross_implementation_equality_and_hash(self, pattern):
        packed = BitString.from_str(pattern)
        mirror = ref.BitStringRef.from_str(pattern)
        assert packed == mirror
        assert mirror == packed
        assert hash(packed) == hash(mirror)
        # ...and a dict keyed by one form finds the other.
        assert {packed: "x"}[mirror] == "x"

    def test_cross_implementation_inequality(self):
        assert BitString.from_str("0") != ref.BitStringRef.from_str("00")
        assert ref.BitStringRef.from_str("0") != BitString.from_str("00")

    @settings(max_examples=60, deadline=None)
    @given(bits_text)
    def test_hash_agreement_property(self, pattern):
        packed = BitString.from_str(pattern)
        mirror = ref.BitStringRef.from_str(pattern)
        assert packed == mirror and hash(packed) == hash(mirror)


class TestStrContractParity:
    """Both codecs must enforce the PR-7 str-ordering TypeError."""

    @pytest.mark.parametrize("impl", [BitString, ref.BitStringRef])
    def test_ordering_against_str_raises(self, impl):
        code = impl.from_str("101")
        for expr in (
            lambda: code < "1",
            lambda: code <= "1",
            lambda: code > "1",
            lambda: code >= "1",
        ):
            with pytest.raises(TypeError, match=r"BitString\.from_str"):
                expr()

    @pytest.mark.parametrize("impl", [BitString, ref.BitStringRef])
    def test_concat_coerces_str(self, impl):
        assert (impl.from_str("10") + "1").to01() == "101"

    @pytest.mark.parametrize("impl", [BitString, ref.BitStringRef])
    def test_eq_against_str_is_false(self, impl):
        assert (impl.from_str("101") == "101") is False
