"""Section 4.2 size analysis: formulas vs exact counts (experiment E2)."""

from __future__ import annotations

import math

import pytest

from repro.core.cdbs import vcdbs_encode
from repro.core.sizes import (
    SizeReport,
    fbinary_total_bits_exact,
    fbinary_total_bits_formula,
    length_field_bits,
    length_field_total_bits_exact,
    measured_total_bits,
    vbinary_raw_bits_exact,
    vbinary_raw_bits_formula,
    vbinary_total_bits_formula,
    vcdbs_raw_bits_exact,
)


class TestExactCounts:
    def test_example_4_1_raw_64(self):
        assert vbinary_raw_bits_exact(18) == 64
        assert vcdbs_raw_bits_exact(18) == 64

    def test_example_4_2_total_118(self):
        # 3 bits of length field per code: 3*18 + 64 = 118.
        assert length_field_bits(18) == 3
        assert vbinary_raw_bits_exact(18) + length_field_total_bits_exact(18) == 118

    def test_small_counts(self):
        assert vbinary_raw_bits_exact(1) == 1
        assert vbinary_raw_bits_exact(2) == 3
        assert vbinary_raw_bits_exact(3) == 5

    @pytest.mark.parametrize("count", [1, 2, 10, 100, 1000])
    def test_raw_matches_bit_lengths(self, count):
        assert vbinary_raw_bits_exact(count) == sum(
            i.bit_length() for i in range(1, count + 1)
        )

    def test_fbinary_total(self):
        # 18 codes of 5 bits plus one 3-bit width field.
        assert fbinary_total_bits_exact(18) == 18 * 5 + 3

    def test_rejects_non_positive(self):
        for func in (
            vbinary_raw_bits_exact,
            fbinary_total_bits_exact,
            length_field_bits,
        ):
            with pytest.raises(ValueError):
                func(0)


class TestFormulaAgreement:
    """Paper formulas (ceilings dropped) track exact counts closely at
    the N = 2^(n+1) - 1 points they were derived for."""

    @pytest.mark.parametrize("exponent", [3, 5, 8, 10, 14])
    def test_formula_1_exact_at_powers(self, exponent):
        count = (1 << exponent) - 1
        assert vbinary_raw_bits_formula(count) == pytest.approx(
            vbinary_raw_bits_exact(count), rel=1e-9
        )

    @pytest.mark.parametrize("count", [100, 1000, 10_000])
    def test_formula_1_within_bound(self, count):
        # Between the exact points the smooth formula is within N bits.
        assert abs(
            vbinary_raw_bits_formula(count) - vbinary_raw_bits_exact(count)
        ) <= count

    @pytest.mark.parametrize("count", [64, 256, 1024])
    def test_formula_5_tracks_fbinary(self, count):
        exact = fbinary_total_bits_exact(count)
        formula = fbinary_total_bits_formula(count)
        assert abs(formula - exact) / exact < 0.2

    def test_formula_3_exceeds_formula_2(self):
        # Length fields only add bits.
        for count in (16, 256, 4096):
            assert vbinary_total_bits_formula(count) > vbinary_raw_bits_formula(count)


class TestMeasured:
    def test_measured_no_field(self):
        codes = vcdbs_encode(18)
        assert measured_total_bits(codes, with_length_field=False) == 64

    def test_measured_with_field(self):
        codes = vcdbs_encode(18)
        assert measured_total_bits(codes, with_length_field=True) == 118

    def test_measured_empty(self):
        assert measured_total_bits([], with_length_field=True) == 0

    @pytest.mark.parametrize("count", [16, 255, 1024])
    def test_size_report_consistency(self, count):
        report = SizeReport.for_count(count)
        assert report.vcdbs_raw_measured == report.vbinary_raw_exact
        assert report.vbinary_total_exact >= report.vbinary_raw_exact
        assert report.count == count

    def test_vcdbs_never_beats_entropy(self):
        # Sanity: no encoding of N distinct codes uses < N-1 bits total
        # comparisons aside; CDBS meets the binary bound exactly.
        report = SizeReport.for_count(512)
        assert report.vcdbs_raw_measured >= 512 * math.floor(math.log2(512)) - 512
