"""Unit and property tests for BitString (Definition 3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitstring import EMPTY, BitString

bitstrings = st.text(alphabet="01", max_size=40).map(BitString.from_str)
nonempty_bitstrings = st.text(alphabet="01", min_size=1, max_size=40).map(
    BitString.from_str
)


class TestConstruction:
    def test_empty(self):
        assert len(EMPTY) == 0
        assert EMPTY.to01() == ""
        assert not EMPTY

    def test_from_str(self):
        assert BitString.from_str("0011").to01() == "0011"

    def test_from_str_preserves_leading_zeros(self):
        assert len(BitString.from_str("0001")) == 4

    def test_from_str_rejects_non_binary(self):
        with pytest.raises(ValueError):
            BitString.from_str("012")

    def test_from_bits(self):
        assert BitString.from_bits([0, 1, 1]).to01() == "011"

    def test_from_bits_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            BitString.from_bits([0, 2])

    def test_from_int_binary_matches_table1(self):
        # V-Binary column of Table 1.
        expected = ["1", "10", "11", "100", "101", "110", "111", "1000"]
        got = [BitString.from_int_binary(i).to01() for i in range(1, 9)]
        assert got == expected

    def test_from_int_binary_rejects_zero(self):
        with pytest.raises(ValueError):
            BitString.from_int_binary(0)

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            BitString(4, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BitString(-1, 4)
        with pytest.raises(ValueError):
            BitString(0, -1)


class TestLexicographicOrder:
    def test_example_3_1_bit_difference(self):
        # "0011" < "01" because the 2nd bit differs.
        assert BitString.from_str("0011") < BitString.from_str("01")

    def test_example_3_1_prefix(self):
        # "01" < "0101" because "01" is a prefix.
        assert BitString.from_str("01") < BitString.from_str("0101")

    def test_example_3_3_zero_prefix(self):
        assert BitString.from_str("0") < BitString.from_str("00")

    def test_equal(self):
        assert BitString.from_str("101") == BitString.from_str("101")

    def test_not_equal_different_length(self):
        assert BitString.from_str("10") != BitString.from_str("100")

    def test_empty_smallest(self):
        assert EMPTY < BitString.from_str("0")
        assert EMPTY < BitString.from_str("1")

    def test_total_ordering_helpers(self):
        a, b = BitString.from_str("01"), BitString.from_str("10")
        assert a <= b and b >= a and a != b

    @given(bitstrings, bitstrings)
    def test_order_matches_string_order(self, a, b):
        # '0' < '1' in ASCII, so plain text comparison realises
        # Definition 3.1 including the prefix rule.
        assert (a < b) == (a.to01() < b.to01())

    @given(bitstrings, bitstrings, bitstrings)
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(bitstrings, bitstrings)
    def test_antisymmetry(self, a, b):
        assert not (a < b and b < a)


class TestConcat:
    def test_concat(self):
        assert (BitString.from_str("00") + BitString.from_str("11")).to01() == "0011"

    def test_concat_str(self):
        assert (BitString.from_str("0011") + "1").to01() == "00111"

    def test_concat_empty(self):
        a = BitString.from_str("101")
        assert (a + EMPTY) == a
        assert (EMPTY + a) == a

    @given(bitstrings, bitstrings)
    def test_concat_length(self, a, b):
        assert len(a + b) == len(a) + len(b)

    @given(bitstrings, bitstrings)
    def test_concat_text(self, a, b):
        assert (a + b).to01() == a.to01() + b.to01()


class TestAccessors:
    def test_indexing(self):
        bits = BitString.from_str("0110")
        assert [bits[i] for i in range(4)] == [0, 1, 1, 0]

    def test_negative_indexing(self):
        assert BitString.from_str("011")[-1] == 1

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            BitString.from_str("01")[2]

    def test_slice(self):
        assert BitString.from_str("01101")[1:4].to01() == "110"

    def test_slice_empty(self):
        assert BitString.from_str("01")[1:1] == EMPTY

    def test_slice_with_step_rejected(self):
        with pytest.raises(ValueError):
            BitString.from_str("0101")[::2]

    def test_iter(self):
        assert list(BitString.from_str("101")) == [1, 0, 1]

    def test_ends_with_one(self):
        assert BitString.from_str("01").ends_with_one()
        assert not BitString.from_str("10").ends_with_one()
        assert not EMPTY.ends_with_one()

    def test_is_prefix_of(self):
        a, b = BitString.from_str("01"), BitString.from_str("0101")
        assert a.is_prefix_of(b)
        assert not b.is_prefix_of(a)
        assert a.is_prefix_of(a)
        assert EMPTY.is_prefix_of(a)

    def test_common_prefix_length(self):
        a, b = BitString.from_str("0011"), BitString.from_str("01")
        assert a.common_prefix_length(b) == 1
        assert a.common_prefix_length(a) == 4

    @given(bitstrings, bitstrings)
    def test_common_prefix_is_prefix(self, a, b):
        k = a.common_prefix_length(b)
        assert a[:k] == b[:k]
        if k < min(len(a), len(b)):
            assert a[k] != b[k]

    def test_hashable(self):
        assert len({BitString.from_str("01"), BitString.from_str("01")}) == 1

    def test_value(self):
        assert BitString.from_str("0101").value == 5


class TestDerivation:
    def test_append_bit(self):
        assert BitString.from_str("01").append_bit(1).to01() == "011"

    def test_append_bad_bit(self):
        with pytest.raises(ValueError):
            BitString.from_str("01").append_bit(2)

    def test_drop_last(self):
        assert BitString.from_str("011").drop_last().to01() == "01"

    def test_drop_last_empty(self):
        with pytest.raises(ValueError):
            EMPTY.drop_last()

    def test_pad_right(self):
        assert BitString.from_str("01").pad_right(4).to01() == "0100"

    def test_pad_right_too_small(self):
        with pytest.raises(ValueError):
            BitString.from_str("0101").pad_right(2)

    def test_pad_left(self):
        assert BitString.from_str("11").pad_left(5).to01() == "00011"

    def test_strip_trailing_zeros(self):
        assert BitString.from_str("01100").strip_trailing_zeros().to01() == "011"

    def test_strip_all_zeros(self):
        assert BitString.from_str("000").strip_trailing_zeros() == EMPTY

    @given(nonempty_bitstrings, st.integers(min_value=0, max_value=8))
    def test_pad_then_strip_roundtrip(self, code, extra):
        if not code.ends_with_one():
            code = code.append_bit(1)
        padded = code.pad_right(len(code) + extra)
        assert padded.strip_trailing_zeros() == code

    @given(nonempty_bitstrings)
    def test_pad_right_preserves_order_for_one_terminated(self, code):
        # F-CDBS relies on right-padding not disturbing order of codes
        # that end with "1".
        if not code.ends_with_one():
            code = code.append_bit(1)
        wider = code.pad_right(len(code) + 3)
        other = code + "1"
        assert (code < other) == (wider < other.pad_right(len(other) + 3))


class TestStorage:
    def test_to_bytes_empty(self):
        assert EMPTY.to_bytes() == b""

    def test_to_bytes_alignment(self):
        assert BitString.from_str("1").to_bytes() == b"\x80"
        assert BitString.from_str("00000001").to_bytes() == b"\x01"

    def test_to_bytes_multibyte(self):
        assert BitString.from_str("111111111").to_bytes() == b"\xff\x80"

    def test_storage_bits(self):
        assert BitString.from_str("0101").storage_bits() == 4

    def test_repr_and_str(self):
        code = BitString.from_str("011")
        assert "011" in repr(code)
        assert str(code) == "011"
