"""OrderKeyFactory: the Property 5.1 public API."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orderkeys import OrderKey, OrderKeyFactory
from repro.errors import InvalidCodeError, LengthFieldOverflow


@pytest.fixture(params=["cdbs", "qed"])
def factory(request) -> OrderKeyFactory:
    return OrderKeyFactory(request.param)


class TestFactoryBasics:
    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            OrderKeyFactory("dewey")

    def test_initial_empty(self, factory):
        assert factory.initial(0) == []

    def test_initial_negative(self, factory):
        with pytest.raises(ValueError):
            factory.initial(-1)

    def test_initial_sorted(self, factory):
        keys = factory.initial(50)
        assert len(keys) == 50
        assert factory.validate_sorted(keys)

    def test_cdbs_initial_matches_example_5_1(self):
        # Four children get 001, 01, 1, 11 (Example 5.1).
        keys = OrderKeyFactory("cdbs").initial(4)
        assert [str(k) for k in keys] == ["001", "01", "1", "11"]

    def test_between(self, factory):
        a, b = factory.initial(2)
        middle = factory.between(a, b)
        assert a < middle < b

    def test_before_after(self, factory):
        (key,) = factory.initial(1)
        assert factory.before(key) < key < factory.after(key)

    def test_first_key(self, factory):
        first = factory.between(None, None)
        assert isinstance(first, OrderKey)

    def test_run_between(self, factory):
        a, b = factory.initial(2)
        run = factory.run_between(a, b, 10)
        chain = [a, *run, b]
        assert all(x < y for x, y in zip(chain, chain[1:]))

    def test_run_between_zero(self, factory):
        a, b = factory.initial(2)
        assert factory.run_between(a, b, 0) == []

    def test_run_between_negative(self, factory):
        a, b = factory.initial(2)
        with pytest.raises(ValueError):
            factory.run_between(a, b, -2)

    def test_run_between_open_ends(self, factory):
        run = factory.run_between(None, None, 25)
        assert factory.validate_sorted(run)


class TestKeySemantics:
    def test_cross_backend_comparison_rejected(self):
        cdbs_key = OrderKeyFactory("cdbs").initial(1)[0]
        qed_key = OrderKeyFactory("qed").initial(1)[0]
        with pytest.raises(TypeError):
            _ = cdbs_key < qed_key

    def test_comparison_with_non_key_rejected(self):
        key = OrderKeyFactory("cdbs").initial(1)[0]
        with pytest.raises(TypeError):
            _ = key < "1"

    def test_equality_and_hash(self, factory):
        a, b = factory.initial(2)
        assert a == factory.initial(2)[0]
        assert a != b
        assert len({a, factory.initial(2)[0]}) == 1

    def test_equality_with_other_type(self, factory):
        assert factory.initial(1)[0] != object()

    def test_repr(self, factory):
        assert factory.backend in repr(factory.initial(1)[0])

    def test_storage_bits(self):
        # V-CDBS of 1..3 is "01", "1", "11".
        cdbs = OrderKeyFactory("cdbs").initial(3)
        assert [k.storage_bits for k in cdbs] == [2, 1, 2]
        qed = OrderKeyFactory("qed").initial(1)
        assert qed[0].storage_bits == 2

    def test_parse_roundtrip(self, factory):
        for key in factory.initial(10):
            assert factory.parse(str(key)) == key

    def test_parse_rejects_invalid_cdbs(self):
        with pytest.raises(InvalidCodeError):
            OrderKeyFactory("cdbs").parse("10")  # ends with 0

    def test_parse_rejects_invalid_qed(self):
        with pytest.raises(InvalidCodeError):
            OrderKeyFactory("qed").parse("21")

    def test_foreign_key_rejected(self):
        qed_key = OrderKeyFactory("qed").initial(1)[0]
        with pytest.raises(TypeError):
            OrderKeyFactory("cdbs").after(qed_key)

    def test_string_order_matches_key_order(self, factory):
        """Persisting str(key) in any bytewise-ordered store is safe."""
        keys = factory.initial(64)
        texts = [str(k) for k in keys]
        assert texts == sorted(texts)


class TestOverflowBehaviour:
    def test_cdbs_overflows_under_skew(self):
        factory = OrderKeyFactory("cdbs", max_code_bits=16)
        left, right = factory.initial(2)
        with pytest.raises(LengthFieldOverflow):
            for _ in range(100):
                right = factory.between(left, right)

    def test_cdbs_unbounded_field(self):
        factory = OrderKeyFactory("cdbs", max_code_bits=None)
        left, right = factory.initial(2)
        for _ in range(300):
            right = factory.between(left, right)
        assert left < right

    def test_qed_never_overflows(self):
        factory = OrderKeyFactory("qed")
        left, right = factory.initial(2)
        for _ in range(300):
            right = factory.between(left, right)
        assert left < right


class TestPropertyBased:
    @settings(max_examples=40)
    @given(
        st.sampled_from(["cdbs", "qed"]),
        st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=80),
    )
    def test_arbitrary_insertions_stay_sorted(self, backend, positions):
        factory = OrderKeyFactory(backend, max_code_bits=None)
        keys: list[OrderKey] = []
        for raw in positions:
            index = raw % (len(keys) + 1)
            left = keys[index - 1] if index > 0 else None
            right = keys[index] if index < len(keys) else None
            keys.insert(index, factory.between(left, right))
        assert factory.validate_sorted(keys)
        texts = [str(k) for k in keys]
        assert texts == sorted(texts)
