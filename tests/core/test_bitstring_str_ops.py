"""BitString mixed-type operators: '+' coerces, ordering refuses loudly.

Regression tests for the operator inconsistency: ``__add__`` accepted
raw ``'0'``/``'1'`` text while ``code < "0110"`` surfaced only
``@total_ordering``'s opaque ``TypeError``.  The resolution keeps
concatenation convenient and makes every ordering comparison against a
``str`` raise a message that names the fix (``BitString.from_str``),
on both operand orders and through every derived operator.
"""

from __future__ import annotations

import pytest

from repro.core.bitstring import BitString


@pytest.fixture
def code():
    return BitString.from_str("0110")


class TestConcatenationStillCoerces:
    def test_add_accepts_binary_text(self, code):
        assert (code + "01").to01() == "011001"

    def test_add_rejects_non_binary_text(self, code):
        with pytest.raises(ValueError, match="not a binary string"):
            code + "21"


class TestOrderingRefusesStrings:
    @pytest.mark.parametrize(
        "compare",
        [
            lambda a, b: a < b,
            lambda a, b: a <= b,
            lambda a, b: a > b,
            lambda a, b: a >= b,
        ],
        ids=["lt", "le", "gt", "ge"],
    )
    def test_every_ordering_operator_names_the_fix(self, code, compare):
        with pytest.raises(TypeError, match=r"BitString\.from_str"):
            compare(code, "0110")

    @pytest.mark.parametrize(
        "compare",
        [
            lambda a, b: b < a,
            lambda a, b: b <= a,
            lambda a, b: b > a,
            lambda a, b: b >= a,
        ],
        ids=["lt", "le", "gt", "ge"],
    )
    def test_reflected_operand_order_is_also_loud(self, code, compare):
        # str's own comparison returns NotImplemented, so Python falls
        # back to BitString's reflected slot — same clear message.
        with pytest.raises(TypeError, match=r"BitString\.from_str"):
            compare(code, "0110")

    def test_sorting_a_mixed_list_fails_loudly(self, code):
        with pytest.raises(TypeError, match=r"BitString\.from_str"):
            sorted([code, "0110"])

    def test_long_operand_is_truncated_in_the_message(self, code):
        with pytest.raises(TypeError) as excinfo:
            code < "01" * 100
        assert len(str(excinfo.value)) < 250


class TestEqualityContractUnchanged:
    def test_equality_with_text_is_false_not_an_error(self, code):
        assert not (code == "0110")
        assert code != "0110"

    def test_hash_eq_contract_holds_between_bitstrings(self, code):
        twin = BitString.from_str("0110")
        assert code == twin
        assert hash(code) == hash(twin)

    def test_bitstring_ordering_still_works(self, code):
        assert code < BitString.from_str("0111")
        assert BitString.from_str("011") < code  # prefix is smaller
