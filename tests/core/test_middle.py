"""Algorithm 1 (AssignMiddleBinaryString): Theorem 3.1 and Corollary 3.3."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitstring import EMPTY, BitString
from repro.core.middle import (
    assign_middle_binary_string,
    assign_middle_pair,
    assign_middle_run,
)
from repro.errors import InvalidCodeError, NotOrderedError


def bits(text: str) -> BitString:
    return BitString.from_str(text)


# Valid CDBS-style codes: end with "1".
codes = st.text(alphabet="01", max_size=24).map(
    lambda t: BitString.from_str(t + "1")
)


class TestCases:
    def test_case1_example_3_2(self):
        # size("0011") >= size("01") -> concatenate "1".
        assert assign_middle_binary_string(bits("0011"), bits("01")) == bits("00111")

    def test_case2_example_3_2(self):
        # size("01") < size("0101") -> last "1" becomes "01".
        assert assign_middle_binary_string(bits("01"), bits("0101")) == bits("01001")

    def test_both_empty(self):
        assert assign_middle_binary_string(EMPTY, EMPTY) == bits("1")

    def test_left_empty(self):
        # size(empty) < size("1"): case 2.
        assert assign_middle_binary_string(EMPTY, bits("1")) == bits("01")

    def test_right_empty(self):
        # size("1") >= size(empty): case 1.
        assert assign_middle_binary_string(bits("1"), EMPTY) == bits("11")

    def test_equal_sizes(self):
        assert assign_middle_binary_string(bits("01"), bits("11")) == bits("011")


class TestValidation:
    def test_rejects_left_not_ending_one(self):
        with pytest.raises(InvalidCodeError):
            assign_middle_binary_string(bits("10"), bits("11"))

    def test_rejects_right_not_ending_one(self):
        with pytest.raises(InvalidCodeError):
            assign_middle_binary_string(bits("01"), bits("10"))

    def test_rejects_unordered(self):
        with pytest.raises(NotOrderedError):
            assign_middle_binary_string(bits("11"), bits("01"))

    def test_rejects_equal(self):
        with pytest.raises(NotOrderedError):
            assign_middle_binary_string(bits("01"), bits("01"))


class TestTheorem31:
    """S_L < S_M < S_R for arbitrary valid inputs."""

    @given(codes, codes)
    def test_strictly_between(self, a, b):
        if a == b:
            return
        left, right = (a, b) if a < b else (b, a)
        middle = assign_middle_binary_string(left, right)
        assert left < middle < right

    @given(codes, codes)
    def test_lemma_3_2_ends_with_one(self, a, b):
        if a == b:
            return
        left, right = (a, b) if a < b else (b, a)
        assert assign_middle_binary_string(left, right).ends_with_one()

    @given(codes)
    def test_open_left(self, code):
        middle = assign_middle_binary_string(EMPTY, code)
        assert middle < code and middle.ends_with_one()

    @given(codes)
    def test_open_right(self, code):
        middle = assign_middle_binary_string(code, EMPTY)
        assert code < middle and middle.ends_with_one()


class TestCorollary33:
    def test_pair_ordered(self):
        m1, m2 = assign_middle_pair(bits("0011"), bits("01"))
        assert bits("0011") < m1 < m2 < bits("01")

    def test_paper_example_section_521(self):
        # Inserting two values between the codes of 4 and 5 in Table 1.
        m1, m2 = assign_middle_pair(bits("0011"), bits("01"))
        assert m1 == bits("00111")
        assert m2 == bits("001111")

    @given(codes, codes)
    def test_pair_property(self, a, b):
        if a == b:
            return
        left, right = (a, b) if a < b else (b, a)
        m1, m2 = assign_middle_pair(left, right)
        assert left < m1 < m2 < right
        assert m1.ends_with_one() and m2.ends_with_one()


class TestMiddleRun:
    def test_empty_run(self):
        assert assign_middle_run(bits("01"), bits("11"), 0) == []

    def test_negative_count(self):
        with pytest.raises(ValueError):
            assign_middle_run(bits("01"), bits("11"), -1)

    @given(codes, codes, st.integers(min_value=1, max_value=40))
    def test_run_ordered_and_bounded(self, a, b, count):
        if a == b:
            return
        left, right = (a, b) if a < b else (b, a)
        run = assign_middle_run(left, right, count)
        assert len(run) == count
        chain = [left, *run, right]
        assert all(x < y for x, y in zip(chain, chain[1:]))

    def test_run_is_balanced(self):
        # Balanced bisection keeps growth logarithmic: 63 codes into an
        # open gap must peak well below 63 bits.
        run = assign_middle_run(EMPTY, EMPTY, 63)
        assert max(len(code) for code in run) <= 7


class TestCompoundedInsertions:
    """Arbitrary insertion sequences never disturb existing codes."""

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=1_000_000), min_size=1, max_size=120))
    def test_random_insertion_positions(self, positions):
        ordered: list[BitString] = []
        for raw in positions:
            index = raw % (len(ordered) + 1)
            left = ordered[index - 1] if index > 0 else EMPTY
            right = ordered[index] if index < len(ordered) else EMPTY
            ordered.insert(index, assign_middle_binary_string(left, right))
            # The full list stays strictly sorted after EVERY insertion.
        assert all(a < b for a, b in zip(ordered, ordered[1:]))

    def test_skewed_growth_is_linear_in_inserts(self):
        # Cohen et al.'s lower bound: a fixed-place insertion stream must
        # grow some label to O(N); Algorithm 1 grows ~1 bit per insert.
        left, right = bits("01"), bits("1")
        sizes = []
        for _ in range(64):
            middle = assign_middle_binary_string(left, right)
            sizes.append(len(middle))
            right = middle  # keep inserting before `right`
        assert sizes[-1] <= len(bits("01")) + 2 * 64
        assert sizes == sorted(sizes)
