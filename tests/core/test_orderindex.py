"""OrderStatisticTree: the treap behind the O(log N) update path."""

from __future__ import annotations

import random

import pytest

from repro.core.orderindex import OrderStatisticTree


class TestConstruction:
    def test_empty(self):
        tree = OrderStatisticTree()
        assert len(tree) == 0
        assert list(tree) == []
        assert not tree
        assert tree.total_weight() == 0

    def test_bulk_build_preserves_order(self):
        items = list(range(100))
        tree = OrderStatisticTree(items)
        assert list(tree) == items
        assert len(tree) == 100

    def test_bulk_build_with_weights(self):
        tree = OrderStatisticTree(["a", "b", "c"], weights=[5, 7, 11])
        assert tree.total_weight() == 23
        assert tree.prefix_weight(0) == 0
        assert tree.prefix_weight(1) == 5
        assert tree.prefix_weight(2) == 12
        assert tree.prefix_weight(3) == 23

    def test_weights_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OrderStatisticTree(["a", "b"], weights=[1])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            OrderStatisticTree(["a"], weights=[-1])


class TestAccess:
    def test_getitem_and_negative(self):
        tree = OrderStatisticTree("abcdef")
        assert tree[0] == "a"
        assert tree[5] == "f"
        assert tree[-1] == "f"
        assert tree[-6] == "a"

    def test_getitem_out_of_range(self):
        tree = OrderStatisticTree("abc")
        with pytest.raises(IndexError):
            tree[3]
        with pytest.raises(IndexError):
            tree[-4]

    def test_slices(self):
        tree = OrderStatisticTree(range(10))
        assert tree[2:5] == [2, 3, 4]
        assert tree[:3] == [0, 1, 2]
        assert tree[7:] == [7, 8, 9]
        assert tree[::2] == [0, 2, 4, 6, 8]
        assert tree[::-1] == list(range(10))[::-1]

    def test_iter_from(self):
        tree = OrderStatisticTree(range(20))
        assert list(tree.iter_from(15)) == [15, 16, 17, 18, 19]
        assert list(tree.iter_from(20)) == []


class TestIdentity:
    def test_position_tracks_identity_not_equality(self):
        # Two equal-but-distinct lists: position must distinguish them.
        first, second = [1], [1]
        tree = OrderStatisticTree([first, second], track_identity=True)
        assert tree.position(first) == 0
        assert tree.position(second) == 1
        assert first in tree

    def test_position_missing_item_raises(self):
        tree = OrderStatisticTree(["a"], track_identity=True)
        with pytest.raises(ValueError):
            tree.position("missing")

    def test_index_alias(self):
        tree = OrderStatisticTree(["a", "b"], track_identity=True)
        assert tree.index("b") == 1

    def test_contains_requires_tracking(self):
        tree = OrderStatisticTree(["a"])
        with pytest.raises(TypeError):
            "a" in tree

    def test_deleted_item_forgotten(self):
        items = [object() for _ in range(5)]
        tree = OrderStatisticTree(items, track_identity=True)
        tree.delete_run(1, 2)
        assert items[1] not in tree
        assert tree.position(items[3]) == 1


class TestMutation:
    def test_insert_run_middle(self):
        tree = OrderStatisticTree([0, 1, 2, 3])
        tree.insert_run(2, ["x", "y"])
        assert list(tree) == [0, 1, "x", "y", 2, 3]

    def test_insert_run_with_weights_shifts_offsets(self):
        tree = OrderStatisticTree([10, 10], weights=[10, 10])
        tree.insert_run(1, [3], weights=[3])
        assert tree.prefix_weight(2) == 13
        assert tree.total_weight() == 23

    def test_insert_position_out_of_range(self):
        tree = OrderStatisticTree([1])
        with pytest.raises(IndexError):
            tree.insert_run(5, ["x"])

    def test_delete_run_returns_removed(self):
        tree = OrderStatisticTree("abcdef")
        removed = tree.delete_run(1, 3)
        assert removed == ["b", "c", "d"]
        assert list(tree) == ["a", "e", "f"]

    def test_delete_run_out_of_range(self):
        tree = OrderStatisticTree("abc")
        with pytest.raises(IndexError):
            tree.delete_run(1, 5)


class TestModelBasedChurn:
    """The treap must agree with a plain list under random churn.

    This is the property the ISSUE demands: the order index and the
    naive ``list``/``list.index`` oracle stay interchangeable through
    arbitrary insert/delete/reposition programs.
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_list_oracle(self, seed):
        rng = random.Random(seed)
        oracle: list[object] = []
        tree = OrderStatisticTree(track_identity=True)
        for step in range(400):
            action = rng.random()
            if action < 0.5 or not oracle:
                position = rng.randint(0, len(oracle))
                run = [object() for _ in range(rng.randint(1, 4))]
                oracle[position:position] = run
                tree.insert_run(position, run)
            elif action < 0.8:
                position = rng.randrange(len(oracle))
                count = min(rng.randint(1, 3), len(oracle) - position)
                expected = oracle[position : position + count]
                del oracle[position : position + count]
                assert tree.delete_run(position, count) == expected
            else:
                # Move: delete a run, reinsert elsewhere (the engine's
                # move_before decomposition).
                position = rng.randrange(len(oracle))
                moved = oracle.pop(position)
                tree.delete_run(position, 1)
                destination = rng.randint(0, len(oracle))
                oracle.insert(destination, moved)
                tree.insert_run(destination, [moved])
            if step % 20 == 0:
                assert list(tree) == oracle
                for i in rng.sample(range(len(oracle)), min(5, len(oracle))):
                    assert tree.position(oracle[i]) == i
                    assert tree[i] is oracle[i]
        assert list(tree) == oracle
        assert len(tree) == len(oracle)

    def test_weighted_churn_prefix_sums(self):
        rng = random.Random(99)
        sizes: list[int] = []
        tree = OrderStatisticTree()
        for _ in range(300):
            if rng.random() < 0.6 or not sizes:
                position = rng.randint(0, len(sizes))
                run = [rng.randint(0, 50) for _ in range(rng.randint(1, 3))]
                sizes[position:position] = run
                tree.insert_run(position, run, weights=run)
            else:
                position = rng.randrange(len(sizes))
                del sizes[position]
                tree.delete_run(position, 1)
        assert tree.total_weight() == sum(sizes)
        for position in range(0, len(sizes) + 1, 7):
            assert tree.prefix_weight(position) == sum(sizes[:position])
