"""QED quaternary encoding (Section 6): order, insertion, no overflow."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qed import (
    assign_middle_quaternary,
    assign_quaternary_pair,
    qed_code_bits,
    qed_encode,
    qed_stored_bits,
    validate_qed_code,
)
from repro.errors import InvalidCodeError, NotOrderedError

# Valid QED codes: symbols 1/2/3, terminated by 2 or 3.
qed_codes = st.tuples(
    st.text(alphabet="123", max_size=12), st.sampled_from("23")
).map(lambda pair: pair[0] + pair[1])


class TestValidation:
    def test_valid(self):
        validate_qed_code("2")
        validate_qed_code("132")
        validate_qed_code("3")

    def test_empty_rejected(self):
        with pytest.raises(InvalidCodeError):
            validate_qed_code("")

    def test_empty_allowed_flag(self):
        validate_qed_code("", allow_empty=True)

    def test_separator_symbol_rejected(self):
        with pytest.raises(InvalidCodeError):
            validate_qed_code("102")

    def test_bad_terminator(self):
        with pytest.raises(InvalidCodeError):
            validate_qed_code("21")

    def test_non_quaternary(self):
        with pytest.raises(InvalidCodeError):
            validate_qed_code("2a3")


class TestBulkEncoding:
    def test_known_small_table(self):
        # The canonical QED code sequence from the CIKM'05 paper.
        assert qed_encode(18) == [
            "112", "12", "122", "13", "132", "2", "212", "22", "222",
            "223", "23", "232", "3", "312", "32", "322", "33", "332",
        ]

    def test_single(self):
        assert qed_encode(1) == ["2"]

    def test_two(self):
        assert qed_encode(2) == ["2", "3"]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            qed_encode(0)

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 9, 27, 28, 100, 729, 1000])
    def test_sorted_and_valid(self, count):
        codes = qed_encode(count)
        assert len(codes) == count
        assert all(a < b for a, b in zip(codes, codes[1:]))
        for code in codes:
            validate_qed_code(code)

    def test_length_grows_with_log3(self):
        # Ternary recursion: 3^k codes need about k symbols.
        codes = qed_encode(729)
        assert max(len(c) for c in codes) <= 9


class TestInsertion:
    def test_between_examples(self):
        assert assign_middle_quaternary("", "") == "2"
        assert assign_middle_quaternary("2", "") == "3"
        assert assign_middle_quaternary("", "2") == "12"
        assert assign_middle_quaternary("2", "3") == "22"

    def test_deletion_gap_regression(self):
        # After deletions the pair ("2", "23") can become adjacent; the
        # naive tail-shrink rule would return "2" itself.
        middle = assign_middle_quaternary("2", "23")
        assert "2" < middle < "23"

    def test_rejects_unordered(self):
        with pytest.raises(NotOrderedError):
            assign_middle_quaternary("3", "2")

    def test_rejects_invalid(self):
        with pytest.raises(InvalidCodeError):
            assign_middle_quaternary("20", "3")

    @given(qed_codes, qed_codes)
    def test_strictly_between(self, a, b):
        if a == b:
            return
        left, right = (a, b) if a < b else (b, a)
        middle = assign_middle_quaternary(left, right)
        assert left < middle < right
        validate_qed_code(middle)

    @given(qed_codes)
    def test_open_ends(self, code):
        before = assign_middle_quaternary("", code)
        after = assign_middle_quaternary(code, "")
        assert before < code < after
        validate_qed_code(before)
        validate_qed_code(after)

    @given(qed_codes, qed_codes)
    def test_pair(self, a, b):
        if a == b:
            return
        left, right = (a, b) if a < b else (b, a)
        m1, m2 = assign_quaternary_pair(left, right)
        assert left < m1 < m2 < right

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=150))
    def test_never_overflows(self, positions):
        """QED absorbs arbitrary insertion sequences — no exception, no
        re-ordering, ever (the Section 6 claim)."""
        ordered: list[str] = []
        for raw in positions:
            index = raw % (len(ordered) + 1)
            left = ordered[index - 1] if index > 0 else ""
            right = ordered[index] if index < len(ordered) else ""
            ordered.insert(index, assign_middle_quaternary(left, right))
        assert all(a < b for a, b in zip(ordered, ordered[1:]))


class TestStorageBits:
    def test_code_bits(self):
        assert qed_code_bits("2") == 2
        assert qed_code_bits("132") == 6

    def test_stored_bits_includes_separator(self):
        assert qed_stored_bits("2") == 4
        assert qed_stored_bits("132") == 8

    def test_qed_larger_than_cdbs_but_close(self):
        """Figure 5's QED-vs-CDBS size relation: bigger, within ~2x."""
        from repro.core.cdbs import vcdbs_encode

        count = 1000
        qed_total = sum(qed_stored_bits(c) for c in qed_encode(count))
        cdbs_total = sum(len(c) + 4 for c in vcdbs_encode(count))
        assert cdbs_total < qed_total < 2 * cdbs_total
