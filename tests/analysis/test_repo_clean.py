"""The tier-1 guardrail: the repository's own tree must analyze clean.

This is the pytest entry point the ISSUE requires: every `pytest` run
re-checks the paper invariants over ``src/``, ``benchmarks/`` and
``examples/`` against the shipped baseline, so a refactor that breaks
Definition 3.1 hygiene or the layering DAG fails the suite immediately.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths, load_baseline

REPO_ROOT = Path(__file__).parents[2]
ANALYZED = [
    REPO_ROOT / name
    for name in ("src", "benchmarks", "examples")
    if (REPO_ROOT / name).exists()
]


def test_repository_tree_is_clean():
    result = analyze_paths(
        ANALYZED,
        baseline=load_baseline(REPO_ROOT / "analysis-baseline.json"),
        project_root=REPO_ROOT,
    )
    assert not result.findings, (
        "the repository violates its own invariants:\n"
        + "\n".join(
            f"  {f.path}:{f.line}: {f.rule} {f.message}"
            for f in result.findings
        )
    )


def test_analyzer_scans_the_whole_tree():
    result = analyze_paths(ANALYZED, project_root=REPO_ROOT)
    # The seed tree alone has ~90 Python files; a sudden drop means the
    # walker broke, which would let violations through silently.
    assert result.files_scanned >= 80
