"""Two-phase runner behavior: parallelism, cache, and hygiene checks."""

from __future__ import annotations

import json

import pytest

from repro.analysis import check_hygiene, run_analysis
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.cache import ExtractionCache, content_hash
from tests.analysis.test_effects_rules import (
    FIXTURES,
    RPR009TREE,
    RPR010TREE,
    RPR011TREE,
)

ALL_TREES = [RPR009TREE, RPR010TREE, RPR011TREE, FIXTURES / "calltree"]


def _snapshot(result):
    return [
        (f.path, f.line, f.col, f.rule, str(f.severity), f.message)
        for f in result.findings
    ]


class TestParallelDeterminism:
    def test_parallel_run_matches_serial_run_exactly(self):
        serial = run_analysis(ALL_TREES)
        parallel = run_analysis(ALL_TREES, jobs=2)
        assert _snapshot(parallel.result) == _snapshot(serial.result)
        assert parallel.result.suppressed == serial.result.suppressed
        assert parallel.result.files_scanned == serial.result.files_scanned

    def test_oversubscribed_pool_is_still_deterministic(self):
        serial = run_analysis(ALL_TREES)
        wide = run_analysis(ALL_TREES, jobs=8)
        assert _snapshot(wide.result) == _snapshot(serial.result)


class TestExtractionCache:
    def test_warm_run_reproduces_cold_findings(self, tmp_path):
        cache = tmp_path / "cache.json"
        cold = run_analysis(ALL_TREES, cache_path=cache)
        assert cache.exists()
        warm = run_analysis(ALL_TREES, cache_path=cache)
        assert _snapshot(warm.result) == _snapshot(cold.result)
        assert warm.result.suppressed == cold.result.suppressed

    def test_cache_is_invalidated_by_content_change(self, tmp_path):
        source = tmp_path / "src" / "repro" / "mod.py"
        source.parent.mkdir(parents=True)
        source.write_text("registry = {}\n")
        cache = tmp_path / "cache.json"
        first = run_analysis([source], cache_path=cache)
        assert len(first.result.findings) == 1
        source.write_text("REGISTRY = ()\n")
        second = run_analysis([source], cache_path=cache)
        assert second.result.findings == []

    def test_stale_signature_discards_the_cache(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache = ExtractionCache(cache_file, "v0.0:old-rules")
        cache.put("a.py", content_hash(b"x"), {"findings": [], "facts": None})
        cache.save()
        reopened = ExtractionCache(cache_file, "v9.9:new-rules")
        assert reopened.get("a.py", content_hash(b"x")) is None

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        run = run_analysis([RPR011TREE], cache_path=cache)
        assert len(run.result.findings) == 4


class TestHygiene:
    def test_clean_run_with_matching_waivers_has_no_issues(self):
        run = run_analysis([RPR009TREE])
        assert check_hygiene(run, Baseline([])) == []

    def test_stale_baseline_entry_is_reported(self):
        run = run_analysis([RPR009TREE])
        stale = Baseline(
            [BaselineEntry("RPR001", "src/never/was.py", "old waiver")]
        )
        issues = check_hygiene(run, stale)
        assert len(issues) == 1
        assert "stale baseline entry" in issues[0]

    def test_live_baseline_entry_is_not_stale(self):
        run = run_analysis([RPR009TREE])
        (finding,) = run.result.findings
        live = Baseline([BaselineEntry(finding.rule, finding.path, "known")])
        assert check_hygiene(run, live) == []

    def test_dead_suppression_is_reported(self, tmp_path):
        source = tmp_path / "src" / "repro" / "mod.py"
        source.parent.mkdir(parents=True)
        source.write_text(
            "VALUES = (1, 2)  # repro: allow-shared-state\n"
        )
        run = run_analysis([source])
        issues = check_hygiene(run, Baseline([]))
        assert len(issues) == 1
        assert "dead suppression" in issues[0]
        assert "allow-shared-state" in issues[0]

    def test_unknown_slug_is_reported(self, tmp_path):
        source = tmp_path / "src" / "repro" / "mod.py"
        source.parent.mkdir(parents=True)
        source.write_text("X = 1  # repro: allow-warp-drive\n")
        run = run_analysis([source])
        issues = check_hygiene(run, Baseline([]))
        assert any("unknown suppression slug" in i for i in issues)

    def test_cli_check_baseline_fails_on_dead_waivers(self, tmp_path):
        from repro.analysis.__main__ import main

        source = tmp_path / "src" / "repro" / "mod.py"
        source.parent.mkdir(parents=True)
        source.write_text(
            "VALUES = (1, 2)  # repro: allow-shared-state\n"
        )
        assert (
            main([str(source), "--no-baseline", "--check-baseline"]) == 1
        )
        assert main([str(source), "--no-baseline"]) == 0


class TestSarifReport:
    @pytest.fixture()
    def document(self):
        from repro.analysis import render_sarif

        run = run_analysis([RPR010TREE])
        return json.loads(render_sarif(run.result))

    def test_is_a_valid_sarif_2_1_0_skeleton(self, document):
        assert document["version"] == "2.1.0"
        (sarif_run,) = document["runs"]
        assert sarif_run["tool"]["driver"]["name"] == "repro.analysis"

    def test_every_registered_rule_has_metadata(self, document):
        from repro.analysis import all_rules

        (sarif_run,) = document["runs"]
        ids = {r["id"] for r in sarif_run["tool"]["driver"]["rules"]}
        assert {rule.id for rule in all_rules()} <= ids

    def test_results_carry_location_and_level(self, document):
        (sarif_run,) = document["runs"]
        results = sarif_run["results"]
        assert results, "fixture tree should produce findings"
        for entry in results:
            assert entry["ruleId"] == "RPR010"
            assert entry["level"] == "error"
            location = entry["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith(".py")
            # SARIF columns are 1-based; internal cols are 0-based.
            assert location["region"]["startColumn"] >= 1
