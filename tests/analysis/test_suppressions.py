"""Inline ``# repro: allow-<slug>`` suppression behaviour."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.suppressions import collect_suppressions

SCRIPTS = Path(__file__).parent / "fixtures" / "scripts"


class TestCommentParsing:
    def test_same_line_and_preceding_line(self):
        suppressions = collect_suppressions(
            [
                "x = 1  # repro: allow-raw-bits",
                "y = 2",
                "# repro: allow-layering",
                "import something",
            ]
        )
        assert suppressions.allows(1, "raw-bits")
        # A suppression also covers the line below it (lead-in comments).
        assert suppressions.allows(2, "raw-bits")
        assert not suppressions.allows(3, "raw-bits")
        assert suppressions.allows(3, "layering")
        assert suppressions.allows(4, "layering")
        assert not suppressions.allows(4, "raw-bits")

    def test_justification_text_after_slug_is_ignored(self):
        suppressions = collect_suppressions(
            ["code + '1'  # repro: allow-raw-bits — CKM label domain"]
        )
        assert suppressions.allows(1, "raw-bits")

    def test_multiple_slugs_on_one_line(self):
        suppressions = collect_suppressions(
            ["x  # repro: allow-raw-bits  # repro: allow-raw-code"]
        )
        assert suppressions.allows(1, "raw-bits")
        assert suppressions.allows(1, "raw-code")


class TestSuppressionFiltering:
    def test_suppressed_findings_are_counted_not_reported(self):
        result = analyze_paths(
            [SCRIPTS / "rpr001_clean.py"], rules=["RPR001"]
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_wrong_slug_does_not_suppress(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def f(code):\n"
            "    return code + '1'  # repro: allow-hygiene\n"
        )
        result = analyze_paths([bad], rules=["RPR001"])
        assert len(result.findings) == 1
        assert result.suppressed == 0
