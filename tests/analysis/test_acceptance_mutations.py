"""Acceptance guardrail: the analyzer must catch seeded regressions.

These tests copy the real ``src`` tree into a scratch ``src`` layout
(preserving library mode), seed the exact regressions the rules exist
for, and require a finding for every seeded site:

* deleting any undo-registration statement in ``labeling/base.py`` or
  ``storage/pager.py`` -> RPR009 on each now-unregistered function;
* reordering the WAL checkpoint write after the log truncate ->
  RPR010 on the reordered function.

If one of these passes silently, the whole effect engine is
decorative — keep them green.
"""

from __future__ import annotations

import ast
import shutil
from pathlib import Path

import pytest

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).parents[2]
MUTATED_FILES = ("repro/labeling/base.py", "repro/storage/pager.py")


@pytest.fixture()
def scratch_src(tmp_path):
    target = tmp_path / "src"
    shutil.copytree(REPO_ROOT / "src", target)
    return target


def _strip_record_statements(path: Path) -> list[str]:
    """Replace every ``*.record(...)`` statement with ``pass``.

    Returns the qualnames of the functions that contained one.
    """
    source = path.read_text()
    tree = ast.parse(source)
    lines = source.splitlines()
    touched: list[str] = []

    class Finder(ast.NodeVisitor):
        def __init__(self):
            self.stack: list[str] = []
            self.spans: list[tuple[int, int, int]] = []

        def visit_FunctionDef(self, node):
            self.stack.append(node.name)
            self.generic_visit(node)
            self.stack.pop()

        visit_AsyncFunctionDef = visit_FunctionDef

        def visit_Expr(self, node):
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "record"
            ):
                self.spans.append(
                    (node.lineno, node.end_lineno, node.col_offset)
                )
                if self.stack:
                    touched.append(self.stack[-1])

    finder = Finder()
    finder.visit(tree)
    assert finder.spans, f"no record statements found in {path}"
    for start, end, col in finder.spans:
        lines[start - 1] = " " * col + "pass"
        for lineno in range(start + 1, end + 1):
            lines[lineno - 1] = ""
    path.write_text("\n".join(lines) + "\n")
    return touched


def test_unmutated_copy_is_clean(scratch_src):
    result = analyze_paths([scratch_src], rules=["RPR009", "RPR010"])
    assert result.findings == []


def test_every_deleted_undo_registration_is_caught(scratch_src):
    stripped: dict[str, list[str]] = {}
    for rel in MUTATED_FILES:
        stripped[rel] = _strip_record_statements(scratch_src / rel)
    result = analyze_paths([scratch_src], rules=["RPR009"])
    findings_by_path: dict[str, str] = {}
    for finding in result.findings:
        assert finding.rule == "RPR009"
        findings_by_path.setdefault(finding.path, "")
        findings_by_path[finding.path] += " " + finding.message
    for rel, functions in stripped.items():
        messages = next(
            (
                text
                for path, text in findings_by_path.items()
                if path.endswith(rel)
            ),
            "",
        )
        # Every function that lost its registration must be named in
        # some finding on that file (directly or as an undo closure's
        # enclosing function).
        for name in set(functions):
            assert name in messages, (
                f"{rel}: deleting record() in {name} produced no RPR009"
            )


def test_checkpoint_reorder_is_caught(scratch_src):
    writer = scratch_src / "repro" / "wal" / "writer.py"
    source = writer.read_text()
    lines = source.splitlines()
    checkpoint = next(
        node
        for node in ast.walk(ast.parse(source))
        if isinstance(node, ast.FunctionDef) and node.name == "checkpoint"
    )
    body = range(checkpoint.lineno - 1, checkpoint.end_lineno)
    truncate_line = next(
        i
        for i in body
        if 'atomic_write_bytes(self.log_path, b"")' in lines[i]
    )
    bundle_line = next(
        i for i in body if "save_labeled(" in lines[i]
    )
    assert bundle_line < truncate_line, "seed expects write-then-truncate"
    # Move the truncate above the bundle write, leaving markers alone.
    moved = lines.pop(truncate_line)
    lines.insert(bundle_line, moved.strip().rjust(len(moved.strip()) + 8))
    writer.write_text("\n".join(lines) + "\n")
    result = analyze_paths([scratch_src], rules=["RPR010"])
    assert any(
        "truncates the log" in f.message
        and f.path.endswith("wal/writer.py")
        for f in result.findings
    ), "reordered checkpoint did not trigger RPR010"
