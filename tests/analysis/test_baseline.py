"""Baseline semantics, the CLI, and the shipped baseline's hygiene."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import AnalysisConfigError, analyze_paths, load_baseline
from repro.analysis.__main__ import main
from repro.analysis.baseline import write_baseline

HERE = Path(__file__).parent
SCRIPTS = HERE / "fixtures" / "scripts"
REPO_ROOT = HERE.parents[1]
VIOLATIONS = SCRIPTS / "rpr001_violations.py"


class TestBaselineMatching:
    def test_waives_by_rule_and_path(self, tmp_path):
        raw = analyze_paths([VIOLATIONS], rules=["RPR001"])
        assert raw.findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            baseline_path, raw.findings, load_baseline(baseline_path)
        )
        result = analyze_paths(
            [VIOLATIONS],
            rules=["RPR001"],
            baseline=load_baseline(baseline_path),
        )
        assert result.findings == []
        assert result.baselined == len(raw.findings)

    def test_does_not_waive_other_rules(self, tmp_path):
        raw = analyze_paths([VIOLATIONS], rules=["RPR001"])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            baseline_path, raw.findings, load_baseline(baseline_path)
        )
        other = analyze_paths(
            [SCRIPTS / "rpr002_violations.py"],
            rules=["RPR002"],
            baseline=load_baseline(baseline_path),
        )
        assert other.findings  # untouched by the RPR001 baseline

    def test_missing_file_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_malformed_file_raises_config_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(AnalysisConfigError):
            load_baseline(bad)

    def test_rewrite_preserves_justifications(self, tmp_path):
        raw = analyze_paths([VIOLATIONS], rules=["RPR001"])
        baseline_path = tmp_path / "baseline.json"
        first = write_baseline(
            baseline_path, raw.findings, load_baseline(baseline_path)
        )
        document = json.loads(baseline_path.read_text())
        document["entries"][0]["justification"] = "reviewed: legacy"
        baseline_path.write_text(json.dumps(document))
        second = write_baseline(
            baseline_path, raw.findings, load_baseline(baseline_path)
        )
        assert second.entries[0].justification == "reviewed: legacy"
        assert len(second) == len(first)


class TestShippedBaseline:
    """The repository's own baseline must stay empty or justified."""

    def test_empty_or_every_entry_justified(self):
        baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
        for entry in baseline.entries:
            assert entry.justification.strip(), (
                f"baseline entry {entry.rule} @ {entry.path} lacks a "
                f"justification"
            )
            assert "TODO" not in entry.justification, (
                f"baseline entry {entry.rule} @ {entry.path} still has "
                f"a placeholder justification"
            )


class TestCli:
    def test_exit_zero_on_clean_path(self, capsys):
        assert main([str(SCRIPTS / "rpr001_clean.py")]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, capsys):
        assert main([str(VIOLATIONS), "--rules", "RPR001"]) == 1
        assert "RPR001" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, capsys):
        assert main([str(VIOLATIONS), "--rules", "RPR999"]) == 2
        assert "configuration error" in capsys.readouterr().err

    def test_exit_two_on_nonexistent_path(self, tmp_path, capsys):
        # A typo'd path must not silently pass the lint in CI.
        assert main([str(tmp_path / "no_such_dir")]) == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_fail_on_error_ignores_warnings(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "warn_only.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(xs=[]):\n    return xs\n")
        assert main([str(bad)]) == 1
        assert main([str(bad), "--fail-on", "error"]) == 0
        assert main([str(bad), "--fail-on", "never"]) == 0

    def test_json_format_emits_json(self, capsys):
        assert main([str(VIOLATIONS), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["errors"] >= 1

    def test_list_rules_names_all_five(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
            assert rule_id in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        assert (
            main(
                [
                    str(VIOLATIONS),
                    "--rules",
                    "RPR001",
                    "--baseline",
                    str(baseline_path),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert baseline_path.exists()
        assert (
            main(
                [
                    str(VIOLATIONS),
                    "--rules",
                    "RPR001",
                    "--baseline",
                    str(baseline_path),
                ]
            )
            == 0
        )
