"""Reporter output: text shape and the JSON golden file."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import analyze_paths, render_json, render_text

HERE = Path(__file__).parent
SCRIPTS = HERE / "fixtures" / "scripts"
GOLDEN = HERE / "golden" / "rpr002_report.json"


def rpr002_result():
    # project_root makes reported paths stable and repo-relative.
    return analyze_paths(
        [SCRIPTS / "rpr002_violations.py"],
        rules=["RPR002"],
        project_root=HERE.parents[1],
    )


class TestTextReporter:
    def test_line_shape_and_summary(self):
        result = rpr002_result()
        text = render_text(result)
        lines = text.splitlines()
        assert len(lines) == len(result.findings) + 1
        first = lines[0]
        assert first.startswith(
            "tests/analysis/fixtures/scripts/rpr002_violations.py:"
        )
        assert "RPR002 [error]" in first
        assert lines[-1] == "6 finding(s) (6 error(s), 0 warning(s)) in 1 file(s)"

    def test_clean_run_reports_zero(self):
        result = analyze_paths(
            [SCRIPTS / "rpr002_clean.py"], rules=["RPR002"]
        )
        assert render_text(result) == (
            "0 finding(s) (0 error(s), 0 warning(s)) in 1 file(s)"
        )


class TestJsonReporter:
    def test_matches_golden_report(self):
        rendered = render_json(rpr002_result())
        assert rendered == GOLDEN.read_text().rstrip("\n")

    def test_round_trips_as_json(self):
        document = json.loads(render_json(rpr002_result()))
        assert document["version"] == 1
        assert document["summary"]["findings"] == 6
        assert document["summary"]["errors"] == 6
        assert document["summary"]["warnings"] == 0
        assert len(document["findings"]) == 6
        for finding in document["findings"]:
            assert set(finding) == {
                "path",
                "line",
                "col",
                "rule",
                "severity",
                "message",
            }
