"""Per-rule fixture tests: positive and negative cases for RPR001-005."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"
SCRIPTS = FIXTURES / "scripts"
SRCTREE = FIXTURES / "srctree"
CYCLETREE = FIXTURES / "cycletree"


def findings_for(path, rule):
    result = analyze_paths([path], rules=[rule])
    return result.findings


class TestRPR001RawBits:
    def test_flags_every_raw_manipulation(self):
        findings = findings_for(SCRIPTS / "rpr001_violations.py", "RPR001")
        assert len(findings) == 11
        assert {f.rule for f in findings} == {"RPR001"}

    def test_flagged_lines_are_the_marked_ones(self):
        source = (SCRIPTS / "rpr001_violations.py").read_text()
        marked = {
            lineno
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "# VIOLATION" in text
        }
        findings = findings_for(SCRIPTS / "rpr001_violations.py", "RPR001")
        assert {f.line for f in findings} == marked

    def test_clean_fixture_is_clean(self):
        assert findings_for(SCRIPTS / "rpr001_clean.py", "RPR001") == []

    def test_core_bitstring_is_exempt(self):
        repo_root = Path(__file__).parents[2]
        core = repo_root / "src" / "repro" / "core"
        assert findings_for(core / "bitstring.py", "RPR001") == []
        assert findings_for(core / "bitstring_ref.py", "RPR001") == []


class TestRPR002RawCompare:
    def test_flags_every_cast_ordering(self):
        findings = findings_for(SCRIPTS / "rpr002_violations.py", "RPR002")
        assert len(findings) == 6
        assert {f.rule for f in findings} == {"RPR002"}

    def test_clean_fixture_is_clean(self):
        assert findings_for(SCRIPTS / "rpr002_clean.py", "RPR002") == []


class TestRPR003UnguardedCodes:
    def test_flags_unguarded_call_sites(self):
        findings = findings_for(SCRIPTS / "rpr003_violations.py", "RPR003")
        assert len(findings) == 2

    def test_clean_fixture_is_clean(self):
        assert findings_for(SCRIPTS / "rpr003_clean.py", "RPR003") == []


class TestRPR004Layering:
    def test_flags_upward_imports_from_core(self):
        findings = findings_for(
            SRCTREE / "src" / "repro" / "core" / "rpr004_violation.py",
            "RPR004",
        )
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "'storage'" in messages
        assert "'query'" in messages
        assert "'repro'" in messages

    def test_allowed_and_relative_imports_pass(self):
        findings = findings_for(
            SRCTREE / "src" / "repro" / "core" / "rpr004_clean.py",
            "RPR004",
        )
        assert findings == []

    def test_cycle_is_reported_even_on_the_legal_edge(self):
        result = analyze_paths([CYCLETREE], rules=["RPR004"])
        cycle_findings = [
            f for f in result.findings if "cycle" in f.message
        ]
        edge_findings = [
            f for f in result.findings if "may not import" in f.message
        ]
        assert len(cycle_findings) == 1
        assert "labeling -> storage" in cycle_findings[0].message
        assert len(edge_findings) == 1  # only labeling -> storage


class TestRPR005Hygiene:
    @pytest.fixture(scope="class")
    def findings(self):
        return findings_for(
            SRCTREE / "src" / "repro" / "hygiene_fixture.py", "RPR005"
        )

    def test_counts_by_kind(self, findings):
        mutable = [f for f in findings if "mutable default" in f.message]
        bare = [f for f in findings if "bare 'except:'" in f.message]
        asserts = [f for f in findings if "assert" in f.message]
        assert len(mutable) == 3
        assert len(bare) == 1
        assert len(asserts) == 1

    def test_narrowing_asserts_not_flagged(self, findings):
        source = (
            SRCTREE / "src" / "repro" / "hygiene_fixture.py"
        ).read_text()
        fine_lines = {
            lineno
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "# fine" in text
        }
        assert fine_lines and not fine_lines & {f.line for f in findings}

    def test_severity_is_warning(self, findings):
        assert all(str(f.severity) == "warning" for f in findings)

    def test_asserts_ignored_outside_library_code(self, tmp_path):
        script = tmp_path / "bench_script.py"
        script.write_text("assert 1 + 1 == 2\n")
        assert findings_for(script, "RPR005") == []


class TestRPR006RawTiming:
    def test_flags_every_raw_clock_read(self):
        findings = findings_for(SCRIPTS / "rpr006_violations.py", "RPR006")
        assert len(findings) == 8
        assert {f.rule for f in findings} == {"RPR006"}
        assert all(str(f.severity) == "error" for f in findings)

    def test_flagged_lines_are_the_marked_ones(self):
        source = (SCRIPTS / "rpr006_violations.py").read_text()
        marked = {
            lineno
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "# VIOLATION" in text
        }
        findings = findings_for(SCRIPTS / "rpr006_violations.py", "RPR006")
        assert {f.line for f in findings} == marked

    def test_clean_fixture_is_clean(self):
        # time.time()/time.sleep() and OBS.span usage stay legal.
        assert findings_for(SCRIPTS / "rpr006_clean.py", "RPR006") == []

    def test_benchmarks_directory_is_exempt(self, tmp_path):
        harness = tmp_path / "benchmarks" / "bench_fixture.py"
        harness.parent.mkdir()
        harness.write_text(
            "import time\n\nSTART = time.perf_counter()\n"
        )
        assert findings_for(harness, "RPR006") == []

    def test_repro_obs_itself_is_exempt(self):
        # Spans have to read a clock somewhere: the real registry module
        # calls time.perf_counter() and must not flag itself.
        repo_root = Path(__file__).parents[2]
        registry = repo_root / "src" / "repro" / "obs" / "registry.py"
        assert "perf_counter" in registry.read_text()
        assert findings_for(registry, "RPR006") == []

    def test_library_code_outside_obs_is_not_exempt(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "core"
        tree.mkdir(parents=True)
        module = tree / "fresh_timer.py"
        module.write_text("import time\n\nSTART = time.monotonic()\n")
        findings = findings_for(module, "RPR006")
        assert len(findings) == 1
        assert "OBS.span" in findings[0].message


class TestRPR007SwallowedExceptions:
    FIXTURE = SRCTREE / "src" / "repro" / "rpr007_violations.py"

    def test_flags_every_swallow(self):
        findings = findings_for(self.FIXTURE, "RPR007")
        assert len(findings) == 4
        assert {f.rule for f in findings} == {"RPR007"}
        assert all(str(f.severity) == "error" for f in findings)

    def test_flagged_lines_are_the_marked_ones(self):
        source = self.FIXTURE.read_text()
        marked = {
            lineno
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "# VIOLATION" in text
        }
        findings = findings_for(self.FIXTURE, "RPR007")
        assert {f.line for f in findings} == marked

    def test_suppression_comment_is_honored(self):
        source = self.FIXTURE.read_text()
        (allowed_line,) = [
            lineno
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "allow-swallow" in text
        ]
        findings = findings_for(self.FIXTURE, "RPR007")
        assert allowed_line not in {f.line for f in findings}

    def test_clean_fixture_is_clean(self):
        clean = SRCTREE / "src" / "repro" / "rpr007_clean.py"
        assert findings_for(clean, "RPR007") == []

    def test_scripts_are_exempt(self):
        assert findings_for(SCRIPTS / "rpr007_script.py", "RPR007") == []

    def test_undo_log_rollback_is_not_flagged(self):
        # The undo log catches BaseException to *wrap* it — handling,
        # not swallowing; the rule must not flag its own raison d'etre.
        repo_root = Path(__file__).parents[2]
        txn = repo_root / "src" / "repro" / "updates" / "txn.py"
        assert "except BaseException" in txn.read_text()
        assert findings_for(txn, "RPR007") == []


class TestRPR008NakedWrites:
    FIXTURE = SRCTREE / "src" / "repro" / "storage" / "rpr008_violations.py"

    def test_flags_every_naked_write(self):
        findings = findings_for(self.FIXTURE, "RPR008")
        assert len(findings) == 6
        assert {f.rule for f in findings} == {"RPR008"}
        assert all(str(f.severity) == "error" for f in findings)

    def test_flagged_lines_are_the_marked_ones(self):
        source = self.FIXTURE.read_text()
        marked = {
            lineno
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "# VIOLATION" in text
        }
        findings = findings_for(self.FIXTURE, "RPR008")
        assert {f.line for f in findings} == marked

    def test_suppression_comment_is_honored(self):
        source = self.FIXTURE.read_text()
        (allowed_line,) = [
            lineno
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "allow-naked-write" in text
        ]
        findings = findings_for(self.FIXTURE, "RPR008")
        assert allowed_line not in {f.line for f in findings}

    def test_clean_fixture_is_clean(self):
        clean = SRCTREE / "src" / "repro" / "storage" / "rpr008_clean.py"
        assert findings_for(clean, "RPR008") == []

    def test_other_layers_are_out_of_scope(self):
        # The same naked writes outside repro.storage / repro.wal are
        # legal: those layers own no durable artifacts.
        assert findings_for(
            SRCTREE / "src" / "repro" / "rpr007_violations.py", "RPR008"
        ) == []

    def test_atomicio_is_the_sanctioned_exemption(self):
        repo_root = Path(__file__).parents[2]
        atomicio = repo_root / "src" / "repro" / "storage" / "atomicio.py"
        assert 'open(tmp, "wb")' in atomicio.read_text()
        assert findings_for(atomicio, "RPR008") == []

    def test_wal_writer_append_path_is_clean(self):
        repo_root = Path(__file__).parents[2]
        writer = repo_root / "src" / "repro" / "wal" / "writer.py"
        assert findings_for(writer, "RPR008") == []
