"""RPR004 positive fixture: a core module reaching up the stack.

Lives under a ``src/repro/core/`` path so the runner assigns it the
``core`` layer; the imports below are illegal for that layer.
"""

from repro.storage import labelstore  # VIOLATION: core -> storage
from repro.query import evaluator  # VIOLATION: core -> query

import repro  # VIOLATION: core -> package root facade
