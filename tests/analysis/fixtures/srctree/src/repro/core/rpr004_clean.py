"""RPR004 negative fixture: a core module importing only what it may."""

from repro.core.bitstring import BitString  # own layer
from repro.errors import InvalidCodeError  # declared dependency

from . import rpr004_clean_sibling  # relative: still the core layer
