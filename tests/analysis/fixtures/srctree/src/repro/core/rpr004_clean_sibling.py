"""Companion module for the relative-import case of rpr004_clean."""
