"""RPR007 negative fixture: broad catches that handle are legal."""


def wrap_and_reraise(action):
    try:
        return action()
    except Exception as error:
        raise RuntimeError("action failed") from error


def broad_catch_that_handles(action, fallback):
    try:
        return action()
    except Exception:
        return fallback


def concrete_swallow_is_fine(mapping, key):
    try:
        return mapping[key]
    except KeyError:
        pass
    return None


def base_exception_with_handling(log):
    try:
        return log.rollback()
    except BaseException:
        log.clear()
        raise
