"""RPR007 fixture (library-scoped): swallowed exceptions.

Lives under ``src/repro/`` because the rule only polices library
modules — scripts and benchmarks may ignore errors by design.
"""


def bare_except(action):
    try:
        return action()
    except:  # VIOLATION: bare except in library code
        return None


def swallow_exception(action):
    try:
        return action()
    except Exception:  # VIOLATION: except Exception: pass
        pass


def swallow_base_exception(action):
    try:
        return action()
    except BaseException:  # VIOLATION: except BaseException: ...
        ...


def swallow_in_tuple(action):
    try:
        return action()
    except (ValueError, Exception):  # VIOLATION: broad type in tuple, swallowed
        pass


def suppressed_swallow(action):
    try:
        return action()
    except Exception:  # repro: allow-swallow — demo of the escape hatch
        pass
