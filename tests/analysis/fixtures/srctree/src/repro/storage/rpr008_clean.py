"""RPR008 clean fixture: the writes the rule must leave alone."""

from pathlib import Path


def read_is_fine(path):
    with open(path, "rb") as handle:
        return handle.read()


def default_mode_is_fine(path):
    with open(path) as handle:
        return handle.read()


def append_is_fine(path, data):
    # the WAL's own append discipline: no truncation involved
    with open(path, "ab") as handle:
        handle.write(data)


def read_bytes_is_fine(path: Path):
    return path.read_bytes()


def dynamic_mode_is_not_guessed(path, mode):
    # a non-literal mode cannot be judged statically; stay silent
    with open(path, mode) as handle:
        return handle
