"""RPR008 fixture (storage-scoped): naked writes to durable artifacts.

Lives under ``src/repro/storage/`` because the rule only polices the
durability-critical layers (``repro.storage`` / ``repro.wal``).
"""

import io
from pathlib import Path


def naked_binary_write(path, data):
    with open(path, "wb") as handle:  # VIOLATION: open(..., "wb")
        handle.write(data)


def naked_text_write(path, text):
    with open(path, "w", encoding="utf-8") as handle:  # VIOLATION
        handle.write(text)


def naked_mode_keyword(path, data):
    with open(path, mode="wb") as handle:  # VIOLATION: mode= spelling
        handle.write(data)


def naked_io_open(path, data):
    with io.open(path, "wb") as handle:  # VIOLATION: io.open alias
        handle.write(data)


def pathlib_write_bytes(path: Path, data):
    path.write_bytes(data)  # VIOLATION: in-place overwrite


def pathlib_write_text(path: Path, text):
    path.write_text(text)  # VIOLATION: in-place overwrite


def suppressed_write(path, data):
    path.write_bytes(data)  # repro: allow-naked-write — fixture escape hatch
