"""RPR005 fixture (library-scoped): asserts, defaults, bare except.

Lives under ``src/repro/`` so the assert-as-validation sub-check —
which only applies to library code — sees it.
"""


def mutable_list_default(items=[]):  # VIOLATION: mutable default
    return items


def mutable_call_default(cache=dict()):  # VIOLATION: mutable default
    return cache


def keyword_only_default(*, seen={}):  # VIOLATION: mutable default
    return seen


def safe_default(items=None, label=(), name="x"):
    return items, label, name


def swallow_everything(action):
    try:
        return action()
    except:  # VIOLATION: bare except
        return None


def catch_concrete(action):
    try:
        return action()
    except ValueError:
        return None


def validate_with_assert(count):
    assert count > 0  # VIOLATION: data validation via assert
    return count


def narrow_with_assert(found, node, type_):
    assert found is not None  # fine: type narrowing
    assert isinstance(node, type_)  # fine: type narrowing
    assert found is not None and node is not None  # fine: conjunction
    return found
