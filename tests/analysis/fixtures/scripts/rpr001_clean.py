"""RPR001 negative fixture: bit work routed through BitString, plus
look-alikes that must not be flagged."""

QED_TAIL = "2"
SYMBOLS = {"1": 0b01, "2": 0b10}  # dict of literals: no manipulation


def quaternary_concat(code):
    return code + "2"  # quaternary symbol, not binary text


def append_via_bitstring(code):
    return code.append_bit(1)


def parse_via_bitstring(bitstring_type, text):
    return bitstring_type.from_str(text)


def int_default_base(text):
    return int(text)  # no base argument


def suppressed_concat(code):
    return code + "1"  # repro: allow-raw-bits — exercised by tests


def plain_value_read(code):
    return code.value  # public API read, no shift: allowed


class OwnPackedState:
    """Self-receiver payload use is a class's own state, not a poke."""

    def __init__(self):
        self._value = 0
        self._length = 0

    def push(self, bit):
        self._value = (self._value << 1) | bit
        self._length += 1
