"""RPR003 positive fixture: unguarded codes reaching assign_middle."""

from repro.core.bitstring import BitString
from repro.core.middle import assign_middle_binary_string


def inline_constructor(text, right):
    # VIOLATION: fresh code passed straight into the insertion routine.
    return assign_middle_binary_string(BitString.from_str(text), right)


def constructor_in_scope_without_guard(text, right):
    code = BitString.from_str(text)
    # VIOLATION: the enclosing function never checks ends_with_one().
    return assign_middle_binary_string(code, right)
