"""RPR007 is scoped to repro modules: scripts may swallow freely."""


def best_effort(action):
    try:
        return action()
    except Exception:
        pass
