"""RPR002 negative fixture: sanctioned comparisons and look-alikes."""


def compare_codes(a, b):
    return a < b  # BitString comparators carry Definition 3.1


def equality_of_renderings(a, b):
    return a.to01() == b.to01()  # equality is fine, only ordering is banned


def sort_by_codec_key(codes, codec):
    return sorted(codes, key=codec.key)


def sort_by_scheme(labels, scheme):
    return sorted(labels, key=scheme.order_key)


def str_for_display(a, b):
    return f"{str(a)} vs {str(b)}"  # casts without ordering
