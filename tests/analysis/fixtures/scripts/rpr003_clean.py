"""RPR003 negative fixture: guarded constructions and pre-built codes."""

from repro.core.bitstring import BitString
from repro.core.middle import assign_middle_binary_string
from repro.errors import InvalidCodeError


def guarded_constructor(text, right):
    code = BitString.from_str(text)
    if not code.ends_with_one():
        raise InvalidCodeError(f"{text!r} must end with '1'")
    return assign_middle_binary_string(code, right)


def prebuilt_codes(left, right):
    # No construction from raw input here: the caller owns validation.
    return assign_middle_binary_string(left, right)


def construction_without_insertion(text):
    # Constructing alone is fine; only the insertion path needs guards.
    return BitString.from_str(text)


def suppressed_inline(text, right):
    # repro: allow-raw-code — exercised by the suppression tests
    return assign_middle_binary_string(BitString.from_str(text), right)
