"""Mutual recursion with a durable effect: the fixpoint must converge."""

from os import fsync


def ping(fd, n):
    if n:
        pong(fd, n - 1)
    fsync(fd)


def pong(fd, n):
    if n:
        ping(fd, n - 1)
