"""RPR006 fixture: raw monotonic-clock reads that must all be flagged."""

import time

from time import perf_counter  # VIOLATION
from time import monotonic as tick, sleep  # VIOLATION


def measure_inline():
    start = time.perf_counter()  # VIOLATION
    busy = sum(range(100))
    elapsed = time.perf_counter() - start  # VIOLATION
    return busy, elapsed


def measure_variants():
    a = time.monotonic()  # VIOLATION
    b = time.perf_counter_ns()  # VIOLATION
    c = time.process_time()  # VIOLATION
    d = time.process_time_ns()  # VIOLATION
    sleep(0)
    return a, b, c, d, perf_counter(), tick()
