"""RPR006 fixture: legal time usage — timestamps, delays and spans."""

import time

from time import sleep

from repro.obs import OBS


def run():
    started_at = time.time()  # wall-clock timestamp, not a measurement
    sleep(0)
    with OBS.span("fixture.work", op="demo") as span:
        total = sum(range(1_000))
    return started_at, total, span.seconds
