"""RPR001 positive fixture: every flavour of raw bit-string manipulation.

Each violating line carries a trailing marker comment naming the count
expectations in test_rules.py; the file is analyzed, never imported.
"""


def concat_literal(code):
    return code + "1"  # VIOLATION: concat with binary literal


def concat_repeated(position):
    return "1" * (position - 1) + "0"  # VIOLATION: repeated binary text


def render_format(value):
    return format(value, "b")  # VIOLATION: format(x, 'b')


def render_padded_format(value, width):
    return format(value, f"0{width}b")  # no flag: spec is dynamic


def render_fstring(value):
    return f"{value:08b}"  # VIOLATION: f-string ':b' spec


def parse_binary(text):
    return int(text, 2)  # VIOLATION: int(text, 2)


def render_builtin(value):
    return bin(value)  # VIOLATION: bin(x)


def slice_rendering(code):
    return code.to01()[:3]  # VIOLATION: slicing a to01() rendering


def read_private_payload(code):
    return code._value  # VIOLATION: private packed payload read


def read_private_length(code):
    return code._length  # VIOLATION: private packed payload read


def align_by_hand(code, other):
    return code.value << (8 - len(other))  # VIOLATION: shift on .value read


def align_by_hand_right(code, probe):
    return probe >> code.value  # VIOLATION: shift on .value read
