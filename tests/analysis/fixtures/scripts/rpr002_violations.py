"""RPR002 positive fixture: raw-cast orderings of labels/codes."""


def compare_rendered(a, b):
    return a.to01() < b.to01()  # VIOLATION: ordering to01() text


def compare_str_cast(a, b):
    return str(a) >= str(b)  # VIOLATION: ordering str() casts


def compare_tuple_cast(a, b):
    return tuple(a) > tuple(b)  # VIOLATION: ordering tuple() casts


def sort_by_str(codes):
    return sorted(codes, key=str)  # VIOLATION: sorting by str cast


def smallest_by_tuple(labels):
    return min(labels, key=tuple)  # VIOLATION: min by tuple cast


def sort_by_rendering(codes, bitstring_type):
    return sorted(codes, key=bitstring_type.to01)  # VIOLATION: to01 key
