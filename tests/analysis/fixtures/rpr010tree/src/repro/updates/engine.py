"""RPR010 fixture engine: location and abort-path violations."""

from os import fsync

from repro.wal.writer import WalManager


class UndoLog:
    def __init__(self):
        self.entries = []

    def record(self, undo):
        self.entries.append(undo)


class UpdateEngine:
    def __init__(self, labeled):
        self.labeled = labeled
        self.undo_log = UndoLog()
        self.wal = WalManager(labeled, "wal.log")

    def flush_now(self, fd):
        fsync(fd)  # VIOLATION: durable effect outside the WAL layer

    def risky_delete(self, path):
        log = self.undo_log
        if log is not None:
            # VIOLATION: the undo closure checkpoints, i.e. touches disk.
            log.record(lambda: self.wal.checkpoint(path))

    def safe_delete(self, node):
        log = self.undo_log
        if log is not None:
            log.record(lambda: self.labeled.restore(node))
