"""RPR010 fixture WAL layer: good and bad checkpoint orderings.

The module lives under ``repro.wal`` so clause 1 (location) never
fires here; only the intra-function ordering clause does.
"""

from repro.storage.atomicio import atomic_write_bytes
from repro.storage.labelfile import save_labeled


class WalManager:
    def __init__(self, labeled, log_path):
        self.labeled = labeled
        self.log_path = log_path

    def checkpoint(self, path):
        """Protocol order: the bundle lands before the log shrinks."""
        save_labeled(self.labeled, path)
        atomic_write_bytes(self.log_path, b"")

    def bad_checkpoint(self, path):
        atomic_write_bytes(self.log_path, b"")  # VIOLATION: truncate first
        save_labeled(self.labeled, path)

    def marker_drift(self, path):
        """Real calls ordered correctly, protocol markers swapped."""
        FAULTS.hit("wal.checkpoint_truncate")  # VIOLATION: marker order
        save_labeled(self.labeled, path)
        FAULTS.hit("wal.checkpoint_write")
        atomic_write_bytes(self.log_path, b"")
