"""RPR011 fixture: every shape of process-wide mutable state.

Marked lines are warnings; the rest are the accepted spellings
(CAPS-frozen constants, dunders, per-instance state).
"""

__all__ = ["Catalog", "lookup"]

LIMITS = (16, 32)

SEEN_TAGS = {"r"}  # caps-named: fine here, but see bump() below

registry = {}  # VIOLATION: module-level mutable container

waived = []  # repro: allow-shared-state


class Catalog:
    sizes = {}  # VIOLATION: class-level mutable default

    def __init__(self):
        self._result_cache = {}
        self.entries = []

    def lookup(self, key):
        if key not in self._result_cache:
            # VIOLATION: memo fill with no undo registration
            self._result_cache[key] = len(self.entries)
        return self._result_cache[key]

    def lookup_logged(self, key, undo_log):
        if undo_log is not None:
            undo_log.record(lambda: self._result_cache.pop(key, None))
        if key not in self._result_cache:
            self._result_cache[key] = len(self.entries)
        return self._result_cache[key]


def bump(tag):
    global SEEN_TAGS
    SEEN_TAGS = SEEN_TAGS | {tag}  # VIOLATION: rebinding a constant


def lookup(key):
    return registry.get(key)
