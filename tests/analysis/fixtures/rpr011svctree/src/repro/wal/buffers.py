"""Severity fixture: shared state on a service-reachable path (error)."""

pending = []  # VIOLATION: module-level mutable container, service path


def enqueue(record):
    pending.append(record)
