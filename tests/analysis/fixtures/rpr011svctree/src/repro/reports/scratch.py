"""Severity fixture: shared state off every service path (warning)."""

totals = {}  # VIOLATION: module-level mutable container, offline tooling


def tally(key):
    return totals.get(key, 0)
