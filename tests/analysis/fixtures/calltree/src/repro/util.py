"""Support module for the call-graph fixture."""


def helper(width):
    return width + 1


def pad(text):
    return f" {text} "
