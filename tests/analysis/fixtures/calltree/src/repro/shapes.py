"""Frozen call-graph fixture: every resolution tier in one module.

The golden snapshot test pins ``CallGraph.to_dict`` over this tree;
edit it only together with ``tests/analysis/golden/calltree.json``.
"""

from repro import util
from repro.util import helper


class Base:
    def area(self):
        return self.side() * self.side()

    def side(self):
        return 1


class Square(Base):
    def side(self):
        return helper(2)

    def describe(self):
        return self.area()


def render(shape):
    def fmt(value):
        return util.pad(str(value))

    return fmt(shape.describe())


def top():
    return render(Square())
