"""RPR011 fixture: dedup-table fills with and without the rebuild
discipline, on a service-reachable path (so findings are errors).

A retry-dedup table is derived state: it must either register an undo
per fill or belong to a class that can rebuild it wholesale from the
durable log.  ``RetryLedger`` does neither — flagged; ``HealedLedger``
owns a ``rebuild*`` method — exempt.
"""

__all__ = ["RetryLedger", "HealedLedger"]


class RetryLedger:
    """No rebuild method: its fills are unrecoverable after a crash."""

    def __init__(self):
        self._dedup = {}

    def record(self, request_id, ack):
        # VIOLATION: dedup fill with no undo and no rebuild* method
        self._dedup[request_id] = ack

    def record_logged(self, request_id, ack, undo_log):
        if undo_log is not None:
            undo_log.record(lambda: self._dedup.pop(request_id, None))
        self._dedup[request_id] = ack


class HealedLedger:
    """Same fill, but the class owns the rebuild discipline — exempt."""

    def __init__(self):
        self._dedup = {}

    def record(self, request_id, ack):
        self._dedup[request_id] = ack

    def _rebuild_dedup(self, entries):
        self._dedup = dict(entries)
