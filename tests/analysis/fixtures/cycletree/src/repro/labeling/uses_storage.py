"""Half of an import cycle: labeling reaching into storage (illegal)."""

from repro.storage import labelstore  # VIOLATION: labeling -> storage
