"""Other half of the cycle: storage -> labeling is individually legal."""

from repro.labeling import codecs  # allowed edge, but closes the cycle
