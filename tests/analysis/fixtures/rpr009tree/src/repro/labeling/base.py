"""RPR009 fixture facade: one reachable unregistered write.

Every other method demonstrates a way a tracked-state write is *not*
flagged: the guarded-record idiom, the scoped waiver, and
engine-unreachability.
"""


class UndoLog:
    def __init__(self):
        self.entries = []

    def record(self, undo):
        self.entries.append(undo)


class LabeledDocument:
    def __init__(self):
        self.labels = {}
        self.undo_log = None

    def set_label(self, node, label):
        """Guarded idiom: inverse registered, write exempt."""
        old = self.labels.get(id(node))
        log = self.undo_log
        if log is not None:
            log.record(lambda: self.set_label(node, old))
        self.labels[id(node)] = label

    def bad_write(self, node, label):
        self.labels[id(node)] = label  # VIOLATION: no inverse registered

    def waived_write(self, node):
        # Deliberately unregistered; the scoped slug waives it.
        self.labels.pop(id(node), None)  # repro: allow-mutation-without-undo

    def offline_rebuild(self):
        """Never called from the engine: reachability exempts it."""
        self.labels.clear()
