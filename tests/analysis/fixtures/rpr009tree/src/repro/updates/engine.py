"""RPR009 fixture engine: its public methods define reachability."""

from repro.labeling.base import LabeledDocument, UndoLog


class UpdateEngine:
    def __init__(self, labeled: LabeledDocument):
        self.labeled = labeled
        self.undo_log = UndoLog()

    def insert(self, node, label):
        self.labeled.set_label(node, label)
        self.labeled.bad_write(node, label)

    def delete(self, node):
        self.labeled.waived_write(node)
