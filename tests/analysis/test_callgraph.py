"""Call-graph resolution and effect-fixpoint tests.

The golden snapshot pins every resolution tier over the frozen
``calltree`` fixture: MRO method lookup, inherited-method dispatch,
duck-typed receivers, nested functions, module-alias calls, and
imported functions.  Regenerate with::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.analysis import run_analysis
    run = run_analysis(["tests/analysis/fixtures/calltree"], rules=["RPR009"])
    print(json.dumps(run.program.call_graph.to_dict(), indent=2, sort_keys=True))
    PY
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import run_analysis

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = Path(__file__).parent / "golden"


def graph_of(tree):
    return run_analysis([tree], rules=["RPR009"]).program.call_graph


class TestGoldenSnapshot:
    def test_calltree_matches_the_golden_graph(self):
        expected = json.loads((GOLDEN / "calltree.json").read_text())
        actual = graph_of(FIXTURES / "calltree").to_dict()
        assert actual == expected

    def test_inherited_method_resolves_through_the_mro(self):
        graph = graph_of(FIXTURES / "calltree")
        # Square has no `area`; `describe` finds Base.area via the MRO.
        assert "repro.shapes::Base.area" in graph.edges[
            "repro.shapes::Square.describe"
        ]

    def test_duck_receiver_resolves_by_method_name(self):
        graph = graph_of(FIXTURES / "calltree")
        # `shape.describe()` has an untyped receiver; only Square
        # defines `describe`.
        assert "repro.shapes::Square.describe" in graph.edges[
            "repro.shapes::render"
        ]

    def test_nested_function_gets_its_own_node(self):
        graph = graph_of(FIXTURES / "calltree")
        fmt = "repro.shapes::render.<locals>.fmt"
        assert fmt in graph.functions
        assert graph.edges[fmt] == ("repro.util::pad",)

    def test_reverse_edges_mirror_forward_edges(self):
        graph = graph_of(FIXTURES / "calltree")
        for caller, callees in graph.edges.items():
            for callee in callees:
                assert caller in graph.reverse[callee]


class TestReachability:
    def test_reachable_from_walks_transitively(self):
        graph = graph_of(FIXTURES / "calltree")
        reached = graph.reachable_from(["repro.shapes::top"])
        assert "repro.util::pad" in reached
        assert "repro.util::helper" in reached

    def test_shortest_parents_reconstructs_a_path(self):
        graph = graph_of(FIXTURES / "calltree")
        parents = graph.shortest_parents(["repro.shapes::top"])
        path = graph.path_to(parents, "repro.util::pad")
        assert path[0] == "repro.shapes::top"
        assert path[-1] == "repro.util::pad"


class TestDurableFixpoint:
    def test_mutual_recursion_converges_and_both_see_the_fsync(self):
        run = run_analysis(
            [FIXTURES / "scripts" / "effects_mutual.py"], rules=["RPR010"]
        )
        effects = run.program.effects
        (module,) = run.program.modules
        ping = module.qualify("ping")
        pong = module.qualify("pong")
        ping_closure = effects.durable_effects_of(ping)
        pong_closure = effects.durable_effects_of(pong)
        # The cycle ping -> pong -> ping must not loop forever, and the
        # fsync inside `ping` must propagate onto both participants.
        assert {kind for kind, _, _ in ping_closure} == {"fsync"}
        assert ping_closure == pong_closure

    def test_effect_summaries_exist_for_every_graph_node(self):
        run = run_analysis([FIXTURES / "calltree"], rules=["RPR009"])
        effects = run.program.effects
        assert set(effects.summaries) == set(
            run.program.call_graph.functions
        )

    def test_symbol_lookup_accepts_dotted_suffixes(self):
        run = run_analysis([FIXTURES / "calltree"], rules=["RPR009"])
        effects = run.program.effects
        assert effects.find_symbols("Square.describe") == [
            "repro.shapes::Square.describe"
        ]
        assert effects.find_symbols("no.such.symbol") == []
