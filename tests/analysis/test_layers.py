"""The layering declaration itself: shape, validation, registration."""

from __future__ import annotations

import pytest

from repro.analysis import AnalysisConfigError
from repro.analysis.layers import (
    ALL_LAYERS,
    LAYERS,
    SCRIPT_LAYER,
    allowed_imports,
    layer_of_module,
    register_layer,
    validate_layers,
)


class TestLayerOfModule:
    def test_subpackages(self):
        assert layer_of_module("repro.core.bitstring") == "core"
        assert layer_of_module("repro.labeling.prefix") == "labeling"
        assert layer_of_module("repro.analysis.rules.raw_bits") == "analysis"

    def test_top_level_modules_are_their_own_layers(self):
        assert layer_of_module("repro.errors") == "errors"
        assert layer_of_module("repro.store") == "store"
        assert layer_of_module("repro") == "repro"

    def test_foreign_modules_map_to_scripts(self):
        assert layer_of_module("numpy.linalg") == SCRIPT_LAYER


class TestDeclaredDag:
    def test_paper_mandated_edges(self):
        # The ISSUE's contract: core imports nothing above it (errors,
        # obs and faults are all leaves or near-leaves below core);
        # labeling may import core but not storage/query/relational.
        assert allowed_imports("core") == frozenset(
            {"errors", "faults", "obs"}
        )
        labeling = allowed_imports("labeling")
        assert "core" in labeling
        assert not {"storage", "query", "relational"} & set(labeling)

    def test_obs_is_a_leaf(self):
        # Observability must not import back up into the layers it
        # instruments — that would be a cycle through every hot path.
        assert allowed_imports("obs") == frozenset({"errors"})

    def test_faults_is_a_near_leaf(self):
        # Fault injection sits beside obs: every instrumented layer may
        # consult FAULTS, so it must not import any of them back.
        assert allowed_imports("faults") == frozenset({"errors", "obs"})

    def test_verify_never_imports_updates(self):
        # The integrity checker validates what the update path produced;
        # importing updates would let it depend on the code under test.
        assert "updates" not in allowed_imports("verify")

    def test_facades_allow_everything(self):
        assert allowed_imports("bench") == ALL_LAYERS
        assert allowed_imports("store") == ALL_LAYERS
        assert allowed_imports(SCRIPT_LAYER) == ALL_LAYERS

    def test_unknown_layer_allows_nothing(self):
        assert allowed_imports("brand-new-subsystem") == frozenset()

    def test_declaration_is_acyclic(self):
        validate_layers()  # the shipped table must not raise

    def test_cyclic_declaration_rejected(self):
        with pytest.raises(AnalysisConfigError, match="cycle"):
            validate_layers(
                {
                    "a": frozenset({"b"}),
                    "b": frozenset({"a"}),
                }
            )

    def test_dangling_reference_rejected(self):
        with pytest.raises(AnalysisConfigError, match="unknown"):
            validate_layers({"a": frozenset({"ghost"})})


class TestRegisterLayer:
    def test_future_subsystems_register_in_one_place(self):
        assert "caching" not in LAYERS
        try:
            register_layer("caching", {"errors", "core"})
            assert allowed_imports("caching") == frozenset(
                {"errors", "core"}
            )
        finally:
            del LAYERS["caching"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnalysisConfigError, match="already"):
            register_layer("core", {"errors"})

    def test_cycle_introduced_by_registration_rejected(self):
        assert "tmp-layer" not in LAYERS
        # 'errors' allows nothing, so a layer that only errors could
        # import cannot be added as a dependency *of* errors afterwards;
        # simulate by registering a layer that depends on itself.
        with pytest.raises(AnalysisConfigError):
            register_layer("tmp-layer", {"tmp-layer"})
        LAYERS.pop("tmp-layer", None)
