"""Whole-program rule tests: RPR009-RPR011 over library-mode fixtures.

Each fixture tree carries an inner ``src/repro`` layout so the runner
derives real module names — that is what switches RPR009 into
library mode (entry-point reachability) and scopes RPR010's sanctioned
modules.  Positive cases are marked ``# VIOLATION`` in the fixtures;
negatives document each exemption (guarded idiom, waiver slug,
unreachability, sanctioned module).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"
RPR009TREE = FIXTURES / "rpr009tree"
RPR010TREE = FIXTURES / "rpr010tree"
RPR011TREE = FIXTURES / "rpr011tree"
RPR011SVCTREE = FIXTURES / "rpr011svctree"
RPR011DEDUPTREE = FIXTURES / "rpr011deduptree"


def run(tree, rule):
    return analyze_paths([tree], rules=[rule])


class TestRPR009MutationWithoutUndo:
    def test_only_the_reachable_unregistered_write_is_flagged(self):
        result = run(RPR009TREE, "RPR009")
        assert [f.rule for f in result.findings] == ["RPR009"]
        (finding,) = result.findings
        assert finding.path.endswith("labeling/base.py")
        assert "bad_write" in finding.message

    def test_message_names_the_entry_path(self):
        (finding,) = run(RPR009TREE, "RPR009").findings
        assert "reachable via UpdateEngine.insert" in finding.message

    def test_finding_sits_on_the_marked_line(self):
        base = RPR009TREE / "src" / "repro" / "labeling" / "base.py"
        marked = [
            lineno
            for lineno, text in enumerate(
                base.read_text().splitlines(), start=1
            )
            if "# VIOLATION" in text
        ]
        assert [f.line for f in run(RPR009TREE, "RPR009").findings] == marked

    def test_guarded_idiom_and_unreachable_method_are_exempt(self):
        messages = " ".join(
            f.message for f in run(RPR009TREE, "RPR009").findings
        )
        assert "set_label" not in messages  # guarded record
        assert "offline_rebuild" not in messages  # engine-unreachable

    def test_scoped_suppression_waives_the_deliberate_write(self):
        result = run(RPR009TREE, "RPR009")
        assert result.suppressed == 1
        assert not any("waived_write" in f.message for f in result.findings)


class TestRPR010DurabilityProtocol:
    def test_all_three_clauses_fire_once_each(self):
        result = run(RPR010TREE, "RPR010")
        messages = [f.message for f in result.findings]
        assert len(messages) == 4
        assert sum("outside the sanctioned" in m for m in messages) == 1
        assert sum("truncates the log" in m for m in messages) == 2
        assert sum("undo closure" in m for m in messages) == 1

    def test_findings_sit_on_the_marked_lines(self):
        marked = set()
        for name in ("wal/writer.py", "updates/engine.py"):
            path = RPR010TREE / "src" / "repro" / name
            lines = path.read_text().splitlines()
            for lineno, text in enumerate(lines, start=1):
                if "VIOLATION" not in text:
                    continue
                # A comment-only marker lines annotates the next line.
                target = lineno if not text.lstrip().startswith("#") else (
                    lineno + 1
                )
                marked.add((path.as_posix(), target))
        result = run(RPR010TREE, "RPR010")
        assert {(f.path, f.line) for f in result.findings} == marked

    def test_correct_checkpoint_order_is_clean(self):
        messages = " ".join(
            f.message for f in run(RPR010TREE, "RPR010").findings
        )
        assert "WalManager.checkpoint " not in messages

    def test_marker_drift_is_caught_independently_of_real_calls(self):
        """``marker_drift`` orders the real I/O correctly; only the
        FAULTS protocol markers are swapped — still an error."""
        result = run(RPR010TREE, "RPR010")
        assert any(
            "marker_drift" in f.message for f in result.findings
        )

    def test_pure_undo_closure_is_clean(self):
        messages = " ".join(
            f.message for f in run(RPR010TREE, "RPR010").findings
        )
        assert "safe_delete" not in messages


class TestRPR011SharedState:
    def test_each_shape_of_shared_state_is_flagged(self):
        result = run(RPR011TREE, "RPR011")
        messages = [f.message for f in result.findings]
        assert len(messages) == 4
        assert any("module-level mutable container" in m for m in messages)
        assert any("class-level mutable default" in m for m in messages)
        assert any("fills memo cache" in m for m in messages)
        assert any("mutates module constant" in m for m in messages)

    def test_off_service_modules_stay_warnings(self):
        # repro.shared sits on no service code path, so the original
        # warning severity applies (see TestRPR011SeverityPromotion).
        result = run(RPR011TREE, "RPR011")
        assert {str(f.severity) for f in result.findings} == {"warning"}

    def test_caps_constant_and_dunder_are_exempt_until_written(self):
        result = run(RPR011TREE, "RPR011")
        messages = " ".join(f.message for f in result.findings)
        assert "__all__" not in messages
        assert "LIMITS" not in messages
        # SEEN_TAGS the *binding* is fine; no finding on its def line.
        assert all(f.line != 12 for f in result.findings)

    def test_caps_rebinding_inside_a_function_is_flagged(self):
        # `bump` writes the SEEN_TAGS constant through `global`.
        result = run(RPR011TREE, "RPR011")
        assert any("SEEN_TAGS" in f.message for f in result.findings)

    def test_registered_memo_fill_is_exempt(self):
        messages = " ".join(
            f.message for f in run(RPR011TREE, "RPR011").findings
        )
        assert "lookup_logged" not in messages

    def test_waiver_slug_suppresses(self):
        assert run(RPR011TREE, "RPR011").suppressed == 1


class TestRPR011SeverityPromotion:
    """The same hazard is an error on a service path, a warning off it."""

    def test_service_reachable_module_is_promoted_to_error(self):
        result = run(RPR011SVCTREE, "RPR011")
        severities = {
            f.path.rsplit("repro/", 1)[1]: str(f.severity)
            for f in result.findings
        }
        assert severities == {
            "wal/buffers.py": "error",
            "reports/scratch.py": "warning",
        }

    def test_promotion_changes_severity_not_the_message(self):
        result = run(RPR011SVCTREE, "RPR011")
        for finding in result.findings:
            assert finding.rule == "RPR011"
            assert "module-level mutable container" in finding.message


class TestRPR011DedupTables:
    """Dedup-table fills follow the undo-*or-rebuild* discipline."""

    def test_unrebuilt_dedup_fill_is_flagged_as_error(self):
        result = run(RPR011DEDUPTREE, "RPR011")
        assert [f.rule for f in result.findings] == ["RPR011"]
        (finding,) = result.findings
        assert finding.path.endswith("service/tables.py")
        assert str(finding.severity) == "error"  # service-reachable
        assert "RetryLedger.record" in finding.message
        assert "dedup table" in finding.message
        assert "rebuild" in finding.message

    def test_finding_sits_on_the_marked_line(self):
        tables = (
            RPR011DEDUPTREE / "src" / "repro" / "service" / "tables.py"
        )
        lines = tables.read_text().splitlines()
        (marked,) = [
            lineno + 1  # the comment marker annotates the next line
            for lineno, text in enumerate(lines, start=1)
            if "# VIOLATION" in text
        ]
        assert [
            f.line for f in run(RPR011DEDUPTREE, "RPR011").findings
        ] == [marked]

    def test_rebuild_method_exempts_the_whole_class(self):
        messages = " ".join(
            f.message for f in run(RPR011DEDUPTREE, "RPR011").findings
        )
        assert "HealedLedger" not in messages

    def test_undo_registered_fill_is_exempt(self):
        messages = " ".join(
            f.message for f in run(RPR011DEDUPTREE, "RPR011").findings
        )
        assert "record_logged" not in messages
