"""Hypothesis-driven churn: random update programs vs the tree oracle.

For every scheme family, a random program of inserts, run-inserts,
moves and deletes is replayed against a labeled document; after the
final step all label-derived relationships and a set of queries must
agree with the plain tree (DESIGN.md invariant 10, in its strongest
form).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.labeling import make_scheme
from repro.query import QueryEngine, evaluate_reference
from repro.updates import UpdateEngine
from repro.xmltree import Node, NodeKind, parse_document

SCHEMES = (
    "V-CDBS-Containment",
    "F-CDBS-Containment",
    "QED-Containment",
    "QED-Prefix",
    "CDBS(UTF8)-Prefix",
    "OrdPath1-Prefix",
    "Prime",
    "V-Binary-Containment",
    "F-Binary-Containment",
    "DeweyID(UTF8)-Prefix",
    "Binary-String-Prefix",
    "Float-point-Containment",
    "Gapped-Containment",
    "Adaptive-CDBS-Containment",
)

operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "run", "delete", "move"]),
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
    ),
    min_size=1,
    max_size=25,
)


def _apply_program(scheme_name: str, program) -> None:
    document = parse_document(
        "<r>" + "<g><h/><h/></g>" * 6 + "</r>"
    )
    labeled = make_scheme(scheme_name).label_document(document)
    engine = UpdateEngine(labeled, with_storage=False)
    counter = 0
    for op, pick_a, pick_b in program:
        elements = [
            n
            for n in labeled.nodes_in_order
            if n.kind is NodeKind.ELEMENT
        ]
        if op == "insert":
            parent = elements[pick_a % len(elements)]
            index = pick_b % (len(parent.children) + 1)
            engine.insert_child(parent, Node.element(f"i{counter}"), index)
            counter += 1
        elif op == "run":
            target = elements[pick_a % len(elements)]
            if target.parent is None:
                continue
            roots = [
                Node.element(f"r{counter}_{j}")
                for j in range(1 + pick_b % 3)
            ]
            engine.insert_run_before(target, roots)
            counter += 1
        elif op == "delete":
            victims = [
                n
                for n in elements
                if n.parent is not None and not n.children
            ]
            if not victims:
                continue
            engine.delete(victims[pick_a % len(victims)])
        elif op == "move":
            movable = [n for n in elements if n.parent is not None]
            if len(movable) < 2:
                continue
            node = movable[pick_a % len(movable)]
            target = movable[pick_b % len(movable)]
            if node is target or node.is_ancestor_of(target):
                continue
            engine.move_before(node, target)

    # Oracle checks.
    nodes = labeled.nodes_in_order
    assert [id(n) for n in nodes] == [id(n) for n in document.pre_order()]
    assert len(labeled.labels) == len(nodes)
    # The order index must agree with enumeration after arbitrary churn
    # (it replaced the plain list whose .index() was the oracle).
    for position, node in enumerate(nodes):
        assert labeled.position_of(node) == position
        assert nodes[position] is node
    for position, node in enumerate(document.pre_order()):
        if node.parent is not None:
            assert node.parent.children[node.index_in_parent] is node
    scheme = labeled.scheme
    keys = [scheme.order_key(labeled.label_of(n)) for n in nodes]
    assert keys == sorted(keys)
    rng = random.Random(17)
    for _ in range(150):
        a, b = rng.choice(nodes), rng.choice(nodes)
        assert scheme.is_ancestor(
            labeled.label_of(a), labeled.label_of(b)
        ) == a.is_ancestor_of(b)
        assert scheme.is_parent(
            labeled.label_of(a), labeled.label_of(b)
        ) == (b.parent is a)
    query_engine = QueryEngine(labeled)
    for query in ("//h", "/r/g", "//g[2]", "/r/*"):
        expected = [id(n) for n in evaluate_reference(document, query)]
        assert [id(n) for n in query_engine.evaluate(query)] == expected


@pytest.mark.parametrize("scheme_name", SCHEMES)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(program=operations)
def test_random_update_programs(scheme_name, program):
    _apply_program(scheme_name, program)
