# Convenience targets for the repro library.

.PHONY: install test bench experiments experiments-full examples

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.bench

experiments-full:
	python -m repro.bench --full

examples:
	python examples/quickstart.py
	python examples/order_maintenance.py
	python examples/dynamic_editor.py
	python examples/persistent_store.py
	python examples/relational_hosting.py
