# Convenience targets for the repro library.

.PHONY: install test lint ci bench bench-smoke bench-gate bench-baseline \
	chaos crash serve-bench experiments experiments-full examples

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# The paper-invariant static checker (RPR001-RPR011); exits non-zero on
# any non-baselined finding or dead waiver.  The second invocation runs
# the whole-program transactional rules over the test helpers that
# mutate engine state.  See docs/STATIC_ANALYSIS.md.
lint:
	PYTHONPATH=src python -m repro.analysis src benchmarks examples \
		--check-baseline --cache .analysis-cache.json
	PYTHONPATH=src python -m repro.analysis tests --no-baseline \
		--rules RPR009,RPR010,RPR011 --exclude tests/analysis/fixtures \
		--cache .analysis-tests-cache.json

# What CI runs: the analyzer, then the tier-1 suite.  (The benchmark
# regression gate is its own target so a slow machine can skip it.)
ci: lint
	PYTHONPATH=src python -m pytest -x -q

# Full update hot-path sweep (benchmarks/ holds scripts, not pytest
# benchmarks; see benchmarks/README if unsure which one you want).
bench:
	PYTHONPATH=src python benchmarks/bench_update_hotpath.py --out BENCH_updates.json

# The 1k smoke configuration the CI gate compares against its baseline.
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_update_hotpath.py \
		--sizes 1000 --ops 45 --no-legacy --out BENCH_smoke.json

# CI regression gate: calibrated medians within +/-30%, ledger counters
# exact.  See docs/OBSERVABILITY.md for how to read a failure.
bench-gate: bench-smoke
	PYTHONPATH=src python benchmarks/bench_gate.py BENCH_smoke.json \
		benchmarks/baseline_smoke.json

# Seeded fault-injection matrix (scheme x site x seed): every aborted
# op must roll back byte-identically and the resumed run must match a
# fault-free oracle.  Failing cells' plans land in CHAOS_failures.json.
# See docs/ROBUSTNESS.md.
chaos:
	PYTHONPATH=src python benchmarks/chaos_matrix.py --out CHAOS_failures.json

# Crash-recovery matrix (scheme x WAL site x seed): kill the process at
# every durability site, recover from the WAL directory alone, and
# require equality with the committed-prefix oracle.  The recovery tier
# additionally heals each crash *in place* (writer.recover, including a
# second crash during recovery) and replays acked request_ids through
# the dedup table.  Failing cells' plans land in CRASH_failures.json /
# RECOVERY_failures.json.  See docs/ROBUSTNESS.md.
crash:
	PYTHONPATH=src python benchmarks/crash_matrix.py \
		--out CRASH_failures.json --recovery-out RECOVERY_failures.json

# Document-service throughput bench: 1/8/64 simulated clients, 70/30
# write/read mix, group commit vs fsync-per-commit.  Writes
# BENCH_service.json and gates on it: amortized wal.fsyncs/commit must
# stay below 1 at >= 8 clients with group commit on, every snapshot
# read must see a committed version, and the storm must leave zero
# integrity violations.  The second invocation is the chaos lane: a
# wal.fsync crash armed mid-storm, idempotent clients retrying through
# the outage, self-healing gated on exact node accounting.  See
# DESIGN.md section 11 and docs/ROBUSTNESS.md.
serve-bench:
	PYTHONPATH=src python benchmarks/bench_service.py \
		--clients 1,8,64 --ops 40 --out BENCH_service.json
	PYTHONPATH=src python benchmarks/bench_service.py \
		--fault-lane --ops 30 --out BENCH_service_faults.json

# Regenerate the checked-in baseline after an *intentional* change to
# the update path's work profile; justify the refresh in the commit.
bench-baseline: bench-smoke
	PYTHONPATH=src python benchmarks/bench_gate.py BENCH_smoke.json \
		benchmarks/baseline_smoke.json --update

experiments:
	python -m repro.bench

experiments-full:
	python -m repro.bench --full

examples:
	python examples/quickstart.py
	python examples/order_maintenance.py
	python examples/dynamic_editor.py
	python examples/persistent_store.py
	python examples/relational_hosting.py
