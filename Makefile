# Convenience targets for the repro library.

.PHONY: install test lint ci bench experiments experiments-full examples

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# The paper-invariant static checker (RPR001-RPR005); exits non-zero on
# any non-baselined finding.  See docs/STATIC_ANALYSIS.md.
lint:
	PYTHONPATH=src python -m repro.analysis src benchmarks examples

# What CI runs: the analyzer, then the tier-1 suite.
ci: lint
	PYTHONPATH=src python -m pytest -x -q

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.bench

experiments-full:
	python -m repro.bench --full

examples:
	python examples/quickstart.py
	python examples/order_maintenance.py
	python examples/dynamic_editor.py
	python examples/persistent_store.py
	python examples/relational_hosting.py
