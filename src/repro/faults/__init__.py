"""Deterministic fault injection for robustness testing.

The package follows the seeded fault-plan + oracle-comparison pattern:
arm a :class:`FaultPlan` on the process-wide :data:`FAULTS` registry,
run an update, and compare the rolled-back state against a fault-free
oracle.  Sites pay one attribute check when nothing is armed, so the
instrumentation is free in production paths.

See ``docs/ROBUSTNESS.md`` for the fault-plan format and the chaos
matrix that sweeps schemes x sites x seeds in CI (``make chaos``).
"""

from repro.errors import (
    InjectedFault,
    PersistentFault,
    SimulatedCrash,
    TransientFault,
)
from repro.faults.plan import (
    CRASH,
    KNOWN_SITES,
    PERSISTENT,
    SERVICE_FAULT_SITES,
    TRANSIENT,
    WAL_CRASH_SITES,
    FaultPlan,
    FaultPoint,
)
from repro.faults.registry import FAULTS, FaultRegistry
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "FAULTS",
    "FaultRegistry",
    "FaultPlan",
    "FaultPoint",
    "KNOWN_SITES",
    "WAL_CRASH_SITES",
    "SERVICE_FAULT_SITES",
    "TRANSIENT",
    "PERSISTENT",
    "CRASH",
    "InjectedFault",
    "TransientFault",
    "PersistentFault",
    "SimulatedCrash",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
]
