"""The process-local fault registry and the instrumented-site hook.

Mirrors the :mod:`repro.obs` design: one module-level singleton
(:data:`FAULTS`), a plain ``enabled`` attribute so every instrumented
site pays exactly one attribute check when no plan is armed, and a
context manager (:meth:`FaultRegistry.armed`) that guarantees disarming
even when the injected fault propagates through the caller.

Instrumented code calls::

    if FAULTS.enabled:
        FAULTS.hit("pager.page_write", count=pages)

``hit`` counts site occurrences and raises the armed
:class:`~repro.errors.InjectedFault` subclass when the plan's ordinal
comes up.  Counting is *per armed plan*: arming resets every site
counter, so the k-th hit is always relative to the moment the plan was
armed — what makes a replayed plan deterministic.
"""

from __future__ import annotations

from typing import Iterator
from contextlib import contextmanager

from repro.faults.plan import FaultPlan
from repro.obs import OBS

__all__ = ["FaultRegistry", "FAULTS"]


class FaultRegistry:
    """Counts instrumented-site hits and raises armed faults."""

    __slots__ = ("enabled", "_plan", "_hits")

    def __init__(self) -> None:
        self.enabled = False
        self._plan: FaultPlan | None = None
        self._hits: dict[str, int] = {}

    # -- arming ------------------------------------------------------------

    def arm(self, plan: FaultPlan) -> None:
        """Install ``plan`` and reset every site counter."""
        self._plan = plan
        self._hits = {}
        self.enabled = True

    def disarm(self) -> None:
        """Remove the plan; instrumented sites go back to one attribute
        check of overhead."""
        self._plan = None
        self._hits = {}
        self.enabled = False

    @contextmanager
    def armed(self, plan: FaultPlan) -> Iterator["FaultRegistry"]:
        """Arm ``plan`` for the duration of a ``with`` block."""
        self.arm(plan)
        try:
            yield self
        finally:
            self.disarm()

    @property
    def plan(self) -> FaultPlan | None:
        return self._plan

    # -- the instrumented-site hook ----------------------------------------

    def hit(self, site: str, count: int = 1) -> None:
        """Record ``count`` occurrences of ``site``; raise if armed.

        When the armed ordinal falls inside the batch, the counter is
        advanced to the raising occurrence before the fault propagates,
        so a retry of the same batch sees fresh ordinals (transients
        clear; persistents keep firing).
        """
        if not self.enabled:
            return
        plan = self._plan
        if plan is None:
            return
        point = plan.point_for(site)
        seen = self._hits.get(site, 0)
        if point is None:
            self._hits[site] = seen + count
            return
        for ordinal in range(seen + 1, seen + count + 1):
            error = point.error_for(ordinal)
            if error is not None:
                self._hits[site] = ordinal
                OBS.inc("faults.injected")
                raise error
        self._hits[site] = seen + count

    def hits_of(self, site: str) -> int:
        """Occurrences of ``site`` counted since the plan was armed."""
        return self._hits.get(site, 0)


FAULTS = FaultRegistry()
"""The registry every instrumented site consults (one per process)."""
