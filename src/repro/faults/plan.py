"""Deterministic fault plans: *where* and *when* an injected fault fires.

A :class:`FaultPoint` arms one instrumented site — e.g. the k-th page
write of a run — with a transient or persistent failure.  A
:class:`FaultPlan` is an ordered collection of points plus the seed that
produced it, so a failing chaos cell can be serialized (``to_dict``),
uploaded as a CI artifact, and replayed bit-for-bit (``from_dict``).

The known sites are the four the update path exercises:

========================  ====================================================
site                      instrumented in
========================  ====================================================
``pager.page_write``      :meth:`repro.storage.pager.PageStore` mutation paths
                          (one hit per page written; retried when transient)
``label.write``           :meth:`repro.labeling.base.LabeledDocument.set_label`
``middle.assign``         :func:`repro.core.middle.assign_middle_binary_string`
``relabel.step``          the per-node loop of every scheme's re-label fallback
========================  ====================================================

Sites are plain strings, so experiments can add ad-hoc ones without
registration ceremony — but :data:`KNOWN_SITES` is what the chaos
matrix sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import (
    InjectedFault,
    PersistentFault,
    SimulatedCrash,
    TransientFault,
)

__all__ = [
    "KNOWN_SITES",
    "WAL_CRASH_SITES",
    "SERVICE_FAULT_SITES",
    "TRANSIENT",
    "PERSISTENT",
    "CRASH",
    "FaultPoint",
    "FaultPlan",
]

KNOWN_SITES: tuple[str, ...] = (
    "pager.page_write",
    "label.write",
    "middle.assign",
    "relabel.step",
)

#: The durability sites :class:`repro.wal.WalManager` passes through on
#: every commit/checkpoint.  A ``CRASH`` point at one of these models the
#: process dying with the WAL buffer (volatile) lost and everything the
#: manager already fsync'd preserved — the crash matrix sweeps them.
WAL_CRASH_SITES: tuple[str, ...] = (
    "wal.append",
    "wal.fsync",
    "wal.checkpoint_write",
    "wal.checkpoint_truncate",
)

#: Sites on the document service's self-healing path.  ``service.recover``
#: fires once per :meth:`repro.service.writer.DocumentWriter.recover`
#: attempt (a crash there models the process dying *during* recovery —
#: the writer must land back in ``crashed``, healable by the next try);
#: ``service.dedup`` fires once per acknowledged batch, before the
#: retry-dedup table records the batch's request ids (a crash there is
#: post-fsync: the batch is durable but never acked, the post-commit
#: class the recovery matrix already knows).
SERVICE_FAULT_SITES: tuple[str, ...] = (
    "service.recover",
    "service.dedup",
)

TRANSIENT = "transient"
PERSISTENT = "persistent"
CRASH = "crash"
_KINDS = (TRANSIENT, PERSISTENT, CRASH)


@dataclass(frozen=True)
class FaultPoint:
    """One armed failure: the ``at``-th hit of ``site`` raises.

    Args:
        site: instrumented site name (see :data:`KNOWN_SITES`).
        at: 1-based hit ordinal that triggers the fault.
        kind: ``"transient"`` (clears after ``fires`` raises — a retry
            may succeed), ``"persistent"`` (every hit >= ``at`` raises —
            retries are futile), or ``"crash"`` (every hit >= ``at``
            raises :class:`~repro.errors.SimulatedCrash` — the process is
            dead; nothing catches or retries it).
        fires: transient only — how many consecutive hits fail before
            the site recovers.  ``fires`` below a retry policy's budget
            models a blip the store absorbs; at or above it, the
            exhausted retry propagates.
    """

    site: str
    at: int = 1
    kind: str = TRANSIENT
    fires: int = 1

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError(f"fault ordinal must be >= 1, got {self.at}")
        if self.kind not in _KINDS:
            raise ValueError(
                f"fault kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.fires < 1:
            raise ValueError(f"fires must be >= 1, got {self.fires}")

    def error_for(self, hit: int) -> InjectedFault | None:
        """The exception the ``hit``-th site hit should raise, if any."""
        if hit < self.at:
            return None
        if self.kind == CRASH:
            # Like persistent: once the process "died" at this site, any
            # later hit within the same armed plan dies too.
            return SimulatedCrash(self.site, hit)
        if self.kind == PERSISTENT:
            return PersistentFault(self.site, hit)
        if hit < self.at + self.fires:
            return TransientFault(self.site, hit)
        return None

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "at": self.at,
            "kind": self.kind,
            "fires": self.fires,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPoint":
        return cls(
            site=data["site"],
            at=int(data.get("at", 1)),
            kind=data.get("kind", TRANSIENT),
            fires=int(data.get("fires", 1)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of fault points, tagged with its seed.

    Plans are immutable and serializable so that the chaos harness can
    write every *failing* cell's plan to its artifact file; re-arming
    the deserialized plan replays the identical failure.
    """

    points: tuple[FaultPoint, ...] = ()
    seed: int | None = None
    note: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        sites = [point.site for point in self.points]
        if len(sites) != len(set(sites)):
            raise ValueError(
                "a plan arms each site at most once; split multi-fault "
                "scenarios across sequential plans"
            )

    @classmethod
    def single(
        cls,
        site: str,
        at: int = 1,
        *,
        kind: str = PERSISTENT,
        fires: int = 1,
        note: str = "",
    ) -> "FaultPlan":
        """The common one-site plan chaos cells use."""
        return cls(
            points=(FaultPoint(site, at, kind, fires),), note=note
        )

    @classmethod
    def crash(cls, site: str, at: int = 1, *, note: str = "") -> "FaultPlan":
        """A process-death plan: the ``at``-th hit of ``site`` raises
        :class:`~repro.errors.SimulatedCrash` (see :data:`WAL_CRASH_SITES`)."""
        return cls(points=(FaultPoint(site, at, CRASH),), note=note)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        sites: tuple[str, ...] = KNOWN_SITES,
        max_at: int = 8,
        kind: str = PERSISTENT,
    ) -> "FaultPlan":
        """Derive one pseudo-random single-site plan from ``seed``.

        Deterministic: the same seed always arms the same (site, at)
        pair, which is how a chaos sweep turns a seed list into a
        reproducible fault matrix without enumerating every ordinal.
        """
        rng = random.Random(seed)
        site = sites[rng.randrange(len(sites))]
        at = rng.randint(1, max_at)
        return cls(
            points=(FaultPoint(site, at, kind),),
            seed=seed,
            note=f"seeded({seed})",
        )

    def point_for(self, site: str) -> FaultPoint | None:
        for point in self.points:
            if point.site == site:
                return point
        return None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "note": self.note,
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            points=tuple(
                FaultPoint.from_dict(entry)
                for entry in data.get("points", [])
            ),
            seed=data.get("seed"),
            note=data.get("note", ""),
        )
