"""Bounded retry with modeled exponential backoff.

Real storage engines absorb transient write failures by retrying with
backoff; the page store does the same for :class:`TransientFault`.  The
backoff is *modeled* (seconds are computed, never slept — rule RPR006
keeps wall clocks out of library code, and tests must stay fast): the
caller folds :meth:`RetryPolicy.backoff_seconds` into its I/O cost the
same way :class:`~repro.storage.pager.IOCostModel` charges page time.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient fault, and at what cost.

    Attributes:
        max_attempts: total tries including the first (so 3 means the
            original attempt plus two retries).
        backoff_base_seconds: modeled delay before the first retry.
        backoff_factor: multiplier per subsequent retry (exponential).
    """

    max_attempts: int = 3
    backoff_base_seconds: float = 0.001
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be non-negative")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_seconds(self, retry: int) -> float:
        """Modeled delay before the ``retry``-th retry (1-based)."""
        if retry < 1:
            raise ValueError(f"retry ordinal must be >= 1, got {retry}")
        return self.backoff_base_seconds * self.backoff_factor ** (retry - 1)

    def total_backoff_seconds(self, retries: int) -> float:
        """Modeled delay accumulated over ``retries`` retries."""
        return sum(
            self.backoff_seconds(retry) for retry in range(1, retries + 1)
        )


DEFAULT_RETRY_POLICY = RetryPolicy()
"""The page store's default: 3 attempts, 1 ms doubling backoff."""
