"""WAL frame and record codec: CRC-32-framed, length-prefixed redo records.

On disk a log is a concatenation of frames::

    frame   := b"WF" <payload_len:u32> <crc32(payload):u32> <payload>
    payload := <lsn:u64> <header_len:u32> <header json, utf-8> <label blob>

The JSON header carries the logical redo operation — op kind, scheme
name, and a list of positional sub-operations (one per engine-level
half-op; ``move_before`` logs two).  The binary label blob concatenates
each sub-op's freshly-minted labels, encoded with the scheme's
:func:`repro.storage.encoding.make_label_codec` stream codec — the same
bit-exact framing the bundle format uses.  Recovery replays the logical
sub-ops through the (deterministic) scheme and uses the recorded label
bytes as a divergence check; the blob length is also the paper-facing
"durable footprint" measurement (DESIGN.md §9).

Two parsing surfaces:

* :func:`decode_frames` / :func:`decode_record` are *strict*: any
  malformation raises :class:`WalError`.
* :func:`scan_frames` is *tolerant*: it parses the longest valid prefix
  and reports why it stopped.  It never resynchronizes past a bad
  frame — bytes after the first corruption are unreachable by design,
  which is what makes torn-tail recovery safe (a valid-looking frame
  after a torn one could be a stale remnant of a truncated-then-reused
  log).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "WalError",
    "WalRecord",
    "FRAME_MAGIC",
    "FRAME_HEADER_BYTES",
    "encode_frame",
    "encode_record",
    "decode_record",
    "decode_frames",
    "scan_frames",
    "TailStatus",
]

FRAME_MAGIC = b"WF"
_FRAME_HEAD = struct.Struct(">2sII")  # magic, payload length, payload CRC-32
_PAYLOAD_HEAD = struct.Struct(">QI")  # lsn, header length
FRAME_HEADER_BYTES = _FRAME_HEAD.size

#: Sub-op keys that carry binary label bytes out-of-band of the JSON
#: header ("labels" in the decoded dict, "labels_len" in the header).
_BLOB_KEY = "labels"


class WalError(ReproError):
    """A WAL frame, record, or log directory is malformed."""


@dataclass(frozen=True)
class WalRecord:
    """One committed transaction's redo record.

    ``subops`` is a list of dicts; each has a ``kind`` key:

    * ``{"kind": "insert", "parent": int, "index": int, "xml": [str],
      "labels": bytes}`` — one subtree inserted at
      ``parent.children[index]`` (``parent`` is the parent's document-
      order position *at apply time*).
    * ``{"kind": "insert_run", ...}`` — same shape, several roots.
    * ``{"kind": "delete", "root": int}`` — the subtree rooted at
      document-order position ``root`` removed.
    """

    lsn: int
    op: str
    scheme: str
    subops: tuple = field(default_factory=tuple)
    #: Optional client idempotency key.  Encoded as ``"rid"`` in the
    #: frame header only when present, so records without one are
    #: byte-identical to the pre-``request_id`` format (old logs decode
    #: to ``request_id=None``).
    request_id: "str | None" = None

    def label_bytes(self) -> int:
        """Total encoded-label payload — the paper's durable delta."""
        return sum(len(subop.get(_BLOB_KEY, b"")) for subop in self.subops)


@dataclass(frozen=True)
class TailStatus:
    """Why a tolerant scan stopped.

    ``clean`` means the log ended exactly at a frame boundary;
    otherwise ``reason`` says what was wrong with the bytes starting at
    ``valid_bytes`` (the torn tail recovery should truncate away).
    """

    clean: bool
    valid_bytes: int
    dropped_bytes: int = 0
    reason: str = ""


def encode_record(record: WalRecord) -> bytes:
    """Serialize a record to a frame payload (no frame envelope)."""
    header_subops = []
    blobs = []
    for subop in record.subops:
        entry = {k: v for k, v in subop.items() if k != _BLOB_KEY}
        blob = subop.get(_BLOB_KEY, b"")
        entry["labels_len"] = len(blob)
        header_subops.append(entry)
        blobs.append(blob)
    header_fields = {
        "op": record.op,
        "scheme": record.scheme,
        "subops": header_subops,
    }
    if record.request_id is not None:
        header_fields["rid"] = record.request_id
    header = json.dumps(header_fields, separators=(",", ":")).encode("utf-8")
    return (
        _PAYLOAD_HEAD.pack(record.lsn, len(header)) + header + b"".join(blobs)
    )


def decode_record(payload: bytes) -> WalRecord:
    """Parse a frame payload back into a :class:`WalRecord`.

    Raises:
        WalError: short payload, undecodable header JSON, or a label
            blob shorter than the header's ``labels_len`` fields claim.
    """
    if len(payload) < _PAYLOAD_HEAD.size:
        raise WalError(
            f"record payload is {len(payload)} bytes, need at least "
            f"{_PAYLOAD_HEAD.size}"
        )
    lsn, header_len = _PAYLOAD_HEAD.unpack_from(payload)
    header_end = _PAYLOAD_HEAD.size + header_len
    if header_end > len(payload):
        raise WalError(
            f"record header claims {header_len} bytes but only "
            f"{len(payload) - _PAYLOAD_HEAD.size} remain"
        )
    try:
        header = json.loads(payload[_PAYLOAD_HEAD.size : header_end])
        op = header["op"]
        scheme = header["scheme"]
        raw_subops = header["subops"]
        request_id = header.get("rid")
        if not isinstance(raw_subops, list):
            raise TypeError("subops must be a list")
        if request_id is not None and not isinstance(request_id, str):
            raise TypeError("rid must be a string")
    except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError) as e:
        raise WalError(f"undecodable record header for lsn region: {e}") from e
    subops = []
    cursor = header_end
    for entry in raw_subops:
        try:
            blob_len = int(entry.pop("labels_len", 0))
        except (TypeError, ValueError, AttributeError) as error:
            raise WalError("malformed sub-op in record header") from error
        if blob_len < 0 or cursor + blob_len > len(payload):
            raise WalError(
                f"label blob overruns the record payload "
                f"({cursor + blob_len} > {len(payload)})"
            )
        entry[_BLOB_KEY] = payload[cursor : cursor + blob_len]
        cursor += blob_len
        subops.append(entry)
    if cursor != len(payload):
        raise WalError(
            f"{len(payload) - cursor} trailing bytes after the last sub-op"
        )
    return WalRecord(
        lsn=lsn,
        op=op,
        scheme=scheme,
        subops=tuple(subops),
        request_id=request_id,
    )


def encode_frame(payload: bytes) -> bytes:
    """Wrap a record payload in the on-disk frame envelope."""
    return _FRAME_HEAD.pack(FRAME_MAGIC, len(payload), zlib.crc32(payload)) + (
        payload
    )


def scan_frames(data: bytes) -> tuple[list[bytes], TailStatus]:
    """Tolerantly parse ``data`` into frame payloads plus a tail status.

    Returns the payloads of every frame up to (not including) the first
    corruption — bad magic, a short/torn frame, or a CRC mismatch — and
    a :class:`TailStatus` saying where the valid prefix ends.  Never
    raises on corrupt input and never skips ahead to a later
    valid-looking frame.
    """
    payloads: list[bytes] = []
    offset = 0
    total = len(data)
    while offset < total:
        remaining = total - offset
        if remaining < _FRAME_HEAD.size:
            return payloads, _torn(offset, total, "short frame header")
        magic, length, checksum = _FRAME_HEAD.unpack_from(data, offset)
        if magic != FRAME_MAGIC:
            return payloads, _torn(offset, total, "bad frame magic")
        body_start = offset + _FRAME_HEAD.size
        if length > remaining - _FRAME_HEAD.size:
            return payloads, _torn(offset, total, "torn frame body")
        payload = data[body_start : body_start + length]
        if zlib.crc32(payload) != checksum:
            return payloads, _torn(offset, total, "frame CRC mismatch")
        payloads.append(payload)
        offset = body_start + length
    return payloads, TailStatus(clean=True, valid_bytes=total)


def _torn(valid: int, total: int, reason: str) -> TailStatus:
    return TailStatus(
        clean=False,
        valid_bytes=valid,
        dropped_bytes=total - valid,
        reason=reason,
    )


def decode_frames(data: bytes) -> list[WalRecord]:
    """Strictly parse a whole log image; any corruption raises.

    The ``inspect`` CLI and tests use this; recovery goes through
    :func:`scan_frames` + :func:`decode_record` so a torn tail is
    truncated instead of fatal.
    """
    payloads, tail = scan_frames(data)
    if not tail.clean:
        raise WalError(
            f"log corrupt at byte {tail.valid_bytes}: {tail.reason} "
            f"({tail.dropped_bytes} bytes dropped)"
        )
    return [decode_record(payload) for payload in payloads]
