"""Write-ahead logging, checkpointing, and crash recovery.

The durability layer for :class:`repro.updates.UpdateEngine`
(``durability="wal"``): every committed transaction appends one
CRC-framed redo record whose size is proportional to the *label delta*
(the paper's Section 4 claim made durable), checkpoints bound the log,
and :func:`recover` rebuilds a process-equivalent state from the
directory alone — tolerating a torn tail and replaying idempotently.

See ``docs/ROBUSTNESS.md`` ("Durability") for the record format, the
checkpoint policy, the recovery algorithm, and the crash-matrix cell
semantics (``make crash``).  CLI: ``python -m repro.wal inspect <dir>``.
"""

from repro.wal.frames import (
    FRAME_HEADER_BYTES,
    FRAME_MAGIC,
    TailStatus,
    WalError,
    WalRecord,
    decode_frames,
    decode_record,
    encode_frame,
    encode_record,
    scan_frames,
)
from repro.wal.recovery import RecoveryReport, recover
from repro.wal.writer import (
    LOG_NAME,
    BatchReceipt,
    CheckpointReceipt,
    CommitReceipt,
    WalManager,
    checkpoint_files,
    checkpoint_watermark,
)

__all__ = [
    "WalError",
    "WalRecord",
    "TailStatus",
    "FRAME_MAGIC",
    "FRAME_HEADER_BYTES",
    "encode_frame",
    "encode_record",
    "decode_frames",
    "decode_record",
    "scan_frames",
    "WalManager",
    "CommitReceipt",
    "CheckpointReceipt",
    "BatchReceipt",
    "LOG_NAME",
    "checkpoint_files",
    "checkpoint_watermark",
    "recover",
    "RecoveryReport",
]
