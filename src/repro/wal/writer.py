"""The WAL manager: commit logging, fsync modeling, and checkpointing.

:class:`WalManager` owns one log directory::

    <dir>/wal.log                    the redo log (frames, append-only)
    <dir>/ckpt-<watermark>.labels    labelfile-v2 checkpoint bundles

Durability protocol (single writer, redo-only):

* **Commit.**  The engine's transaction calls :meth:`commit` from its
  commit hook.  The frame is first staged in a volatile in-process
  buffer (site ``wal.append``), then appended to ``wal.log`` with
  ``flush`` + ``os.fsync`` (site ``wal.fsync``).  A simulated crash at
  either site loses the record — the op was never acknowledged, so
  recovery correctly omits it.  Only after the fsync returns is the
  operation durable (and only then is anything charged to the ledger).
* **Checkpoint.**  Every K commits or B log bytes (:meth:`maybe_checkpoint`,
  driven by the engine *after* the transaction commits), the manager
  writes a full bundle at the current watermark (site
  ``wal.checkpoint_write``; the write itself is atomic via
  :func:`repro.storage.atomicio.atomic_write_bytes`), then truncates the
  log (site ``wal.checkpoint_truncate``, also an atomic replace) and
  unlinks older bundles.  A crash between the two leaves the new bundle
  *and* the full log: recovery skips records at or below the bundle's
  watermark — the idempotency path.
* **Reopen.**  Constructing a manager over an existing directory scans
  the log tolerantly, physically truncates a torn tail, and resumes LSN
  assignment after the highest durable record.

Costs: each fsync is modeled as sequential page writes through the
same :class:`~repro.storage.pager.IOCostModel` the page store uses, and
shows up in ``UpdateResult.io_seconds``/``costs`` via the engine's
commit scope; checkpoints charge the ledger directly (they amortize
across commits and belong to no single update).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults import FAULTS
from repro.obs import OBS
from repro.storage.atomicio import atomic_write_bytes
from repro.storage.encoding import make_label_codec
from repro.storage.labelfile import save_labeled
from repro.storage.pager import DEFAULT_PAGE_BYTES, IOCostModel
from repro.wal.frames import (
    WalError,
    WalRecord,
    decode_record,
    encode_frame,
    encode_record,
    scan_frames,
)

__all__ = [
    "WalManager",
    "CommitReceipt",
    "CheckpointReceipt",
    "BatchReceipt",
    "LOG_NAME",
    "checkpoint_files",
    "checkpoint_watermark",
]

LOG_NAME = "wal.log"
_CKPT_RE = re.compile(r"^ckpt-(\d+)\.labels$")


def checkpoint_files(directory: "str | Path") -> list[tuple[int, Path]]:
    """All checkpoint bundles in ``directory``, newest watermark first.

    Tolerant of edge states a crash (or an operator) can leave behind:
    a missing directory scans as empty, and entries whose *name* matches
    the bundle pattern but which are not regular files (a directory, a
    dangling symlink) are skipped — recovery and pruning must never
    trip over them.
    """
    found = []
    try:
        entries = list(Path(directory).iterdir())
    except FileNotFoundError:
        return []
    for path in entries:
        match = _CKPT_RE.match(path.name)
        if match and path.is_file():
            found.append((int(match.group(1)), path))
    found.sort(key=lambda entry: entry[0], reverse=True)
    return found


def checkpoint_watermark(path: "str | Path") -> int:
    """The LSN watermark encoded in a checkpoint bundle's file name."""
    match = _CKPT_RE.match(Path(path).name)
    if match is None:
        raise WalError(f"{path}: not a checkpoint bundle name")
    return int(match.group(1))


@dataclass(frozen=True)
class CommitReceipt:
    """What one durable commit cost (folded into ``UpdateResult``)."""

    lsn: int
    frame_bytes: int
    io_seconds: float
    charges: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class BatchReceipt:
    """One group-commit batch: N coalesced commits behind a single fsync.

    ``io_seconds`` is the cost of the one shared fsync; dividing it (and
    the single ``wal.fsyncs`` unit in ``charges``) by ``commits`` gives
    the amortized per-commit durability cost the service reports.
    """

    first_lsn: int
    last_lsn: int
    commits: int
    frame_bytes: int
    io_seconds: float
    charges: dict[str, int] = field(default_factory=dict)


class _OpenBatch:
    """Mutable accumulator for the commits staged since ``begin_batch``."""

    __slots__ = ("commits", "frame_bytes", "first_lsn", "last_lsn")

    def __init__(self) -> None:
        self.commits = 0
        self.frame_bytes = 0
        self.first_lsn = 0
        self.last_lsn = 0

    def absorb(self, lsn: int, frame_bytes: int) -> None:
        if self.commits == 0:
            self.first_lsn = lsn
        self.last_lsn = lsn
        self.commits += 1
        self.frame_bytes += frame_bytes


@dataclass(frozen=True)
class CheckpointReceipt:
    """One completed checkpoint: the new bundle and what it cost."""

    path: Path
    watermark: int
    bundle_bytes: int
    io_seconds: float
    charges: dict[str, int] = field(default_factory=dict)


class WalManager:
    """Append-only redo logging + checkpointing for one labeled document.

    Args:
        directory: the log directory (created if missing).  A fresh
            directory gets an initial checkpoint at watermark 0 so
            recovery always has a base state.
        labeled: the live document; checkpoints snapshot it, commits
            record labels minted by its scheme.
        io_model: per-page costs for fsync/checkpoint modeling
            (defaults to the page store's 8 ms/page).
        checkpoint_every_commits / checkpoint_every_bytes: the K/B
            checkpoint policy thresholds.
        page_bytes: page size used to convert byte counts to modeled
            page writes.
    """

    def __init__(
        self,
        directory: "str | Path",
        labeled,
        *,
        io_model: IOCostModel | None = None,
        checkpoint_every_commits: int = 64,
        checkpoint_every_bytes: int = 256 * 1024,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ) -> None:
        if checkpoint_every_commits < 1:
            raise ValueError("checkpoint_every_commits must be >= 1")
        if checkpoint_every_bytes < 1:
            raise ValueError("checkpoint_every_bytes must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.labeled = labeled
        self.io_model = io_model or IOCostModel()
        self.checkpoint_every_commits = checkpoint_every_commits
        self.checkpoint_every_bytes = checkpoint_every_bytes
        self.page_bytes = page_bytes
        self.log_path = self.directory / LOG_NAME
        self._buffer = bytearray()  # volatile: lost on SimulatedCrash
        self._batch: _OpenBatch | None = None
        self.next_lsn = 1
        self.commits_since_checkpoint = 0
        self.bytes_since_checkpoint = 0
        self._sweep_stray_temp_files()
        if checkpoint_files(self.directory):
            self._reopen()
        else:
            self.checkpoint()
            if not self.log_path.exists():
                atomic_write_bytes(self.log_path, b"")

    def _sweep_stray_temp_files(self) -> None:
        """Remove ``*.tmp`` leftovers of a crashed ``atomic_write_bytes``.

        The atomic-replace recipe guarantees a ``.tmp`` sibling is never
        a valid artifact (the ``os.replace`` happened or it did not), so
        a stray one is pure garbage — but left in place it confuses
        directory listings and operators, and a *directory* squatting on
        a bundle-like name must simply be ignored (``checkpoint_files``
        skips non-regular entries).
        """
        try:
            entries = list(self.directory.iterdir())
        except FileNotFoundError:
            return
        for path in entries:
            if path.name.endswith(".tmp") and path.is_file():
                try:
                    path.unlink()
                except OSError:
                    # Best-effort: a locked stray file is still inert.
                    continue

    # -- logging -----------------------------------------------------------

    def encode_subtree_labels(self, labeled, roots) -> bytes:
        """The bit-exact byte image of every label under ``roots``.

        This is the record's "delta" payload: for a CDBS insert it is
        exactly the freshly-minted labels (existing labels are untouched
        — the paper's Section 4 claim), so its size is the durable
        footprint DESIGN.md §9 measures.
        """
        labels = [
            labeled.label_of(node)
            for root in roots
            for node in root.pre_order()
        ]
        # Built per call, not cached: a relabel fallback can widen the
        # scheme codec's length field mid-run, and the stream framing
        # must track the state the labels were minted under.
        return make_label_codec(labeled.scheme).encode(labels)

    def commit(
        self,
        op: str,
        subops: list[dict],
        request_id: "str | None" = None,
    ) -> CommitReceipt:
        """Log one committed transaction; returns its receipt.

        Outside a batch the commit is immediately durable: the frame is
        appended and ``flush`` + ``os.fsync`` runs before this returns.
        Inside an open batch (:meth:`begin_batch`) the frame only
        reaches the volatile buffer — the fsync is deferred to
        :meth:`end_batch`, the receipt carries no fsync charge (the
        batch receipt does), and the caller must not acknowledge the
        commit until that batch fsync has returned.

        Raises whatever the armed fault plan injects at ``wal.append``
        (before the frame reaches the volatile buffer) or ``wal.fsync``
        (before the buffer reaches the file): in both cases nothing of
        this record is on disk afterwards.
        """
        record = WalRecord(
            lsn=self.next_lsn,
            op=op,
            scheme=self.labeled.scheme.name,
            subops=tuple(subops),
            request_id=request_id,
        )
        frame = encode_frame(encode_record(record))
        if FAULTS.enabled:
            FAULTS.hit("wal.append")
        self._buffer += frame
        batch = self._batch
        if batch is None:
            if FAULTS.enabled:
                FAULTS.hit("wal.fsync")
            self._flush()
        else:
            batch.absorb(record.lsn, len(frame))
        self.next_lsn += 1
        self.commits_since_checkpoint += 1
        self.bytes_since_checkpoint += len(frame)
        charges = {
            "wal.records_appended": 1,
            "wal.bytes_appended": len(frame),
        }
        if batch is None:
            charges["wal.fsyncs"] = 1
            pages = self._pages_for(len(frame))
            io_seconds = self.io_model.cost(0, pages)
        else:
            io_seconds = 0.0
        if OBS.enabled:
            with OBS.span("wal.commit", op=op):
                for unit, amount in charges.items():
                    OBS.charge(unit, amount)
        return CommitReceipt(
            lsn=record.lsn,
            frame_bytes=len(frame),
            io_seconds=io_seconds,
            charges=charges,
        )

    # -- group commit ------------------------------------------------------

    @property
    def in_batch(self) -> bool:
        """True while a group-commit batch is open."""
        return self._batch is not None

    def begin_batch(self) -> None:
        """Start coalescing commits: appends buffer, the fsync waits.

        Until :meth:`end_batch`, every :meth:`commit` is staged in the
        volatile buffer only.  A crash in that window loses the staged
        records — which is exactly the contract: none of them may be
        acknowledged before the batch fsync returns.
        """
        if self._batch is not None:
            raise WalError("a commit batch is already open")
        self._batch = _OpenBatch()

    def end_batch(self) -> BatchReceipt | None:
        """Durably flush the open batch with one fsync; fan out receipts.

        Returns ``None`` when the batch staged nothing (no fsync is
        issued for an empty batch).  Raises whatever the armed fault
        plan injects at ``wal.fsync`` — the staged records are then
        still volatile, so a simulated crash there loses the whole
        (unacknowledged) batch.
        """
        batch = self._batch
        if batch is None:
            raise WalError("no commit batch is open")
        try:
            if batch.commits == 0:
                return None
            if FAULTS.enabled:
                FAULTS.hit("wal.fsync")
            self._flush()
        finally:
            self._batch = None
        pages = self._pages_for(batch.frame_bytes)
        io_seconds = self.io_model.cost(0, pages)
        charges = {
            "wal.fsyncs": 1,
            "wal.batches": 1,
            "wal.batch_commits": batch.commits,
        }
        if OBS.enabled:
            with OBS.span("wal.batch", op="batch"):
                for unit, amount in charges.items():
                    OBS.charge(unit, amount)
        return BatchReceipt(
            first_lsn=batch.first_lsn,
            last_lsn=batch.last_lsn,
            commits=batch.commits,
            frame_bytes=batch.frame_bytes,
            io_seconds=io_seconds,
            charges=charges,
        )

    def abandon_batch(self) -> None:
        """Close an open batch without flushing (the crash/failure path).

        The staged frames stay in the volatile buffer but are never
        fsync'd by this call; the caller owns what happens to the
        document next (the service quarantines it — memory and disk can
        no longer be proven to agree).  Safe to call when no batch is
        open.
        """
        self._batch = None

    def _flush(self) -> None:
        """Move the volatile buffer to the durable log (append + fsync)."""
        if not self._buffer:
            return
        with open(self.log_path, "ab") as handle:
            handle.write(bytes(self._buffer))
            handle.flush()
            os.fsync(handle.fileno())
        self._buffer.clear()

    def _pages_for(self, byte_count: int) -> int:
        return max(1, -(-byte_count // self.page_bytes))

    # -- checkpointing -----------------------------------------------------

    def maybe_checkpoint(self) -> CheckpointReceipt | None:
        """Checkpoint if the K-commits / B-bytes policy says it is due."""
        if (
            self.commits_since_checkpoint < self.checkpoint_every_commits
            and self.bytes_since_checkpoint < self.checkpoint_every_bytes
        ):
            return None
        return self.checkpoint()

    def checkpoint(self) -> CheckpointReceipt:
        """Write a bundle at the current watermark, then truncate the log.

        Ordering is the safety argument: the bundle lands (atomically)
        *before* the log shrinks, so a crash at either fault site
        leaves a recoverable pair — old bundle + full log, or new
        bundle + full log (recovery skips the already-covered prefix).
        """
        if self._batch is not None:
            raise WalError(
                "cannot checkpoint inside an open commit batch: the "
                "watermark would cover staged records that are not yet "
                "durable — end_batch() first"
            )
        watermark = self.next_lsn - 1
        if FAULTS.enabled:
            FAULTS.hit("wal.checkpoint_write")
        path = self.directory / f"ckpt-{watermark:016d}.labels"
        bundle_bytes = save_labeled(self.labeled, path)
        if FAULTS.enabled:
            FAULTS.hit("wal.checkpoint_truncate")
        atomic_write_bytes(self.log_path, b"")
        for old_watermark, old_path in checkpoint_files(self.directory):
            if old_watermark < watermark:
                old_path.unlink()
        self.commits_since_checkpoint = 0
        self.bytes_since_checkpoint = 0
        pages = self._pages_for(bundle_bytes) + 1  # bundle + log truncate
        io_seconds = self.io_model.cost(0, pages)
        charges = {
            "wal.checkpoints": 1,
            "wal.checkpoint_bytes": bundle_bytes,
        }
        if OBS.enabled:
            for unit, amount in charges.items():
                OBS.charge(unit, amount)
        return CheckpointReceipt(
            path=path,
            watermark=watermark,
            bundle_bytes=bundle_bytes,
            io_seconds=io_seconds,
            charges=charges,
        )

    # -- reopen ------------------------------------------------------------

    def _reopen(self) -> None:
        """Resume over an existing directory: fix the tail, continue LSNs."""
        watermark = checkpoint_files(self.directory)[0][0]
        data = self.log_path.read_bytes() if self.log_path.exists() else b""
        payloads, tail = scan_frames(data)
        if not tail.clean:
            # Drop the torn tail for good: later appends must not
            # resurrect garbage between two valid frames.
            atomic_write_bytes(self.log_path, data[: tail.valid_bytes])
            if OBS.enabled:
                OBS.inc("wal.tails_truncated")
        last_lsn = watermark
        if payloads:
            # Frames are appended in LSN order; the last one wins.
            try:
                last_lsn = max(last_lsn, decode_record(payloads[-1]).lsn)
            except WalError:
                # CRC-valid but undecodable: treat like a torn tail.
                pass
        self.next_lsn = last_lsn + 1
        self.commits_since_checkpoint = max(0, last_lsn - watermark)
        self.bytes_since_checkpoint = (
            self.log_path.stat().st_size if self.log_path.exists() else 0
        )
