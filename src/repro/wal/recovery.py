"""Crash recovery: newest valid checkpoint + idempotent redo replay.

:func:`recover` rebuilds a process-equivalent labeled document from a
WAL directory alone:

1. **Base state** — load the newest checkpoint bundle that passes the
   labelfile-v2 CRC; a corrupt newest bundle (crash mid-cleanup, bit
   rot) falls back to the next-newest instead of failing.
2. **Replay** — scan ``wal.log`` tolerantly, decode each frame, skip
   records whose LSN is at or below the bundle's watermark (they are
   already inside the checkpoint — the idempotency rule), and re-apply
   the rest *in LSN order* through the scheme's deterministic update
   operations.
3. **Torn tail** — the first bad CRC / short frame / undecodable
   record ends the replay; everything before it is applied, everything
   after it is reported as dropped, and nothing raises.  A record that
   *applies* but whose re-minted labels differ from the recorded label
   bytes is a real divergence (non-deterministic scheme or corrupted
   logic) and does raise :class:`WalError` — silently accepting it
   would hand back a state that never existed.

The module never imports :mod:`repro.updates`: replay drives the
labeling schemes directly, so recovery cannot depend on the engine
whose durability it implements (mirroring ``repro.verify``'s rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.labeling.base import LabeledDocument
from repro.obs import OBS
from repro.storage.encoding import make_label_codec
from repro.storage.labelfile import LabelFileError, load_labeled
from repro.wal.frames import WalError, WalRecord, decode_record, scan_frames
from repro.wal.writer import LOG_NAME, checkpoint_files
from repro.xmltree import parse_fragment

__all__ = ["recover", "RecoveryReport"]


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` rebuilt and how it got there."""

    labeled: LabeledDocument
    checkpoint_path: Path
    watermark: int
    last_lsn: int
    replayed: int
    skipped: int
    tail_dropped_bytes: int
    tail_reason: str
    #: ``(request_id, lsn)`` for every decodable log record that carried
    #: a client idempotency key — skipped *and* replayed, in LSN order.
    #: The service rebuilds its retry-dedup table from this, so a client
    #: retrying across a crash still gets "already applied" instead of a
    #: double-apply.  (Keys checkpointed-and-truncated away are gone;
    #: the table is bounded anyway, and a checkpoint implies the ack had
    #: time to reach the client.)
    request_ids: "tuple[tuple[str, int], ...]" = ()

    @property
    def tail_truncated(self) -> bool:
        return self.tail_dropped_bytes > 0


def recover(directory: "str | Path") -> RecoveryReport:
    """Rebuild the latest durable state from a WAL directory.

    Raises:
        WalError: no loadable checkpoint bundle exists, a replayed
            record references an impossible position, or replayed labels
            diverge from the recorded ones.  A torn log *tail* never
            raises — it bounds the replay instead.
    """
    directory = Path(directory)
    labeled, watermark, checkpoint_path = _load_newest_checkpoint(directory)
    log_path = directory / LOG_NAME
    data = log_path.read_bytes() if log_path.exists() else b""
    payloads, tail = scan_frames(data)

    replayed = skipped = 0
    last_lsn = watermark
    dropped = tail.dropped_bytes
    reason = tail.reason
    request_ids: list[tuple[str, int]] = []
    for index, payload in enumerate(payloads):
        try:
            record = decode_record(payload)
        except WalError as error:
            # CRC-valid but undecodable: bound the replay here, exactly
            # like a torn frame (scan_frames already refuses to look
            # past physical corruption; this is its logical twin).
            dropped += sum(len(p) for p in payloads[index:])
            reason = reason or f"undecodable record: {error}"
            break
        if record.lsn <= watermark:
            skipped += 1
            if record.request_id is not None:
                request_ids.append((record.request_id, record.lsn))
            continue
        if record.lsn != last_lsn + 1:
            dropped += sum(len(p) for p in payloads[index:])
            reason = reason or (
                f"LSN gap: expected {last_lsn + 1}, found {record.lsn}"
            )
            break
        _apply_record(labeled, record)
        last_lsn = record.lsn
        replayed += 1
        if record.request_id is not None:
            request_ids.append((record.request_id, record.lsn))
    if OBS.enabled:
        OBS.inc("wal.records_replayed", replayed)
        OBS.inc("wal.records_skipped", skipped)
    return RecoveryReport(
        labeled=labeled,
        checkpoint_path=checkpoint_path,
        watermark=watermark,
        last_lsn=last_lsn,
        replayed=replayed,
        skipped=skipped,
        tail_dropped_bytes=dropped,
        tail_reason=reason,
        request_ids=tuple(request_ids),
    )


def _load_newest_checkpoint(directory: Path):
    bundles = checkpoint_files(directory)
    if not bundles:
        raise WalError(f"{directory}: no checkpoint bundles to recover from")
    failures = []
    for watermark, path in bundles:
        try:
            return load_labeled(path), watermark, path
        except (LabelFileError, OSError) as error:
            failures.append(f"{path.name}: {error}")
    raise WalError(
        f"{directory}: no checkpoint bundle is loadable "
        f"({'; '.join(failures)})"
    )


def _node_at(labeled: LabeledDocument, position: int, record: WalRecord):
    order = labeled.nodes_in_order
    if not 0 <= position < len(order):
        raise WalError(
            f"record lsn={record.lsn} references position {position} in a "
            f"{len(order)}-node document — the log does not belong to "
            f"this checkpoint lineage"
        )
    return order[position]


def _apply_record(labeled, record: WalRecord) -> None:
    """Re-apply one redo record through the scheme's deterministic ops."""
    scheme = labeled.scheme
    if record.scheme != scheme.name:
        raise WalError(
            f"record lsn={record.lsn} was written by scheme "
            f"{record.scheme!r}, checkpoint uses {scheme.name!r}"
        )
    for subop in record.subops:
        try:
            kind = subop["kind"]
            if kind in ("insert", "insert_run"):
                parent = _node_at(labeled, subop["parent"], record)
                index = subop["index"]
                roots = [
                    parse_fragment(xml, keep_whitespace=True)
                    for xml in subop["xml"]
                ]
                if kind == "insert":
                    scheme.insert_subtree(labeled, parent, index, roots[0])
                else:
                    scheme.insert_run(labeled, parent, index, roots)
                _check_labels(labeled, roots, subop, record)
            elif kind == "delete":
                node = _node_at(labeled, subop["root"], record)
                scheme.delete_subtree(labeled, node)
            else:
                raise WalError(
                    f"record lsn={record.lsn}: unknown sub-op kind {kind!r}"
                )
        except WalError:
            raise
        except Exception as error:
            raise WalError(
                f"replaying record lsn={record.lsn} failed: {error!r}"
            ) from error


def _check_labels(labeled, roots, subop, record: WalRecord) -> None:
    """Replayed labels must be byte-identical to the logged delta.

    The codec is rebuilt per record: replaying an op that widened the
    scheme codec's length field leaves the recovered scheme in the same
    state the writer was in, so framing tracks it step for step.
    """
    replayed = make_label_codec(labeled.scheme).encode(
        [
            labeled.label_of(node)
            for root in roots
            for node in root.pre_order()
        ]
    )
    if replayed != subop.get("labels", b""):
        raise WalError(
            f"record lsn={record.lsn}: replayed labels diverge from the "
            f"logged label bytes — refusing to hand back a state that "
            f"never existed"
        )
