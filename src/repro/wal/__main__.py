"""CLI: inspect a WAL directory — frames, LSNs, CRC status.

Usage::

    python -m repro.wal inspect <dir> [--json]

Lists the checkpoint bundles (watermark, size) and every log frame the
tolerant scanner can reach: LSN, op kind, sub-op count, frame size, and
label-delta bytes.  A torn tail is reported, not fatal — the whole
point of the format is that the valid prefix stays readable.  Exit
status 0 for a clean log, 1 when the log has a torn/undecodable tail,
2 when the directory has no checkpoint lineage at all.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.wal.frames import WalError, decode_record, scan_frames
from repro.wal.writer import LOG_NAME, checkpoint_files


def inspect_dir(directory: "str | Path") -> dict:
    """The machine-readable inspection report ``--json`` prints."""
    directory = Path(directory)
    bundles = [
        {"file": path.name, "watermark": watermark, "bytes": path.stat().st_size}
        for watermark, path in checkpoint_files(directory)
    ]
    log_path = directory / LOG_NAME
    data = log_path.read_bytes() if log_path.exists() else b""
    payloads, tail = scan_frames(data)
    frames = []
    undecodable = 0
    for payload in payloads:
        try:
            record = decode_record(payload)
        except WalError as error:
            undecodable += 1
            frames.append({"crc": "ok", "error": str(error)})
            continue
        frames.append(
            {
                "crc": "ok",
                "lsn": record.lsn,
                "op": record.op,
                "scheme": record.scheme,
                "subops": len(record.subops),
                "frame_bytes": len(payload),
                "label_bytes": record.label_bytes(),
            }
        )
    return {
        "directory": str(directory),
        "checkpoints": bundles,
        "log_bytes": len(data),
        "frames": frames,
        "tail": {
            "clean": tail.clean and undecodable == 0,
            "valid_bytes": tail.valid_bytes,
            "dropped_bytes": tail.dropped_bytes,
            "reason": tail.reason,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.wal",
        description="Inspect a write-ahead-log directory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    inspect = sub.add_parser(
        "inspect", help="dump checkpoints, frames, LSNs and CRC status"
    )
    inspect.add_argument("directory", help="the WAL directory to inspect")
    inspect.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text lines",
    )
    args = parser.parse_args(argv)

    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"{directory}: not a directory", file=sys.stderr)
        return 2
    report = inspect_dir(directory)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for bundle in report["checkpoints"]:
            print(
                f"checkpoint {bundle['file']}  watermark={bundle['watermark']}"
                f"  {bundle['bytes']} bytes"
            )
        for frame in report["frames"]:
            if "error" in frame:
                print(f"frame crc=ok  UNDECODABLE: {frame['error']}")
            else:
                print(
                    f"frame crc=ok  lsn={frame['lsn']}  op={frame['op']}"
                    f"  subops={frame['subops']}  {frame['frame_bytes']} bytes"
                    f"  ({frame['label_bytes']} label bytes)"
                )
        tail = report["tail"]
        if tail["clean"]:
            print(
                f"log clean: {len(report['frames'])} frames, "
                f"{report['log_bytes']} bytes"
            )
        else:
            print(
                f"TORN TAIL at byte {tail['valid_bytes']}: {tail['reason']} "
                f"({tail['dropped_bytes']} bytes unreachable)"
            )
    if not report["checkpoints"]:
        print(f"{directory}: no checkpoint bundles", file=sys.stderr)
        return 2
    return 0 if report["tail"]["clean"] else 1


if __name__ == "__main__":
    sys.exit(main())
