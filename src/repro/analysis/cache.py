"""Incremental extraction cache keyed on file content hashes.

The expensive half of a run — parsing and per-file extraction — is pure
in the file's bytes, the analyzer's extraction-format version, and the
set of registered rules.  This cache memoizes that half: a warm
``make lint`` re-parses only files whose sha256 changed.  The cheap
half (call graph, effects, finalize, filtering) always re-runs, so
whole-program findings stay correct when *other* files change.

The cache file is a single JSON document; a version or rule-set
mismatch discards it wholesale.  All I/O is best-effort — a corrupt or
unwritable cache degrades to a cold run, never to an error.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

__all__ = ["ExtractionCache", "CACHE_FORMAT_VERSION", "content_hash"]

#: Bump when the extraction payload shape changes (facts fields, the
#: per-file finding set, suppression encoding...).
CACHE_FORMAT_VERSION = 1


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ExtractionCache:
    """sha256 -> extraction payload, persisted as one JSON file."""

    def __init__(self, path: "str | Path", signature: str) -> None:
        self.path = Path(path)
        self.signature = signature
        self._entries: dict[str, dict] = {}
        self._fresh: dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        if raw.get("version") != CACHE_FORMAT_VERSION:
            return
        if raw.get("signature") != self.signature:
            return
        entries = raw.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, display_path: str, digest: str) -> dict | None:
        """The cached payload for a file at this exact content, if any."""
        entry = self._entries.get(display_path)
        if entry is None or entry.get("sha256") != digest:
            return None
        self._fresh[display_path] = entry
        return entry.get("payload")

    def put(self, display_path: str, digest: str, payload: dict) -> None:
        self._fresh[display_path] = {"sha256": digest, "payload": payload}

    def save(self) -> None:
        """Persist only this run's files (dropping deleted ones)."""
        document = {
            "version": CACHE_FORMAT_VERSION,
            "signature": self.signature,
            "files": self._fresh,
        }
        try:
            self.path.write_text(
                json.dumps(document, separators=(",", ":"), sort_keys=True),
                encoding="utf-8",
            )
        except OSError:
            pass
