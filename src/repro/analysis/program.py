"""The whole-program view handed to rule ``finalize`` hooks.

A :class:`Program` bundles every analyzed module's facts and lazily
builds the call graph and effect engine on first use, so runs that
select only per-file rules never pay for interprocedural analysis.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.callgraph import CallGraph
from repro.analysis.effects import EffectEngine
from repro.analysis.facts import ModuleFacts

__all__ = ["Program"]


class Program:
    """Facts for every analyzed file + lazy interprocedural engines."""

    def __init__(self, modules: Iterable[ModuleFacts]) -> None:
        self.modules: list[ModuleFacts] = sorted(
            modules, key=lambda m: m.path
        )
        self.by_path: dict[str, ModuleFacts] = {
            module.path: module for module in self.modules
        }
        self._graph: CallGraph | None = None
        self._effects: EffectEngine | None = None

    @property
    def call_graph(self) -> CallGraph:
        if self._graph is None:
            self._graph = CallGraph(self.modules)
        return self._graph

    @property
    def effects(self) -> EffectEngine:
        if self._effects is None:
            self._effects = EffectEngine(self.call_graph)
        return self._effects
