"""RPR010 — durable effects outside the WAL commit/checkpoint protocol.

PR-5's durability argument has three statically checkable clauses:

1. **Location.**  Durable side effects (``fsync``, atomic file
   replacement, checkpoint bundle writes, truncation, unlink) on an
   engine-reachable code path may only live in the sanctioned modules
   (:data:`~repro.analysis.layers.DURABLE_ALLOWED_MODULE_PREFIXES`) —
   everything else must route through the ``_CommitScope`` /
   ``WalManager`` protocol, or fsync success stops being the single
   durability point.
2. **Ordering.**  Within one function, a checkpoint *write* must
   precede the log *truncate* — the crash-safety pairing of
   ``WalManager.checkpoint``.  The real calls and the ``FAULTS.hit``
   protocol markers are compared independently, so swapping just the
   two I/O calls (markers left behind) is still caught.
3. **Abort path.**  An undo closure must never touch disk: rollback
   runs after a failure whose durable half may or may not exist, and a
   disk write during rollback destroys the idempotent-recovery
   argument.  Any ``log.record(target)`` whose target transitively
   performs a durable effect is an error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.callgraph import FunctionNode
from repro.analysis.findings import Finding, Severity
from repro.analysis.layers import DURABLE_ALLOWED_MODULE_PREFIXES
from repro.analysis.registry import ModuleContext, Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.program import Program

__all__ = ["DurabilityProtocolRule"]


def _module_allowed(module_name: str) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in DURABLE_ALLOWED_MODULE_PREFIXES
    )


@register
class DurabilityProtocolRule(Rule):
    id = "RPR010"
    slug = "durability-protocol"
    severity = Severity.ERROR
    description = (
        "durable side effect outside the WAL protocol: wrong module, "
        "truncate-before-checkpoint ordering, or disk I/O reachable "
        "from an undo closure"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def finalize(self, program: "Program") -> Iterator[Finding]:
        effects = program.effects
        for fullqual in sorted(effects.summaries):
            node = effects.summaries[fullqual].node
            module_name = node.module.module_name
            if module_name is None or not module_name.startswith("repro"):
                continue
            yield from self._check_location(effects, fullqual, node)
            yield from self._check_ordering(node)
            yield from self._check_abort_path(program, fullqual, node)

    # -- clause 1: durable effects only in sanctioned modules ---------------

    def _check_location(
        self, effects, fullqual: str, node: FunctionNode
    ) -> Iterator[Finding]:
        module_name = node.module.module_name or ""
        if _module_allowed(module_name):
            return
        if fullqual not in effects.reachable:
            return
        for event in node.facts.durables:
            if event.marker:
                continue
            chain = effects.entry_path(fullqual)
            via = (
                " (reachable via " + " -> ".join(chain) + ")"
                if len(chain) > 1
                else ""
            )
            yield Finding(
                path=node.module.path,
                line=event.lineno,
                col=event.col,
                rule=self.id,
                severity=self.severity,
                message=(
                    f"{node.facts.qualname} performs durable effect "
                    f"'{event.kind}' outside the sanctioned WAL/storage "
                    f"modules{via}; durable writes must go through the "
                    f"WalManager commit/checkpoint protocol"
                ),
            )

    # -- clause 2: checkpoint-write before truncate -------------------------

    def _check_ordering(self, node: FunctionNode) -> Iterator[Finding]:
        for marker in (False, True):
            writes = [
                e
                for e in node.facts.durables
                if e.kind == "checkpoint_write" and e.marker == marker
            ]
            truncates = [
                e
                for e in node.facts.durables
                if e.kind == "truncate" and e.marker == marker
            ]
            if not writes or not truncates:
                continue
            first_truncate = min(truncates, key=lambda e: e.lineno)
            first_write = min(writes, key=lambda e: e.lineno)
            if first_truncate.lineno < first_write.lineno:
                yield Finding(
                    path=node.module.path,
                    line=first_truncate.lineno,
                    col=first_truncate.col,
                    rule=self.id,
                    severity=self.severity,
                    message=(
                        f"{node.facts.qualname} truncates the log "
                        f"(line {first_truncate.lineno}) before the "
                        f"checkpoint write (line {first_write.lineno}); "
                        f"a crash between the two would lose committed "
                        f"records — write the bundle first"
                    ),
                )
                break  # one ordering finding per function is enough

    # -- clause 3: undo closures must not touch disk ------------------------

    def _check_abort_path(
        self, program: "Program", fullqual: str, node: FunctionNode
    ) -> Iterator[Finding]:
        effects = program.effects
        graph = program.call_graph
        module = node.module
        for target in node.facts.record_targets:
            resolved: str | None = None
            if target.kind == "local":
                local = (
                    f"{node.facts.qualname}.<locals>.{target.name}"
                )
                if local in module.functions:
                    resolved = module.qualify(local)
            elif target.kind == "method" and node.facts.class_name:
                found = graph.lookup_method(
                    module, node.facts.class_name, target.name
                )
                if found is not None:
                    resolved = found.fullqual
            elif target.kind == "func":
                if target.name in module.functions:
                    resolved = module.qualify(target.name)
            if resolved is None:
                continue
            durable = sorted(effects.durable_effects_of(resolved))
            if not durable:
                continue
            kind, where, line = durable[0]
            yield Finding(
                path=module.path,
                line=target.lineno,
                col=target.col,
                rule=self.id,
                severity=self.severity,
                message=(
                    f"undo closure {target.name!r} registered here "
                    f"transitively performs durable effect '{kind}' "
                    f"({where}:{line}); rollback must never touch disk "
                    f"— snapshot in memory instead"
                ),
            )
