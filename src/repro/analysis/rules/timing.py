"""RPR006 — wall-clock reads outside the observability layer.

Every timing number this repo reports (Figure 6 response times, the
Figure 7 processing/I-O split, bench medians) should be *observable*:
recorded through :mod:`repro.obs` spans, where it lands in a snapshot
the CI gate and the bench JSON can diff — not accumulated in a local
variable via a bare ``time.perf_counter()`` pair that nothing else can
see.  RPR006 therefore bans direct reads of the monotonic clocks
outside the two places that legitimately own them:

* modules under :data:`~repro.analysis.layers.TIMING_ALLOWED_MODULE_PREFIXES`
  (``repro.obs`` — spans have to read a clock *somewhere*);
* files under a ``benchmarks/`` directory
  (:data:`~repro.analysis.layers.TIMING_ALLOWED_PATH_PARTS`) — harness
  code times candidate operations and runs calibration loops by design.

Flagged patterns everywhere else:

* ``time.perf_counter()`` / ``time.monotonic()`` / ``time.process_time()``
  calls (and their ``_ns`` variants);
* ``from time import perf_counter`` (any clock name, aliased or not) —
  flagged at the import so renamed clocks can't dodge the call check.

``time.time()`` and ``time.sleep()`` stay legal: timestamps and delays
are not measurements.  Suppress a deliberate use with
``# repro: allow-raw-timing`` and a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.layers import (
    TIMING_ALLOWED_MODULE_PREFIXES,
    TIMING_ALLOWED_PATH_PARTS,
)
from repro.analysis.registry import ModuleContext, Rule, register

__all__ = ["RawTimingRule"]

_CLOCK_NAMES = frozenset(
    {
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


def _module_exempt(module: ModuleContext) -> bool:
    name = module.module_name
    if name is not None and name.startswith(TIMING_ALLOWED_MODULE_PREFIXES):
        return True
    parts = module.path.split("/")
    return bool(TIMING_ALLOWED_PATH_PARTS.intersection(parts))


@register
class RawTimingRule(Rule):
    id = "RPR006"
    slug = "raw-timing"
    severity = Severity.ERROR
    description = (
        "direct monotonic-clock reads outside repro.obs/benchmarks; "
        "time code with repro.obs spans so the measurement is "
        "observable and attributable"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _module_exempt(module):
            return
        for node in ast.walk(module.tree):
            message = self._violation(node)
            if message is not None:
                yield module.finding(self, node, message)

    def _violation(self, node: ast.AST) -> str | None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _CLOCK_NAMES
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        ):
            return (
                f"time.{node.func.attr}() outside repro.obs; wrap the "
                "timed section in an OBS.span(...) instead"
            )
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            clocks = sorted(
                alias.name
                for alias in node.names
                if alias.name in _CLOCK_NAMES
            )
            if clocks:
                return (
                    f"importing {', '.join(clocks)} from time outside "
                    "repro.obs; time code with OBS.span(...) spans"
                )
        return None
