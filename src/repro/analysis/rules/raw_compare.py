"""RPR002 — ordering labels/codes by raw ``str``/``tuple`` casts.

:class:`repro.core.bitstring.BitString` (Definition 3.1) and the QED
validator define the *only* correct orders for codes; labeling schemes
expose them through ``order_key`` / codec ``key`` methods.  Casting to
``str`` or ``tuple`` just to compare — or comparing ``to01()`` renderings
directly — happens to work for some encodings and silently mis-orders
others (F-Binary's left-padded codes, OrdPath's negative components), so
the cast pattern itself is banned.

Flagged patterns (outside
:data:`~repro.analysis.layers.RAW_COMPARE_ALLOWED_MODULES`):

* ``a.to01() < b.to01()`` — ordering rendered code text;
* ``str(a) < str(b)`` / ``tuple(a) >= tuple(b)`` — ordering via casts;
* ``sorted(codes, key=str)`` / ``min(..., key=tuple)`` /
  ``sorted(..., key=BitString.to01)`` — sorting via cast keys.

Equality comparisons are fine; so is comparing :class:`BitString`
values or scheme-provided sort keys directly.  Suppress a deliberate
use with ``# repro: allow-raw-compare`` and a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.layers import RAW_COMPARE_ALLOWED_MODULES
from repro.analysis.registry import ModuleContext, Rule, register

__all__ = ["RawCompareRule"]

_ORDER_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
_CAST_NAMES = {"str", "tuple"}
_SORTERS = {"sorted", "min", "max"}


def _is_cast_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _CAST_NAMES
        and len(node.args) == 1
    )


def _is_to01_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "to01"
    )


def _is_cast_key(node: ast.AST) -> bool:
    """``key=str`` / ``key=tuple`` / ``key=BitString.to01``."""
    if isinstance(node, ast.Name) and node.id in _CAST_NAMES:
        return True
    return isinstance(node, ast.Attribute) and node.attr == "to01"


@register
class RawCompareRule(Rule):
    id = "RPR002"
    slug = "raw-compare"
    severity = Severity.ERROR
    description = (
        "labels/codes ordered via str/tuple casts instead of the "
        "BitString/codec comparators"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.module_name in RAW_COMPARE_ALLOWED_MODULES:
            return
        for node in ast.walk(module.tree):
            message = self._violation(node)
            if message is not None:
                yield module.finding(self, node, message)

    def _violation(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Compare) and any(
            isinstance(op, _ORDER_OPS) for op in node.ops
        ):
            operands = [node.left, *node.comparators]
            if any(_is_to01_call(operand) for operand in operands):
                return (
                    "ordering to01() renderings; compare the BitString "
                    "values themselves (Definition 3.1 order)"
                )
            if any(_is_cast_call(operand) for operand in operands):
                return (
                    "ordering via str()/tuple() casts; use the "
                    "BitString/codec comparators or the scheme's "
                    "order_key()"
                )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _SORTERS
        ):
            for keyword in node.keywords:
                if keyword.arg == "key" and _is_cast_key(keyword.value):
                    return (
                        f"{node.func.id}(..., key={{str,tuple,to01}}) "
                        "sorts by a raw cast; sort by the codec key() "
                        "or the scheme's order_key()"
                    )
        return None
