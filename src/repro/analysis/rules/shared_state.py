"""RPR011 — shared mutable state that blocks the MVCC refactor.

ROADMAP item 1 puts many clients over many documents in one process.
Everything in ``repro.*`` that is mutable and not owned by a single
document instance is a hazard for that refactor, and this rule
inventories it.  Now that the service exists, findings in modules its
code paths reach (:data:`SHARED_STATE_SERVICE_REACHABLE_PREFIXES` —
the service itself plus the engine/WAL/labeling/query stack under it)
are **errors**: shared state there races for real.  Modules off every
service path keep the original warning severity until they join one.
The flagged shapes:

* **Module-level mutable containers** — shared across every document
  in the process.  Constant-cased names are allowed but must never be
  written from a function.
* **Class-level mutable attribute defaults** — silently shared by all
  instances; the classic aliasing bug becomes a cross-document data
  leak under MVCC.
* **Memo-cache / dedup-table fills outside the undo-or-rebuild
  discipline** — a method that populates a ``*cache*`` or ``*dedup*``
  attribute without registering an inverse is invisible to rollback
  and racy under concurrent readers.  Wholesale *resets*
  (``self._cache = {}``) are fine; incremental fills are the hazard.
  A class that owns a ``rebuild*`` method is exempt: its tables are
  declared *derived* state, reconstructible from durable ground truth
  (the discipline the service's retry-dedup table follows — see
  ``DocumentWriter._rebuild_dedup``).

The explicit process-wide registries (``OBS``, ``FAULTS``) and the
analyzer/bench tooling are exempt by module prefix — they are the
sanctioned globals this rule pushes everything else toward.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.layers import (
    SHARED_STATE_EXEMPT_MODULE_PREFIXES,
    SHARED_STATE_SERVICE_REACHABLE_PREFIXES,
)
from repro.analysis.registry import ModuleContext, Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.program import Program

__all__ = ["SharedStateRule"]


def _exempt(module_name: str) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in SHARED_STATE_EXEMPT_MODULE_PREFIXES
    )


def _service_reachable(module_name: str) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in SHARED_STATE_SERVICE_REACHABLE_PREFIXES
    )


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


@register
class SharedStateRule(Rule):
    id = "RPR011"
    slug = "shared-state"
    severity = Severity.WARNING
    description = (
        "process-wide mutable state (module/class-level containers, "
        "unregistered memo-cache fills) that must be per-document "
        "before the concurrent MVCC service"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def finalize(self, program: "Program") -> Iterator[Finding]:
        for module in program.modules:
            name = module.module_name
            if name is None or not name.startswith("repro"):
                continue
            if _exempt(name):
                continue
            # Service-reachable modules run under many writer threads
            # and concurrent snapshot readers: shared mutable state
            # there is a live data race, not a future hazard.
            severity = (
                Severity.ERROR
                if _service_reachable(name)
                else self.severity
            )
            yield from self._module_level(module, severity)
            yield from self._class_level(module, severity)
            yield from self._memo_caches(module, severity)

    def _module_level(self, module, severity) -> Iterator[Finding]:
        constant_names: set[str] = set()
        for name, lineno, caps in module.module_mutables:
            if caps:
                constant_names.add(name)
                continue
            yield Finding(
                path=module.path,
                line=lineno,
                col=0,
                rule=self.id,
                severity=severity,
                message=(
                    f"module-level mutable container {name!r} is shared "
                    f"by every document in the process; make it "
                    f"per-instance state, or rename to CONSTANT_CASE "
                    f"and never mutate it"
                ),
            )
        if not constant_names:
            return
        for facts in module.functions.values():
            for write in facts.global_writes:
                if write.root in constant_names:
                    yield Finding(
                        path=module.path,
                        line=write.lineno,
                        col=write.col,
                        rule=self.id,
                        severity=severity,
                        message=(
                            f"{facts.qualname} mutates module constant "
                            f"{write.root!r} ({write.describe()}); a "
                            f"CONSTANT_CASE container is a promise of "
                            f"immutability — copy it or move the state "
                            f"onto an instance"
                        ),
                    )

    def _class_level(self, module, severity) -> Iterator[Finding]:
        for class_facts in module.classes.values():
            for attr, lineno in class_facts.mutable_class_attrs:
                yield Finding(
                    path=module.path,
                    line=lineno,
                    col=0,
                    rule=self.id,
                    severity=severity,
                    message=(
                        f"class-level mutable default "
                        f"{class_facts.name}.{attr} is shared by every "
                        f"instance (and every document); initialize it "
                        f"in __init__ instead"
                    ),
                )

    #: Attribute-name markers for derived-state tables the rule audits:
    #: memoization caches and request-id dedup tables share the same
    #: failure mode (a fill that rollback and recovery cannot see).
    _TABLE_MARKERS = ("cache", "dedup")

    def _memo_caches(self, module, severity) -> Iterator[Finding]:
        # A class with a rebuild* method declares its tables *derived*:
        # recovery reconstructs them from durable ground truth, which is
        # the other sanctioned discipline besides undo registration.
        rebuild_classes = {
            class_facts.name
            for class_facts in module.classes.values()
            if any(
                method.lstrip("_").startswith("rebuild")
                for method in class_facts.methods
            )
        }
        for facts in module.functions.values():
            if _is_dunder(facts.name) or facts.registers_undo:
                continue
            if facts.class_name in rebuild_classes:
                continue
            for mutation in facts.mutations:
                if mutation.kind != "subscript":
                    continue
                marker = next(
                    (
                        m
                        for m in self._TABLE_MARKERS
                        if any(m in part for part in mutation.chain)
                    ),
                    None,
                )
                if marker is None:
                    continue
                kind = "memo cache" if marker == "cache" else "dedup table"
                yield Finding(
                    path=module.path,
                    line=mutation.lineno,
                    col=mutation.col,
                    rule=self.id,
                    severity=severity,
                    message=(
                        f"{facts.qualname} fills {kind} "
                        f"{mutation.describe()} without undo or rebuild "
                        f"registration; the fill is invisible to "
                        f"rollback and recovery, and racy under "
                        f"concurrent readers — register an inverse, "
                        f"give the owning class a rebuild* method, or "
                        f"make the table per-transaction"
                    ),
                )
