"""RPR008 — naked file writes in the durability-critical layers.

The durability story (ISSUE 5) rests on two write disciplines: durable
artifacts are replaced atomically (:func:`repro.storage.atomicio.atomic_write_bytes`,
temp file + fsync + ``os.replace``) and log records are appended through
the WAL manager's buffered append + fsync path.  A naked
``open(path, "w")`` / ``open(path, "wb")`` — or a ``write_bytes`` /
``write_text`` call — in :mod:`repro.storage` or :mod:`repro.wal`
bypasses both: a crash mid-write leaves a truncated bundle or a
half-frame that only the CRC catches *after* the good copy is gone.

RPR008 therefore bans, in modules matching
:data:`~repro.analysis.layers.NAKED_WRITE_MODULE_PREFIXES`:

* ``open(..., "w")`` / ``"wb"`` (and any other ``w``-mode, positional
  or ``mode=``) — truncate-on-open destroys the previous good copy
  before the new one is durable;
* ``.write_bytes(...)`` / ``.write_text(...)`` attribute calls — the
  ``pathlib`` spelling of the same in-place overwrite.

Append mode (``"ab"``) stays legal — the WAL's own append path — and
:data:`~repro.analysis.layers.NAKED_WRITE_EXEMPT_MODULES` exempts the
one module that *implements* the atomic recipe.  Other layers are out
of scope: they own no durable artifacts.  Suppress a deliberate case
with ``# repro: allow-naked-write`` and a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.layers import (
    NAKED_WRITE_EXEMPT_MODULES,
    NAKED_WRITE_MODULE_PREFIXES,
)
from repro.analysis.registry import ModuleContext, Rule, register

__all__ = ["NakedWriteRule"]

_WRITE_METHODS = frozenset({"write_bytes", "write_text"})


def _in_scope(module: ModuleContext) -> bool:
    name = module.module_name
    if name is None or name in NAKED_WRITE_EXEMPT_MODULES:
        return False
    return any(
        name == prefix or name.startswith(prefix + ".")
        for prefix in NAKED_WRITE_MODULE_PREFIXES
    )


def _open_mode(call: ast.Call) -> str | None:
    """The literal mode string of an ``open``/``io.open`` call, if any."""
    func = call.func
    is_open = (isinstance(func, ast.Name) and func.id == "open") or (
        isinstance(func, ast.Attribute)
        and func.attr == "open"
        and isinstance(func.value, ast.Name)
        and func.value.id in ("io", "os")
    )
    if not is_open:
        return None
    mode_node: ast.AST | None = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return "r" if mode_node is None else None


@register
class NakedWriteRule(Rule):
    id = "RPR008"
    slug = "naked-write"
    severity = Severity.ERROR
    description = (
        "naked open(..., 'w'/'wb') or write_bytes/write_text in "
        "repro.storage / repro.wal; route durable writes through "
        "atomic_write_bytes or the WAL append path"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            mode = _open_mode(node)
            if mode is not None and "w" in mode:
                yield module.finding(
                    self,
                    node,
                    f"open(..., {mode!r}) truncates the previous copy "
                    f"before the new bytes are durable; use "
                    f"atomic_write_bytes (or append mode for logs)",
                )
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _WRITE_METHODS
            ):
                yield module.finding(
                    self,
                    node,
                    f".{func.attr}(...) overwrites in place; durable "
                    f"artifacts in this layer must go through "
                    f"atomic_write_bytes",
                )
