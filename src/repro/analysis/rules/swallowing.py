"""RPR007 — silently swallowed exceptions in library code.

The transaction layer (ISSUE 4) only works if failures *propagate*: an
undo log can roll an aborted operation back precisely because the
exception that interrupted it reaches :class:`repro.updates.txn.Transaction`.
A handler that eats the error instead leaves the mutation half-applied
with nothing to unwind it — the exact corruption class the undo log
exists to prevent.  RPR007 therefore bans, in modules under ``repro``:

* **bare** ``except:`` — catches ``SystemExit``/``KeyboardInterrupt``
  too, regardless of the handler body (RPR005 warns on this everywhere;
  inside the library it is an error);
* ``except Exception:`` / ``except BaseException:`` (or a tuple
  containing them) whose body is only ``pass`` / ``...`` — the classic
  silent swallow.

Catching broad types and *doing something* (logging, wrapping,
re-raising, recording a fallback) stays legal: the undo log itself
catches ``BaseException`` to wrap it in ``RollbackError``.  Scripts and
benchmarks are out of scope — a demo may ignore errors by design.
Suppress a deliberate case with ``# repro: allow-swallow`` and a
justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import ModuleContext, Rule, register

__all__ = ["SwallowedExceptionRule"]

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _library_module(module: ModuleContext) -> bool:
    if module.module_name is None:
        return False
    return module.module_name.split(".")[0] == "repro"


def _broad_type_name(node: ast.AST | None) -> str | None:
    """The broad exception name an ``except`` clause catches, if any."""
    if isinstance(node, ast.Name) and node.id in _BROAD_NAMES:
        return node.id
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            name = _broad_type_name(element)
            if name is not None:
                return name
    return None


def _body_swallows(body: list[ast.stmt]) -> bool:
    """True when the handler body does nothing with the exception."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and (
            isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis
        ):
            continue
        return False
    return True


@register
class SwallowedExceptionRule(Rule):
    id = "RPR007"
    slug = "swallow"
    severity = Severity.ERROR
    description = (
        "bare 'except:' or silently swallowed broad exceptions in "
        "repro modules; let failures reach the transaction layer"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not _library_module(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.finding(
                    self,
                    node,
                    "bare 'except:' in library code; name the exception "
                    "and let everything else propagate to the "
                    "transaction rollback",
                )
                continue
            broad = _broad_type_name(node.type)
            if broad is not None and _body_swallows(node.body):
                yield module.finding(
                    self,
                    node,
                    f"'except {broad}: pass' silently swallows failures "
                    f"the undo log must see; handle the error or let it "
                    f"propagate",
                )
