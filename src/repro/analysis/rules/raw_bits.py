"""RPR001 — raw '0'/'1' bit-string manipulation outside the codec core.

Definition 3.1's lexicographical order and the CDBS invariants are
implemented once, in :mod:`repro.core.bitstring`.  Code elsewhere that
builds or picks apart binary text by hand — concatenating ``"0"``/``"1"``
literals, ``format(x, 'b')`` / ``f"{x:b}"``, ``int(text, 2)``,
``bin(x)``, or slicing a ``to01()`` rendering — bypasses those
invariants and is exactly how a refactor silently re-introduces the
mis-ordered labels of Example 3.3.

Flagged patterns (outside :data:`~repro.analysis.layers.RAW_BITS_ALLOWED_MODULES`):

* ``x + "01"`` / ``"1" * n + "0"`` — string concatenation where either
  operand is binary text (a non-empty literal of only ``0``/``1``
  characters, possibly repeated with ``*``);
* ``format(x, "b")`` and f-strings with a trailing-``b`` format spec;
* ``int(text, 2)`` — parsing binary text directly;
* ``bin(x)`` — rendering binary text directly;
* ``something.to01()[...]`` — manual slicing of a rendered code.

Since the packed rewrite, a ``BitString`` *is* a ``(value, length)``
integer pair, so raw-bit manipulation has an int-flavoured twin: code
outside the codec core poking the packed payload directly.  Also
flagged:

* ``code._value`` / ``code._length`` — reading the private payload of a
  non-``self`` receiver (``self._value`` inside one's own class, e.g.
  the storage layer's ``BitWriter``, is fine — that's its own state);
* ``code.value << n`` / ``n >> code.value`` — shift arithmetic on a
  ``.value`` payload read, which re-implements packed-code alignment by
  hand (a plain ``.value`` read is public API and stays allowed).

Suppress a deliberate use with ``# repro: allow-raw-bits`` plus a
justification (e.g. the Binary-String prefix scheme, whose *labels* are
raw character strings by definition).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.layers import RAW_BITS_ALLOWED_MODULES
from repro.analysis.registry import ModuleContext, Rule, register

__all__ = ["RawBitsRule"]


def _is_binary_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and len(node.value) > 0
        and set(node.value) <= {"0", "1"}
    )


def _is_binary_text(node: ast.AST) -> bool:
    """Binary literal, or a ``*``-repetition involving one."""
    if _is_binary_literal(node):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return _is_binary_literal(node.left) or _is_binary_literal(
            node.right
        )
    return False


def _is_to01_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "to01"
    )


def _is_self_receiver(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in {"self", "cls"}


def _is_payload_read(node: ast.AST, attrs: frozenset[str]) -> bool:
    """An ``<expr>.<attr>`` read of a packed payload on a foreign object."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr in attrs
        and not _is_self_receiver(node.value)
    )


_PRIVATE_PAYLOAD_ATTRS = frozenset({"_value", "_length"})
_SHIFTED_PAYLOAD_ATTRS = frozenset({"value", "_value"})


def _format_spec_is_binary(spec: ast.AST | None) -> bool:
    """True when an f-string format spec renders binary (ends in ``b``)."""
    if not isinstance(spec, ast.JoinedStr):
        return False
    for part in spec.values:
        if (
            isinstance(part, ast.Constant)
            and isinstance(part.value, str)
            and part.value.rstrip().endswith("b")
        ):
            return True
    return False


@register
class RawBitsRule(Rule):
    id = "RPR001"
    slug = "raw-bits"
    severity = Severity.ERROR
    description = (
        "raw '0'/'1' bit-string manipulation outside repro.core.bitstring"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.module_name in RAW_BITS_ALLOWED_MODULES:
            return
        for node in ast.walk(module.tree):
            message = self._violation(node)
            if message is not None:
                yield module.finding(self, node, message)

    def _violation(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            if _is_binary_text(node.left) or _is_binary_text(node.right):
                return (
                    "binary text built by string concatenation; use "
                    "BitString (e.g. append_bit / '+' on BitString) "
                    "so Definition 3.1's order is enforced"
                )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if (
                name == "format"
                and len(node.args) == 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
                and node.args[1].value.endswith("b")
            ):
                return (
                    "format(x, 'b') renders raw binary text; use "
                    "BitString.to01() instead"
                )
            if name == "bin" and len(node.args) == 1:
                return (
                    "bin(x) renders raw binary text; use "
                    "BitString.to01() instead"
                )
            if (
                name == "int"
                and len(node.args) == 2
                and isinstance(node.args[1], ast.Constant)
                and node.args[1].value == 2
            ):
                return (
                    "int(text, 2) parses raw binary text; use "
                    "BitString.from_str() instead"
                )
        if isinstance(node, ast.FormattedValue) and _format_spec_is_binary(
            node.format_spec
        ):
            return (
                "f-string ':b' spec renders raw binary text; use "
                "BitString.to01() instead"
            )
        if isinstance(node, ast.Subscript) and _is_to01_call(node.value):
            return (
                "slicing a to01() rendering manipulates raw binary text; "
                "slice the BitString itself (it supports [] and "
                "is_prefix_of)"
            )
        if _is_payload_read(node, _PRIVATE_PAYLOAD_ATTRS):
            return (
                "reading a BitString's packed payload (._value/._length) "
                "outside the codec core; use the public API (len(), "
                ".value, .bitstring_key, slicing) so the packed "
                "representation stays encapsulated"
            )
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.LShift, ast.RShift)
        ):
            if _is_payload_read(
                node.left, _SHIFTED_PAYLOAD_ATTRS
            ) or _is_payload_read(node.right, _SHIFTED_PAYLOAD_ATTRS):
                return (
                    "shift arithmetic on a .value payload read "
                    "re-implements packed-code alignment by hand; use "
                    "BitString operations (pad_right, slicing, "
                    "compare_many) instead"
                )
        return None
