"""RPR005 — generic hygiene: mutable defaults, bare except, assert-as-validation.

Three classic Python hazards that have bitten ordered-labeling code
before (a shared mutable default corrupts a scheme's cache across
documents; a bare ``except`` swallows :class:`KeyboardInterrupt` during
a long relabel; ``assert`` guards vanish under ``python -O``):

* **mutable default arguments** — ``def f(x, acc=[])`` /
  ``cache={}`` / ``seen=set()``;
* **bare except** — ``except:`` (catch ``Exception`` or the concrete
  error instead);
* **assert used for data validation** — an ``assert`` whose condition
  checks *values* rather than narrowing *types*.  Type-narrowing
  asserts (``assert x is not None``, ``assert isinstance(x, T)`` and
  ``and``-conjunctions of those) are idiomatic for type checkers and
  stay allowed; everything else in library code should raise a real
  error.  This sub-check applies only to modules under ``repro``
  (benchmarks/examples use ``assert`` as executable documentation).

Severity is *warning* — but the CLI's default ``--fail-on warning``
still fails CI on any non-baselined hit.  Suppress a deliberate case
with ``# repro: allow-hygiene`` and a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.layers import ASSERT_RULE_MODULE_PREFIXES
from repro.analysis.registry import ModuleContext, Rule, register

__all__ = ["HygieneRule"]

_MUTABLE_CALLS = {"list", "dict", "set"}
_NARROWING_CALLS = {"isinstance", "callable", "hasattr", "issubclass"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


def _is_narrowing(test: ast.AST) -> bool:
    """Type-narrowing assert conditions allowed in library code."""
    if isinstance(test, ast.Compare) and all(
        isinstance(op, (ast.Is, ast.IsNot)) for op in test.ops
    ):
        return True
    if (
        isinstance(test, ast.Call)
        and isinstance(test.func, ast.Name)
        and test.func.id in _NARROWING_CALLS
    ):
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return all(_is_narrowing(value) for value in test.values)
    return False


def _assert_rule_applies(module: ModuleContext) -> bool:
    if module.module_name is None:
        return False
    root = module.module_name.split(".")[0]
    return root in ASSERT_RULE_MODULE_PREFIXES


@register
class HygieneRule(Rule):
    id = "RPR005"
    slug = "hygiene"
    severity = Severity.WARNING
    description = (
        "generic hygiene: mutable default args, bare except, assert "
        "used for data validation in library code"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        check_asserts = _assert_rule_applies(module)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    default
                    for default in node.args.kw_defaults
                    if default is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        yield module.finding(
                            self,
                            default,
                            f"mutable default argument in {node.name}(); "
                            f"default to None and create inside the body",
                        )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield module.finding(
                    self,
                    node,
                    "bare 'except:' catches SystemExit and "
                    "KeyboardInterrupt; catch Exception or the concrete "
                    "error",
                )
            elif (
                check_asserts
                and isinstance(node, ast.Assert)
                and not _is_narrowing(node.test)
            ):
                yield module.finding(
                    self,
                    node,
                    "assert used for data validation vanishes under "
                    "'python -O'; raise InvalidCodeError/ValueError "
                    "instead (type-narrowing asserts are fine)",
                )
