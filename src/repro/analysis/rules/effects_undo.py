"""RPR009 — tracked-state mutation without an undo registration.

The PR-4 atomicity argument is a *code discipline*: while a
:class:`~repro.updates.txn.Transaction` is open, every mutation of
transactional state records a closure that inverts it (the
``log = self.undo_log; if log is not None: log.record(...)`` idiom).
The chaos matrix samples that discipline dynamically, one fault site at
a time; this rule checks it statically for **every** function reachable
from a public ``UpdateEngine`` entry point.

A function violates the rule when it directly mutates tracked state
(the facade/primitive taxonomy in :mod:`repro.analysis.layers`) and
does not itself register an inverse on the bound undo log.  The
discipline is per mutation site — a registering caller does *not*
excuse a non-registering callee, because rollback replays inverses in
strict LIFO order and a missing entry leaves that one structure stale.

Script mode: files outside ``src/`` (test helpers that poke engine
state) are checked without the reachability requirement — a helper that
mutates a ``LabeledDocument``-annotated parameter without registering
is flagged wherever it lives, except under ``benchmarks/`` and
``examples/`` (harnesses own their state).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.layers import (
    EFFECT_EXEMPT_MODULES,
    SCRIPT_EFFECTS_EXEMPT_PATH_PARTS,
)
from repro.analysis.registry import ModuleContext, Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.program import Program

__all__ = ["MutationWithoutUndoRule"]


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


@register
class MutationWithoutUndoRule(Rule):
    id = "RPR009"
    slug = "mutation-without-undo"
    severity = Severity.ERROR
    description = (
        "mutation of tracked transactional state reachable from an "
        "UpdateEngine entry point without registering an inverse on "
        "the undo log"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def finalize(self, program: "Program") -> Iterator[Finding]:
        effects = program.effects
        graph = program.call_graph
        for fullqual in sorted(effects.summaries):
            summary = effects.summaries[fullqual]
            node = summary.node
            module = node.module
            facts = node.facts
            if _is_dunder(facts.name) or facts.registers_undo:
                continue
            mutations = summary.counting_mutations
            if not mutations:
                continue
            if module.module_name is not None:
                if not module.module_name.startswith("repro"):
                    continue
                if module.module_name in EFFECT_EXEMPT_MODULES:
                    continue
                if fullqual not in effects.reachable:
                    continue
                chain = effects.entry_path(fullqual)
                via = (
                    " (reachable via "
                    + " -> ".join(
                        part.split("::", 1)[-1] for part in chain
                    )
                    + ")"
                    if len(chain) > 1
                    else ""
                )
            else:
                parts = set(module.path.split("/"))
                if parts & SCRIPT_EFFECTS_EXEMPT_PATH_PARTS:
                    continue
                via = ""
            first = min(mutations, key=lambda m: (m.lineno, m.col))
            targets = ", ".join(
                sorted({f"{m.owner}.{m.target}" for m in mutations})
            )
            yield Finding(
                path=module.path,
                line=first.lineno,
                col=first.col,
                rule=self.id,
                severity=self.severity,
                message=(
                    f"{facts.qualname} mutates tracked state "
                    f"({targets}) without registering an inverse on the "
                    f"undo log{via}; use the guarded "
                    f"'log = self.undo_log; if log is not None: "
                    f"log.record(<inverse>)' idiom or route the write "
                    f"through a registering facade method"
                ),
            )
