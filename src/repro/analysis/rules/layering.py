"""RPR004 — import-layering violations against the declared DAG.

The allowed dependency structure lives in one place,
:mod:`repro.analysis.layers`; this rule only *applies* it.  Per module
it resolves every ``import`` / ``from ... import`` of a ``repro``
target (absolute or relative) to the target's layer and flags edges the
DAG does not allow.  After all modules are checked it aggregates the
*observed* subsystem graph and reports any cycle — cycles are always
errors, even between layers whose individual edges were somehow
declared legal.

A module's own layer may always import itself; scripts (benchmarks,
examples) may import anything.  There is intentionally no suppression
strong enough to excuse a cycle; single-edge exceptions take
``# repro: allow-layering`` with a justification.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.program import Program
from repro.analysis.layers import (
    ALL_LAYERS,
    SCRIPT_LAYER,
    allowed_imports,
    layer_of_module,
)
from repro.analysis.registry import ModuleContext, Rule, register

__all__ = ["LayeringRule"]


def _resolve_relative(
    module: ModuleContext, level: int, target: str | None
) -> str | None:
    """Absolute dotted name of a relative import, or None if unknown."""
    if module.module_name is None:
        return None
    anchor = module.module_name.split(".")
    if not module.is_package:
        anchor = anchor[:-1]
    if level > 1:
        if level - 1 >= len(anchor):
            return None
        anchor = anchor[: -(level - 1)]
    if target:
        return ".".join(anchor + target.split("."))
    return ".".join(anchor)


def _imported_repro_modules(
    module: ModuleContext,
) -> Iterator[tuple[ast.stmt, str]]:
    """(statement, absolute dotted target) for every repro import."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                resolved = _resolve_relative(module, node.level, node.module)
            else:
                resolved = node.module
            if resolved and (
                resolved == "repro" or resolved.startswith("repro.")
            ):
                yield node, resolved


@register
class LayeringRule(Rule):
    id = "RPR004"
    slug = "layering"
    severity = Severity.ERROR
    description = (
        "import edge not allowed by the layering DAG "
        "(repro.analysis.layers), or a subsystem import cycle"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        source_layer = module.layer
        if source_layer == SCRIPT_LAYER:
            return
        allowed = allowed_imports(source_layer)
        if allowed == ALL_LAYERS:
            return
        for statement, target in _imported_repro_modules(module):
            target_layer = layer_of_module(target)
            if target_layer == source_layer or target_layer in allowed:
                continue
            yield module.finding(
                self,
                statement,
                f"layer '{source_layer}' may not import layer "
                f"'{target_layer}' (imports {target}); allowed: "
                f"{{{', '.join(sorted(allowed)) or 'nothing'}}} — see "
                f"repro.analysis.layers",
            )

    def finalize(self, program: "Program") -> Iterator[Finding]:
        # Aggregate the observed subsystem graph (library code only) and
        # remember the first witness of each edge for error anchoring.
        # Works off the cached import facts, so warm runs still see the
        # whole graph without re-parsing a single file.
        graph: dict[str, set[str]] = {}
        witness: dict[tuple[str, str], tuple[str, int]] = {}
        for module in program.modules:
            source = module.layer
            if source == SCRIPT_LAYER:
                continue
            for lineno, target in module.repro_imports:
                target_layer = layer_of_module(target)
                if target_layer == source:
                    continue
                graph.setdefault(source, set()).add(target_layer)
                witness.setdefault(
                    (source, target_layer), (module.path, lineno)
                )
        for cycle in _find_cycles(graph):
            path, line = witness.get((cycle[0], cycle[1]), ("<unknown>", 1))
            yield Finding(
                path=path,
                line=line,
                col=0,
                rule=self.id,
                severity=self.severity,
                message=(
                    "subsystem import cycle: "
                    + " -> ".join(cycle + [cycle[0]])
                    + " (cycles are always errors)"
                ),
                unsuppressable=True,
            )


def _find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Elementary cycles reachable by DFS, each reported once."""
    cycles: list[list[str]] = []
    seen_cycles: set[tuple[str, ...]] = set()
    WHITE, GRAY, BLACK = 0, 1, 2
    state = dict.fromkeys(graph, WHITE)

    def visit(node: str, trail: list[str]) -> None:
        state[node] = GRAY
        trail.append(node)
        for successor in sorted(graph.get(node, set())):
            if successor not in graph:
                continue
            if state.get(successor) == GRAY:
                cycle = trail[trail.index(successor) :]
                # Canonicalise rotation so each cycle reports once.
                pivot = cycle.index(min(cycle))
                canonical = tuple(cycle[pivot:] + cycle[:pivot])
                if canonical not in seen_cycles:
                    seen_cycles.add(canonical)
                    cycles.append(list(canonical))
            elif state.get(successor, WHITE) == WHITE:
                visit(successor, trail)
        trail.pop()
        state[node] = BLACK

    for name in sorted(graph):
        if state[name] == WHITE:
            visit(name, [])
    return cycles
