"""RPR003 — codes reach ``assign_middle`` without an ends-with-1 guard.

``AssignMiddleBinaryString`` (Algorithm 1) is only correct for codes
ending in ``1`` — Example 3.3 shows insertion between ``0``-tailed codes
can be *impossible*.  Codes produced by the library always satisfy this
(Lemma 3.2), but codes built from raw input — ``BitString(...)``,
``BitString.from_str(...)`` — carry no such warranty and must pass an
``ends_with_one()`` check before they are handed to an insertion
routine.

The rule examines every module that calls one of the insertion entry
points (``assign_middle_binary_string`` / ``assign_middle_pair`` /
``assign_middle_run``), except the module defining them
(:data:`~repro.analysis.layers.UNGUARDED_CODE_EXEMPT_MODULES`), and
flags the call sites:

* a call whose *argument expression* itself constructs a BitString
  (``assign_middle_binary_string(BitString.from_str(s), r)``) — the
  fresh code can not have been guarded;
* a call inside a function that constructs BitStrings from raw input
  but never mentions ``ends_with_one`` — the construction and the
  insertion share a scope with no guard between them.

Call sites that validate (or sit in functions that validate) are
untouched.  A deliberate pass-through — e.g. a test helper — takes
``# repro: allow-raw-code`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.layers import UNGUARDED_CODE_EXEMPT_MODULES
from repro.analysis.registry import ModuleContext, Rule, register

__all__ = ["UnguardedCodesRule"]

_INSERTION_ENTRY_POINTS = {
    "assign_middle_binary_string",
    "assign_middle_pair",
    "assign_middle_run",
}
_RAW_CONSTRUCTORS = {"from_str", "from_bits"}


def _call_name(node: ast.Call) -> str | None:
    """The bare or attribute name a call invokes."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_insertion_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and _call_name(node) in _INSERTION_ENTRY_POINTS
    )


def _is_raw_constructor(node: ast.AST) -> bool:
    """``BitString(...)`` / ``BitString.from_str(...)`` / ``.from_bits``."""
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Name) and node.func.id == "BitString":
        return True
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _RAW_CONSTRUCTORS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "BitString"
    )


def _mentions_guard(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.Attribute) and node.attr == "ends_with_one":
            return True
    return False


def _enclosing_functions(tree: ast.Module) -> dict[int, ast.AST]:
    """Map every node id to its innermost enclosing function (or module)."""
    owner: dict[int, ast.AST] = {}

    def assign(scope: ast.AST, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                child_scope = child
            owner[id(child)] = child_scope
            assign(child_scope, child)

    owner[id(tree)] = tree
    assign(tree, tree)
    return owner


@register
class UnguardedCodesRule(Rule):
    id = "RPR003"
    slug = "raw-code"
    severity = Severity.ERROR
    description = (
        "raw-constructed codes handed to assign_middle without an "
        "ends_with_one() guard"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.module_name in UNGUARDED_CODE_EXEMPT_MODULES:
            return
        insertion_calls = [
            node
            for node in ast.walk(module.tree)
            if _is_insertion_call(node)
        ]
        if not insertion_calls:
            return
        owner = _enclosing_functions(module.tree)
        for call in insertion_calls:
            # A constructor *inside* the argument list is always unguarded.
            inline = any(
                _is_raw_constructor(node)
                for argument in [*call.args, *call.keywords]
                for node in ast.walk(
                    argument.value
                    if isinstance(argument, ast.keyword)
                    else argument
                )
            )
            if inline:
                yield module.finding(
                    self,
                    call,
                    "a freshly constructed BitString is passed straight "
                    "to an insertion routine; validate it with "
                    "ends_with_one() first (Example 3.3)",
                )
                continue
            scope = owner.get(id(call), module.tree)
            if scope is module.tree:
                continue  # module-level call with named, pre-built codes
            scope_has_constructor = any(
                _is_raw_constructor(node) for node in ast.walk(scope)
            )
            if scope_has_constructor and not _mentions_guard(scope):
                yield module.finding(
                    self,
                    call,
                    "this function builds BitStrings from raw input and "
                    "inserts codes without any ends_with_one() guard; "
                    "validate before calling assign_middle (Example 3.3)",
                )
