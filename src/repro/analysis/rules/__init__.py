"""The shipped rule set; importing this package registers every rule.

Adding a rule = one module defining a :class:`~repro.analysis.registry.Rule`
subclass under :func:`~repro.analysis.registry.register`, plus an import
line here.  See ``docs/STATIC_ANALYSIS.md`` for the recipe.
"""

from repro.analysis.rules import (  # noqa: F401  (import for registration)
    durability,
    effects_undo,
    hygiene,
    layering,
    naked_writes,
    raw_bits,
    raw_compare,
    shared_state,
    swallowing,
    timing,
    unguarded_codes,
)

__all__ = [
    "durability",
    "effects_undo",
    "hygiene",
    "layering",
    "naked_writes",
    "raw_bits",
    "raw_compare",
    "shared_state",
    "swallowing",
    "timing",
    "unguarded_codes",
]
