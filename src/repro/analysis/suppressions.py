"""Inline suppression comments: ``# repro: allow-<slug>``.

A finding is suppressed when its rule's slug is allowed on the finding's
own line or on the line directly above it (so multi-line statements and
black-formatted code can carry the comment on a lead-in line)::

    return left + "1"  # repro: allow-raw-bits — CKM labels ARE raw strings

    # repro: allow-raw-code
    code = assign_middle_binary_string(BitString.from_str(text), right)

Suppressions are per-rule — there is deliberately no blanket
``allow-everything`` comment; each exemption names what it exempts.
"""

from __future__ import annotations

import re
import tokenize
from typing import Iterable

__all__ = ["Suppressions", "collect_suppressions"]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow-([a-z][a-z0-9-]*)")


class Suppressions:
    """The parsed suppression comments of one file."""

    def __init__(self, by_line: dict[int, frozenset[str]]) -> None:
        self._by_line = by_line

    def allows(self, line: int, slug: str) -> bool:
        """True when ``slug`` is suppressed at 1-based ``line``."""
        return (
            slug in self._by_line.get(line, frozenset())
            or slug in self._by_line.get(line - 1, frozenset())
        )

    def by_line(self) -> dict[int, frozenset[str]]:
        """Line -> slugs, for serialization and hygiene checks."""
        return dict(self._by_line)

    @classmethod
    def from_mapping(cls, mapping: dict[int, Iterable[str]]) -> "Suppressions":
        """Rebuild from a plain mapping (the cached-facts round trip)."""
        return cls(
            {line: frozenset(slugs) for line, slugs in mapping.items()}
        )

    def __len__(self) -> int:
        return len(self._by_line)


def collect_suppressions(source_lines: Iterable[str]) -> Suppressions:
    """Scan real ``# repro: allow-<slug>`` comments.

    Tokenizes so that docstrings which merely *quote* the waiver syntax
    (every rule module documents its own slug) do not register as live
    suppressions — a textual scan would report each of those as a dead
    waiver under ``--check-baseline``.
    """
    lines = list(source_lines)
    by_line: dict[int, frozenset[str]] = {}
    try:
        readline = iter(
            line if line.endswith("\n") else line + "\n" for line in lines
        ).__next__
        for token in tokenize.generate_tokens(readline):
            if token.type != tokenize.COMMENT:
                continue
            slugs = _ALLOW_RE.findall(token.string)
            if slugs:
                by_line[token.start[0]] = frozenset(slugs)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Untokenizable source (the analyzer still line-scans files it
        # cannot parse): fall back to the plain textual match.
        by_line.clear()
        for lineno, text in enumerate(lines, start=1):
            slugs = _ALLOW_RE.findall(text)
            if slugs:
                by_line[lineno] = frozenset(slugs)
    return Suppressions(by_line)
