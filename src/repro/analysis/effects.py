"""Per-function effect summaries over the call graph.

The effect engine classifies each raw mutation recorded by
:mod:`repro.analysis.facts` against the tracked-state taxonomy in
:mod:`repro.analysis.layers` (facade / primitive / durable classes),
computes which functions are reachable from the public
``UpdateEngine`` entry points, and propagates durable side effects to a
fixpoint over the call graph (so "does this undo closure eventually
fsync?" has a static answer).  The RPR009-RPR011 rules are thin
consumers of this engine; ``python -m repro.analysis --effects`` dumps
its summaries for debugging.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.callgraph import CallGraph, FunctionNode
from repro.analysis.facts import DurableEvent, ModuleFacts, Mutation
from repro.analysis.layers import (
    DURABLE_STATE_CLASSES,
    EFFECT_ENTRY_POINTS,
    EFFECT_PARAM_CONVENTIONS,
    TXN_STATE_FACADE_CLASSES,
    TXN_STATE_PRIMITIVE_CLASSES,
)

__all__ = ["EffectEngine", "EffectSummary", "TrackedMutation"]

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

_CONTAINER_ANNOTATIONS = frozenset(
    {
        "list",
        "tuple",
        "dict",
        "set",
        "frozenset",
        "List",
        "Tuple",
        "Dict",
        "Set",
        "Sequence",
        "Iterable",
        "Iterator",
        "Mapping",
        "MutableMapping",
    }
)


@dataclass(frozen=True)
class TrackedMutation:
    """One raw mutation classified as touching tracked state."""

    owner: str
    """The tracked class whose state is written (taxonomy name)."""

    target: str
    """Human-readable write target (``labels[...]``, ``detach()``...)."""

    kind: str
    lineno: int
    col: int

    counts: bool
    """True when RPR009 demands an inverse registration for this write
    (False for durable-class state, which RPR010 polices instead)."""


@dataclass
class EffectSummary:
    """Everything the rules need to know about one function."""

    fullqual: str
    node: FunctionNode
    tracked: list[TrackedMutation] = field(default_factory=list)

    @property
    def registers_undo(self) -> bool:
        return self.node.facts.registers_undo

    @property
    def opens_transaction(self) -> bool:
        return self.node.facts.opens_transaction

    @property
    def durables(self) -> list[DurableEvent]:
        return self.node.facts.durables

    @property
    def counting_mutations(self) -> list[TrackedMutation]:
        return [m for m in self.tracked if m.counts]


class EffectEngine:
    """Summaries + reachability + durable-effect fixpoint for a program."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: dict[str, EffectSummary] = {}
        self._kind_cache: dict[tuple[str, str], tuple[str, frozenset[str]] | None] = {}
        for fullqual, node in graph.functions.items():
            self.summaries[fullqual] = self._summarize(fullqual, node)
        self.entry_points: tuple[str, ...] = self._entry_points()
        self.reachable: set[str] = graph.reachable_from(self.entry_points)
        self.entry_parents: dict[str, str | None] = graph.shortest_parents(
            self.entry_points
        )
        self.durable_closure: dict[str, frozenset[tuple[str, str, int]]] = (
            self._durable_fixpoint()
        )

    # -- tracked-class taxonomy --------------------------------------------

    def _kind_of_names(
        self, names: Iterable[str]
    ) -> tuple[str, frozenset[str]] | None:
        """(kind, excluded attrs) when any hierarchy name is tracked."""
        exclude: set[str] = set()
        kind: str | None = None
        for name in names:
            if name in TXN_STATE_FACADE_CLASSES:
                kind = "facade"
                exclude |= TXN_STATE_FACADE_CLASSES[name]
            elif name in DURABLE_STATE_CLASSES and kind is None:
                kind = "durable"
            elif name in TXN_STATE_PRIMITIVE_CLASSES and kind is None:
                kind = "primitive"
        if kind is None:
            return None
        return (kind, frozenset(exclude))

    def class_kind(
        self, module: ModuleFacts, class_name: str
    ) -> tuple[str, frozenset[str]] | None:
        """Taxonomy kind of a class as seen from ``module``, or None."""
        key = (module.path, class_name)
        if key not in self._kind_cache:
            names = self.graph.class_kind_names(module, class_name)
            names.add(class_name)  # config may name undeclared classes
            self._kind_cache[key] = self._kind_of_names(names)
        return self._kind_cache[key]

    def _param_class(self, node: FunctionNode, root: str) -> str | None:
        """The tracked-state class a parameter is typed as, if any."""
        facts = node.facts
        if root not in facts.params and root not in facts.kwonly:
            return None
        annotation = facts.annotations.get(root)
        if annotation:
            for token in _IDENTIFIER_RE.findall(annotation):
                if token in ("Optional", "None", "Union"):
                    continue
                if token in _CONTAINER_ANNOTATIONS:
                    # `bucket: list[Node]` — mutating the *container*
                    # is not mutating the tracked element type.
                    return None
                return token
        return EFFECT_PARAM_CONVENTIONS.get(root)

    # -- mutation classification -------------------------------------------

    def _summarize(self, fullqual: str, node: FunctionNode) -> EffectSummary:
        summary = EffectSummary(fullqual=fullqual, node=node)
        for mutation in node.facts.mutations:
            tracked = self._classify(node, mutation)
            if tracked is not None:
                summary.tracked.append(tracked)
        return summary

    def _classify(
        self, node: FunctionNode, mutation: Mutation
    ) -> TrackedMutation | None:
        module = node.module
        own_kind = None
        if node.facts.class_name is not None:
            own_kind = self.class_kind(module, node.facts.class_name)
        if mutation.root in ("self", "cls"):
            if own_kind is None:
                return None
            kind, exclude = own_kind
            if kind == "primitive":
                # The wrapper that *calls* the primitive owns the undo.
                return None
            if mutation.chain and mutation.chain[0] in exclude:
                return None
            return TrackedMutation(
                owner=node.facts.class_name or "?",
                target=mutation.describe(),
                kind=mutation.kind,
                lineno=mutation.lineno,
                col=mutation.col,
                counts=kind != "durable",
            )
        class_name = self._param_class(node, mutation.root)
        if class_name is None:
            return None
        kind_info = self.class_kind(module, class_name)
        if kind_info is None:
            return None
        kind, exclude = kind_info
        if (
            kind == "primitive"
            and own_kind is not None
            and own_kind[0] == "primitive"
        ):
            # Primitive-to-primitive plumbing (Node methods rewiring a
            # sibling Node) is internal to the structure.
            return None
        if mutation.chain and mutation.chain[0] in exclude:
            return None
        if (
            kind == "primitive"
            and not mutation.chain
            and mutation.kind.startswith("call:")
            and not self._class_has_method(
                module, class_name, mutation.kind[5:]
            )
        ):
            # `parent.pop()` on a Node-typed name is a container verb
            # the class does not define — a misclassified receiver.
            return None
        return TrackedMutation(
            owner=class_name,
            target=mutation.describe(),
            kind=mutation.kind,
            lineno=mutation.lineno,
            col=mutation.col,
            counts=kind != "durable",
        )

    def _class_has_method(
        self, module: ModuleFacts, class_name: str, method: str
    ) -> bool:
        for owner, name in self.graph.linearize(module, class_name):
            if method in owner.classes[name].methods:
                return True
        # The class may not be defined in the analyzed tree (config
        # names it); accept the call rather than silently dropping it.
        return not self.graph.linearize(module, class_name)

    # -- reachability -------------------------------------------------------

    def _entry_points(self) -> tuple[str, ...]:
        entries: list[str] = []
        for module_name, class_name in EFFECT_ENTRY_POINTS:
            module = self.graph.by_module_name.get(module_name)
            if module is None:
                continue
            class_facts = module.classes.get(class_name)
            if class_facts is None:
                continue
            for method, qual in sorted(class_facts.methods.items()):
                if not method.startswith("_"):
                    entries.append(module.qualify(qual))
        return tuple(entries)

    def entry_path(self, fullqual: str) -> list[str]:
        """Entry -> ... -> function chain (for finding messages)."""
        return self.graph.path_to(self.entry_parents, fullqual)

    # -- durable-effect fixpoint -------------------------------------------

    def _durable_fixpoint(self) -> dict[str, frozenset[tuple[str, str, int]]]:
        """Transitive non-marker durable effects per function.

        Monotone set union over call edges; iterate until stable (the
        mutual-recursion case converges because the lattice is finite).
        """
        closure: dict[str, set[tuple[str, str, int]]] = {}
        for fullqual, summary in self.summaries.items():
            closure[fullqual] = {
                (event.kind, fullqual, event.lineno)
                for event in summary.durables
                if not event.marker
            }
        changed = True
        while changed:
            changed = False
            for fullqual in self.graph.functions:
                current = closure[fullqual]
                before = len(current)
                for callee in self.graph.edges.get(fullqual, ()):
                    current |= closure.get(callee, set())
                if len(current) != before:
                    changed = True
        return {
            fullqual: frozenset(events)
            for fullqual, events in closure.items()
        }

    def durable_effects_of(
        self, fullqual: str
    ) -> frozenset[tuple[str, str, int]]:
        return self.durable_closure.get(fullqual, frozenset())

    # -- symbol lookup (--effects CLI) --------------------------------------

    def find_symbols(self, symbol: str) -> list[str]:
        """Fullquals matching ``symbol`` exactly or as a dotted suffix."""
        if symbol in self.summaries:
            return [symbol]
        matches = [
            fullqual
            for fullqual in sorted(self.summaries)
            if fullqual.endswith(f".{symbol}")
            or fullqual.endswith(f"::{symbol}")
        ]
        return matches
