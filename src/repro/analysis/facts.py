"""Per-file facts: the cacheable half of the whole-program analysis.

One parse of a file produces a :class:`ModuleFacts` — symbols, import
edges, call descriptors, raw mutation/durability events, undo-log
registration verdicts and suppression comments — everything the
program-level phases (:mod:`repro.analysis.callgraph`,
:mod:`repro.analysis.effects`, RPR004's cycle detection) need, with no
AST retained.  Facts serialize to plain JSON so the incremental cache
(:mod:`repro.analysis.cache`) can skip the parse for unchanged files.

Extraction is deliberately syntactic and local: a call site records the
receiver *text* and arity, not a resolved target (resolution is the
call graph's job), and a mutation records the attribute chain it wrote
through, not whether that chain is transactional state (classification
is the effect engine's job, driven by the tables in
:mod:`repro.analysis.layers`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.suppressions import collect_suppressions

__all__ = [
    "CallSite",
    "ClassFacts",
    "DurableEvent",
    "FactsExtractor",
    "FunctionFacts",
    "ModuleFacts",
    "Mutation",
    "RecordTarget",
    "extract_module_facts",
]

#: Container/primitive method names that mutate their receiver.  Calls
#: through an attribute with one of these names count as a mutation of
#: the receiver chain; whether that chain is *tracked* state is decided
#: later against the tables in :mod:`repro.analysis.layers`.
MUTATING_METHOD_NAMES = frozenset(
    {
        "add",
        "append",
        "append_child",
        "access",
        "clear",
        "detach",
        "delete_run",
        "discard",
        "extend",
        "insert",
        "insert_child",
        "insert_run",
        "invalidate",
        "invalidate_from",
        "pop",
        "popitem",
        "remove",
        "restore",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Constructor calls whose result is a mutable container (for the
#: module-level shared-state scan).
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)

#: ``FAULTS.hit`` site literals that mark the WAL checkpoint protocol.
_CHECKPOINT_WRITE_SITES = frozenset({"wal.checkpoint_write"})
_CHECKPOINT_TRUNCATE_SITES = frozenset({"wal.checkpoint_truncate"})


@dataclass(frozen=True)
class CallSite:
    """One syntactic call: who might answer it is the call graph's job."""

    name: str
    """Called name (function, class, or method — the last component)."""

    receiver: str
    """Dotted receiver text (``"self"``, ``"self.scheme"``, a module
    alias, ...), ``""`` for bare-name calls, ``"?"`` when unprintable."""

    kind: str
    """``"name"`` | ``"method"`` | ``"super"``."""

    args: int
    """Positional argument count; ``-1`` when ``*args`` is present."""

    keywords: tuple[str, ...]
    """Keyword names; ``"**"`` marks a double-star splat."""

    lineno: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "receiver": self.receiver,
            "kind": self.kind,
            "args": self.args,
            "keywords": list(self.keywords),
            "lineno": self.lineno,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "CallSite":
        return cls(
            name=raw["name"],
            receiver=raw["receiver"],
            kind=raw["kind"],
            args=raw["args"],
            keywords=tuple(raw["keywords"]),
            lineno=raw["lineno"],
        )


@dataclass(frozen=True)
class Mutation:
    """One raw state write: root name, attribute chain, and how."""

    root: str
    """The base name written through (``"self"``, a parameter, ...)."""

    chain: tuple[str, ...]
    """Attributes between the root and the written slot (alias-resolved:
    ``cache[tag] = ...`` after ``cache = self._tag_bytes_cache`` reports
    root ``self``, chain ``("_tag_bytes_cache",)``)."""

    kind: str
    """``"assign"`` | ``"aug"`` | ``"subscript"`` | ``"del"`` |
    ``"call:<method>"``."""

    lineno: int
    col: int

    def describe(self) -> str:
        target = ".".join((self.root,) + self.chain)
        if self.kind.startswith("call:"):
            return f"{target}.{self.kind[5:]}(...)"
        if self.kind == "subscript":
            return f"{target}[...]"
        return target

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "chain": list(self.chain),
            "kind": self.kind,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Mutation":
        return cls(
            root=raw["root"],
            chain=tuple(raw["chain"]),
            kind=raw["kind"],
            lineno=raw["lineno"],
            col=raw["col"],
        )


@dataclass(frozen=True)
class DurableEvent:
    """One durable side effect (or a FAULTS protocol marker for one)."""

    kind: str
    """``"fsync"`` | ``"atomic_write"`` | ``"truncate"`` |
    ``"checkpoint_write"`` | ``"unlink"``."""

    lineno: int
    col: int

    marker: bool = False
    """True for ``FAULTS.hit("wal.checkpoint_*")`` protocol markers —
    they locate the protocol step but are not themselves durable."""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "lineno": self.lineno,
            "col": self.col,
            "marker": self.marker,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "DurableEvent":
        return cls(
            kind=raw["kind"],
            lineno=raw["lineno"],
            col=raw["col"],
            marker=raw["marker"],
        )


@dataclass(frozen=True)
class RecordTarget:
    """What one ``log.record(...)`` call registered as the inverse."""

    kind: str
    """``"local"`` (a nested function/lambda), ``"method"`` (``self.X``),
    ``"func"`` (a module-level name), ``"opaque"`` (container method,
    computed expression)."""

    name: str
    lineno: int
    col: int

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "RecordTarget":
        return cls(
            kind=raw["kind"],
            name=raw["name"],
            lineno=raw["lineno"],
            col=raw["col"],
        )


@dataclass
class FunctionFacts:
    """Effect-relevant summary of one function or method."""

    name: str
    qualname: str
    """``f`` | ``C.f`` | ``C.f.<locals>.g`` — unique within the module."""

    lineno: int
    class_name: str | None
    params: tuple[str, ...]
    annotations: dict[str, str]
    """Parameter name -> annotation source text (when present)."""

    kwonly: tuple[str, ...]
    defaults: int
    has_vararg: bool
    has_kwarg: bool
    calls: list[CallSite] = field(default_factory=list)
    mutations: list[Mutation] = field(default_factory=list)
    durables: list[DurableEvent] = field(default_factory=list)
    record_targets: list[RecordTarget] = field(default_factory=list)
    raises: list[str] = field(default_factory=list)
    registers_undo: bool = False
    """True when the function registers an inverse on every path that a
    bound undo log can reach (the guarded mutation-site idiom)."""

    has_undo_guard: bool = False
    opens_transaction: bool = False
    global_writes: list[Mutation] = field(default_factory=list)
    """Writes through bare names that are not locally bound — candidate
    mutations of module-level state (RPR011)."""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "lineno": self.lineno,
            "class_name": self.class_name,
            "params": list(self.params),
            "annotations": self.annotations,
            "kwonly": list(self.kwonly),
            "defaults": self.defaults,
            "has_vararg": self.has_vararg,
            "has_kwarg": self.has_kwarg,
            "calls": [c.to_dict() for c in self.calls],
            "mutations": [m.to_dict() for m in self.mutations],
            "durables": [d.to_dict() for d in self.durables],
            "record_targets": [t.to_dict() for t in self.record_targets],
            "raises": self.raises,
            "registers_undo": self.registers_undo,
            "has_undo_guard": self.has_undo_guard,
            "opens_transaction": self.opens_transaction,
            "global_writes": [m.to_dict() for m in self.global_writes],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FunctionFacts":
        return cls(
            name=raw["name"],
            qualname=raw["qualname"],
            lineno=raw["lineno"],
            class_name=raw["class_name"],
            params=tuple(raw["params"]),
            annotations=dict(raw["annotations"]),
            kwonly=tuple(raw["kwonly"]),
            defaults=raw["defaults"],
            has_vararg=raw["has_vararg"],
            has_kwarg=raw["has_kwarg"],
            calls=[CallSite.from_dict(c) for c in raw["calls"]],
            mutations=[Mutation.from_dict(m) for m in raw["mutations"]],
            durables=[DurableEvent.from_dict(d) for d in raw["durables"]],
            record_targets=[
                RecordTarget.from_dict(t) for t in raw["record_targets"]
            ],
            raises=list(raw["raises"]),
            registers_undo=raw["registers_undo"],
            has_undo_guard=raw["has_undo_guard"],
            opens_transaction=raw["opens_transaction"],
            global_writes=[
                Mutation.from_dict(m) for m in raw["global_writes"]
            ],
        )


@dataclass
class ClassFacts:
    """One class: bases (as written), methods, and mutable class attrs."""

    name: str
    lineno: int
    bases: tuple[str, ...]
    methods: dict[str, str]
    """Method name -> function qualname (``C.m``)."""

    mutable_class_attrs: list[tuple[str, int]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": list(self.bases),
            "methods": self.methods,
            "mutable_class_attrs": [
                list(entry) for entry in self.mutable_class_attrs
            ],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ClassFacts":
        return cls(
            name=raw["name"],
            lineno=raw["lineno"],
            bases=tuple(raw["bases"]),
            methods=dict(raw["methods"]),
            mutable_class_attrs=[
                (entry[0], entry[1]) for entry in raw["mutable_class_attrs"]
            ],
        )


@dataclass
class ModuleFacts:
    """Everything the program-level phases need from one file."""

    path: str
    module_name: str | None
    is_package: bool
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    classes: dict[str, ClassFacts] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)
    """Local name -> absolute dotted target, for call/base resolution."""

    repro_imports: list[tuple[int, str]] = field(default_factory=list)
    """(lineno, absolute dotted target) for every ``repro`` import —
    RPR004's edge/cycle input."""

    module_mutables: list[tuple[str, int, bool]] = field(default_factory=list)
    """(name, lineno, follows-constant-naming) for each module-level
    mutable container."""

    suppressions: dict[int, list[str]] = field(default_factory=dict)
    """Line -> suppression slugs (mirrors the inline comments)."""

    @property
    def layer(self) -> str:
        from repro.analysis.layers import SCRIPT_LAYER, layer_of_module

        if self.module_name is None:
            return SCRIPT_LAYER
        return layer_of_module(self.module_name)

    def qualify(self, qualname: str) -> str:
        """The program-wide id of a function in this module."""
        anchor = self.module_name or self.path
        return f"{anchor}::{qualname}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "module_name": self.module_name,
            "is_package": self.is_package,
            "functions": {
                qual: facts.to_dict() for qual, facts in self.functions.items()
            },
            "classes": {
                name: facts.to_dict() for name, facts in self.classes.items()
            },
            "imports": self.imports,
            "repro_imports": [list(entry) for entry in self.repro_imports],
            "module_mutables": [list(entry) for entry in self.module_mutables],
            "suppressions": {
                str(line): slugs for line, slugs in self.suppressions.items()
            },
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ModuleFacts":
        return cls(
            path=raw["path"],
            module_name=raw["module_name"],
            is_package=raw["is_package"],
            functions={
                qual: FunctionFacts.from_dict(facts)
                for qual, facts in raw["functions"].items()
            },
            classes={
                name: ClassFacts.from_dict(facts)
                for name, facts in raw["classes"].items()
            },
            imports=dict(raw["imports"]),
            repro_imports=[
                (entry[0], entry[1]) for entry in raw["repro_imports"]
            ],
            module_mutables=[
                (entry[0], entry[1], entry[2])
                for entry in raw["module_mutables"]
            ],
            suppressions={
                int(line): list(slugs)
                for line, slugs in raw["suppressions"].items()
            },
        )


def _dotted_text(node: ast.AST) -> str | None:
    """Source-like dotted text of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_text(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def _is_constant_name(name: str) -> bool:
    stripped = name.lstrip("_")
    return bool(stripped) and stripped == stripped.upper()


def _is_dunder_name(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = node.func
        name = callee.id if isinstance(callee, ast.Name) else (
            callee.attr if isinstance(callee, ast.Attribute) else None
        )
        return name in _MUTABLE_FACTORIES
    return False


class _FunctionWalker:
    """Single in-order pass over one function body.

    Tracks local aliases of attribute chains (``log = self.undo_log``,
    ``cache = self._tag_bytes_cache``, ``bucket =
    self.tag_index.setdefault(...)``) so writes through the alias
    attribute to the chain, and undo-log guard/record structure so the
    ``registers_undo`` verdict matches the repo's mutation-site idiom.
    """

    def __init__(self, facts: FunctionFacts) -> None:
        self.facts = facts
        self.aliases: dict[str, tuple[str, ...]] = {}
        self.undo_aliases: set[str] = set()
        self.local_names: set[str] = set(facts.params)
        self.declared_globals: set[str] = set()
        self.nested: list[tuple[str, ast.AST]] = []

    # -- chains ------------------------------------------------------------

    def _chain_of(self, node: ast.AST) -> tuple[str, ...] | None:
        """(root, attr, attr, ...) for a readable chain, alias-resolved."""
        if isinstance(node, ast.Name):
            resolved = self.aliases.get(node.id)
            return resolved if resolved is not None else (node.id,)
        if isinstance(node, ast.Attribute):
            base = self._chain_of(node.value)
            if base is None:
                return None
            return base + (node.attr,)
        if isinstance(node, ast.Call):
            # getattr(self, "x", ...) and chain.get/.setdefault(...) read
            # *through* the chain; their result aliases it.
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "getattr"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                base = self._chain_of(node.args[0])
                if base is not None:
                    return base + (node.args[1].value,)
            if isinstance(func, ast.Attribute) and func.attr in (
                "get",
                "setdefault",
            ):
                return self._chain_of(func.value)
        return None

    def _is_undo_chain(self, chain: tuple[str, ...] | None) -> bool:
        if not chain:
            return False
        if chain[-1] == "undo_log":
            return True
        return len(chain) == 1 and chain[0] in self.undo_aliases

    # -- record / guard structure ------------------------------------------

    def _record_call(self, node: ast.Call) -> bool:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "record"):
            return False
        return self._is_undo_chain(self._chain_of(func.value))

    def _is_record_stmt(self, stmt: ast.stmt) -> bool:
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and self._record_call(stmt.value)
        )

    def _is_guard_test(self, test: ast.expr) -> bool:
        """Does the condition reference the (possibly aliased) undo log?"""
        for node in ast.walk(test):
            if isinstance(node, ast.Attribute) and node.attr == "undo_log":
                return True
            if isinstance(node, ast.Name) and (
                node.id == "undo_log" or node.id in self.undo_aliases
            ):
                return True
        return False

    def _must_record(self, stmts: list[ast.stmt]) -> bool:
        """All-paths-record over a guard body.

        An ``If`` without ``else`` passes when its body records — a
        conditional inverse (``splice_out`` records only when the node
        has a parent) is accepted; an ``If``/``else`` requires both arms
        so deleting one branch's registration is caught.
        """
        for stmt in stmts:
            if self._is_record_stmt(stmt):
                return True
            if isinstance(stmt, ast.If):
                if stmt.orelse:
                    if self._must_record(stmt.body) and self._must_record(
                        stmt.orelse
                    ):
                        return True
                elif self._must_record(stmt.body):
                    return True
            elif isinstance(stmt, (ast.With, ast.For, ast.While, ast.Try)):
                if self._must_record(stmt.body):
                    return True
        return False

    def _registers(self, stmts: list[ast.stmt]) -> bool:
        for stmt in stmts:
            if self._is_record_stmt(stmt):
                return True  # unconditional registration
            if isinstance(stmt, ast.If):
                if self._is_guard_test(stmt.test):
                    if self._must_record(stmt.body):
                        return True
                elif (
                    stmt.orelse
                    and self._registers(stmt.body)
                    and self._registers(stmt.orelse)
                ):
                    return True
            elif isinstance(stmt, (ast.With, ast.For, ast.While, ast.Try)):
                if self._registers(stmt.body):
                    return True
        return False

    def _has_guard(self, stmts: list[ast.stmt]) -> bool:
        for stmt in stmts:
            if isinstance(stmt, ast.If) and self._is_guard_test(stmt.test):
                return True
            for child in ast.iter_child_nodes(stmt):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(child, ast.If) and self._is_guard_test(
                    child.test
                ):
                    return True
        return False

    # -- statement walk ----------------------------------------------------

    def walk(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)
        self.facts.registers_undo = self._registers(body)
        self.facts.has_undo_guard = self._has_guard(body)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.local_names.add(stmt.name)
            self.nested.append((stmt.name, stmt))
            return
        if isinstance(stmt, ast.ClassDef):
            self.local_names.add(stmt.name)
            return
        if isinstance(stmt, ast.Assign):
            self._expression(stmt.value)
            self._assign(stmt.targets, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expression(stmt.value)
                self._assign([stmt.target], stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expression(stmt.value)
            self._write_target(stmt.target, "aug")
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._write_target(target, "del")
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expression(stmt.exc)
                exc = stmt.exc
                name = None
                if isinstance(exc, ast.Call):
                    name = (
                        exc.func.id
                        if isinstance(exc.func, ast.Name)
                        else getattr(exc.func, "attr", None)
                    )
                elif isinstance(exc, ast.Name):
                    name = exc.id
                if name:
                    self.facts.raises.append(name)
            return
        if isinstance(stmt, ast.If):
            self._expression(stmt.test)
            for child in stmt.body:
                self._statement(child)
            for child in stmt.orelse:
                self._statement(child)
            return
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                self._expression(item.context_expr)
                call = item.context_expr
                if isinstance(call, ast.Call):
                    name = (
                        call.func.id
                        if isinstance(call.func, ast.Name)
                        else getattr(call.func, "attr", None)
                    )
                    if name in ("Transaction", "_atomic"):
                        self.facts.opens_transaction = True
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    self.local_names.add(item.optional_vars.id)
            for child in stmt.body:
                self._statement(child)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expression(stmt.iter)
            for node in ast.walk(stmt.target):
                if isinstance(node, ast.Name):
                    self.local_names.add(node.id)
                    self.aliases.pop(node.id, None)
            for child in stmt.body:
                self._statement(child)
            for child in stmt.orelse:
                self._statement(child)
            return
        if isinstance(stmt, ast.While):
            self._expression(stmt.test)
            for child in stmt.body:
                self._statement(child)
            for child in stmt.orelse:
                self._statement(child)
            return
        if isinstance(stmt, ast.Try):
            for child in stmt.body:
                self._statement(child)
            for handler in stmt.handlers:
                if handler.name:
                    self.local_names.add(handler.name)
                for child in handler.body:
                    self._statement(child)
            for child in stmt.orelse:
                self._statement(child)
            for child in stmt.finalbody:
                self._statement(child)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expression(stmt.value)
            return
        if isinstance(stmt, ast.Expr):
            self._expression(stmt.value)
            return
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                self.local_names.add(
                    (alias.asname or alias.name).split(".")[0]
                )
            return
        if isinstance(stmt, ast.Assert):
            self._expression(stmt.test)
            return
        if isinstance(stmt, ast.Global):
            # Rebinds of these names are module-state writes, not
            # local bindings.
            self.declared_globals.update(stmt.names)
            self.local_names.difference_update(stmt.names)
            return
        # Pass/Break/Continue/Nonlocal and anything else: nothing
        # effect-relevant beyond what the cases above capture.

    def _assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        source_chain = self._chain_of(value)
        attr_chain: tuple[str, ...] | None = None
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._write_target(target, "assign")
                if attr_chain is None and isinstance(target, ast.Attribute):
                    attr_chain = self._chain_of(target)
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in self.declared_globals:
                    self._mutation((target.id,), "assign", target)
                    continue
                self.local_names.add(target.id)
                chain = None
                if source_chain is not None and len(source_chain) > 1:
                    chain = source_chain
                elif attr_chain is not None:
                    # `cache = self._x = {}`: the name and the attribute
                    # are the same object; writes through either alias.
                    chain = attr_chain
                if chain is not None:
                    self.aliases[target.id] = chain
                    if chain[-1] == "undo_log":
                        self.undo_aliases.add(target.id)
                else:
                    self.aliases.pop(target.id, None)
                    self.undo_aliases.discard(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self.local_names.add(element.id)
                        self.aliases.pop(element.id, None)

    def _write_target(self, target: ast.expr, kind: str) -> None:
        if isinstance(target, ast.Subscript):
            self._expression(target.slice)
            chain = self._chain_of(target.value)
            if chain is not None:
                self._mutation(
                    chain, "subscript" if kind != "del" else "del", target
                )
            return
        if isinstance(target, ast.Attribute):
            chain = self._chain_of(target.value)
            if chain is not None:
                self._mutation(chain + (target.attr,), kind, target)
            return
        if isinstance(target, ast.Name) and kind == "aug":
            # `name += ...` rebinding of a module-level container shows
            # up as a global write candidate; plain locals are dropped
            # during classification.
            self._mutation((target.id,), kind, target)

    def _mutation(
        self, chain: tuple[str, ...], kind: str, node: ast.AST
    ) -> None:
        mutation = Mutation(
            root=chain[0],
            chain=chain[1:],
            kind=kind,
            lineno=getattr(node, "lineno", self.facts.lineno),
            col=getattr(node, "col_offset", 0),
        )
        if (
            chain[0] not in self.local_names
            and chain[0] not in ("self", "cls")
            and chain[0] not in self.aliases
        ):
            self.facts.global_writes.append(mutation)
        else:
            self.facts.mutations.append(mutation)

    def _expression(self, node: ast.expr) -> None:
        """Collect calls, call-mutations and durable events in order.

        Lambda bodies are *not* pruned: a deferred call like the
        engine's ``txn.on_commit(lambda: self._commit_wal(...))`` still
        contributes a call edge from the enclosing function, which is
        how the commit hook becomes reachable in the graph.
        """
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._call(child)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        args = -1 if any(
            isinstance(arg, ast.Starred) for arg in node.args
        ) else len(node.args)
        keywords = tuple(
            keyword.arg if keyword.arg is not None else "**"
            for keyword in node.keywords
        )
        if isinstance(func, ast.Name):
            self.facts.calls.append(
                CallSite(
                    name=func.id,
                    receiver="",
                    kind="name",
                    args=args,
                    keywords=keywords,
                    lineno=node.lineno,
                )
            )
            self._durable_by_name(func.id, node)
        elif isinstance(func, ast.Attribute):
            receiver = func.value
            if (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
            ):
                kind = "super"
                receiver_text = "super()"
            else:
                kind = "method"
                receiver_text = _dotted_text(receiver) or "?"
            self.facts.calls.append(
                CallSite(
                    name=func.attr,
                    receiver=receiver_text,
                    kind=kind,
                    args=args,
                    keywords=keywords,
                    lineno=node.lineno,
                )
            )
            if func.attr in MUTATING_METHOD_NAMES:
                chain = self._chain_of(receiver)
                if chain is not None:
                    self._mutation(chain, f"call:{func.attr}", node)
            self._durable_by_name(func.attr, node)
            if func.attr == "hit":
                self._faults_marker(node)
            if self._record_call(node):
                self.facts.record_targets.append(self._record_target(node))

    def _durable_by_name(self, name: str, node: ast.Call) -> None:
        if name == "fsync":
            self._durable("fsync", node)
        elif name == "save_labeled":
            self._durable("checkpoint_write", node)
        elif name == "atomic_write_bytes":
            payload = node.args[1] if len(node.args) >= 2 else None
            truncating = (
                isinstance(payload, ast.Constant)
                and payload.value == b""
            )
            self._durable("truncate" if truncating else "atomic_write", node)
        elif name == "truncate":
            self._durable("truncate", node)
        elif name == "unlink":
            self._durable("unlink", node)

    def _faults_marker(self, node: ast.Call) -> None:
        if not node.args:
            return
        site = node.args[0]
        if not (isinstance(site, ast.Constant) and isinstance(site.value, str)):
            return
        if site.value in _CHECKPOINT_WRITE_SITES:
            self.facts.durables.append(
                DurableEvent(
                    kind="checkpoint_write",
                    lineno=node.lineno,
                    col=node.col_offset,
                    marker=True,
                )
            )
        elif site.value in _CHECKPOINT_TRUNCATE_SITES:
            self.facts.durables.append(
                DurableEvent(
                    kind="truncate",
                    lineno=node.lineno,
                    col=node.col_offset,
                    marker=True,
                )
            )

    def _durable(self, kind: str, node: ast.Call) -> None:
        self.facts.durables.append(
            DurableEvent(kind=kind, lineno=node.lineno, col=node.col_offset)
        )

    def _record_target(self, node: ast.Call) -> RecordTarget:
        lineno, col = node.lineno, node.col_offset
        if not node.args:
            return RecordTarget("opaque", "", lineno, col)
        arg: ast.expr = node.args[0]
        if isinstance(arg, ast.Call):
            func = arg.func
            name = func.id if isinstance(func, ast.Name) else getattr(
                func, "attr", None
            )
            if name == "partial" and arg.args:
                arg = arg.args[0]
            else:
                # `log.record(self._counters_undo())` registers the
                # *result* of the call; the maker is the closest proxy.
                arg = func
        if isinstance(arg, ast.Lambda):
            name = f"<lambda:{arg.lineno}>"
            self.nested.append((name, arg))
            return RecordTarget("local", name, lineno, col)
        if isinstance(arg, ast.Name):
            return RecordTarget("local", arg.id, lineno, col)
        if isinstance(arg, ast.Attribute):
            if isinstance(arg.value, ast.Name) and arg.value.id in (
                "self",
                "cls",
            ):
                return RecordTarget("method", arg.attr, lineno, col)
            return RecordTarget("opaque", arg.attr, lineno, col)
        return RecordTarget("opaque", "", lineno, col)


class FactsExtractor:
    """Walks one parsed module into a :class:`ModuleFacts`."""

    def __init__(
        self,
        path: str,
        module_name: str | None,
        is_package: bool,
        tree: ast.Module,
        source_lines: list[str],
    ) -> None:
        self.facts = ModuleFacts(
            path=path, module_name=module_name, is_package=is_package
        )
        self.tree = tree
        self.source_lines = source_lines

    def extract(self) -> ModuleFacts:
        self._imports()
        self._suppressions()
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, qual_prefix="", class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._class(stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and not _is_dunder_name(target.id)
                        and _is_mutable_literal(stmt.value)
                    ):
                        self.facts.module_mutables.append(
                            (
                                target.id,
                                stmt.lineno,
                                _is_constant_name(target.id),
                            )
                        )
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and not _is_dunder_name(stmt.target.id)
                    and stmt.value is not None
                    and _is_mutable_literal(stmt.value)
                ):
                    self.facts.module_mutables.append(
                        (
                            stmt.target.id,
                            stmt.lineno,
                            _is_constant_name(stmt.target.id),
                        )
                    )
        return self.facts

    def _suppressions(self) -> None:
        collected = collect_suppressions(self.source_lines)
        self.facts.suppressions = {
            line: sorted(slugs)
            for line, slugs in collected.by_line().items()
        }

    def _imports(self) -> None:
        anchor_parts = (
            self.facts.module_name.split(".")
            if self.facts.module_name
            else None
        )
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(
                        "."
                    )[0]
                    self.facts.imports.setdefault(local, target)
                    if alias.name == "repro" or alias.name.startswith(
                        "repro."
                    ):
                        self.facts.repro_imports.append(
                            (node.lineno, alias.name)
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    resolved = self._resolve_relative(
                        anchor_parts, node.level, node.module
                    )
                else:
                    resolved = node.module
                if resolved is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.facts.imports.setdefault(
                        local, f"{resolved}.{alias.name}"
                    )
                if resolved == "repro" or resolved.startswith("repro."):
                    self.facts.repro_imports.append((node.lineno, resolved))

    def _resolve_relative(
        self, anchor_parts: list[str] | None, level: int, target: str | None
    ) -> str | None:
        if anchor_parts is None:
            return None
        anchor = list(anchor_parts)
        if not self.facts.is_package:
            anchor = anchor[:-1]
        if level > 1:
            if level - 1 >= len(anchor):
                return None
            anchor = anchor[: -(level - 1)]
        if target:
            return ".".join(anchor + target.split("."))
        return ".".join(anchor)

    def _class(self, node: ast.ClassDef) -> None:
        bases = tuple(
            text
            for text in (_dotted_text(base) for base in node.bases)
            if text is not None
        )
        class_facts = ClassFacts(
            name=node.name, lineno=node.lineno, bases=bases, methods={}
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = self._function(
                    stmt, qual_prefix=f"{node.name}.", class_name=node.name
                )
                class_facts.methods[stmt.name] = qual
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and _is_mutable_literal(
                        stmt.value
                    ):
                        class_facts.mutable_class_attrs.append(
                            (target.id, stmt.lineno)
                        )
        self.facts.classes[node.name] = class_facts

    def _function(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        *,
        qual_prefix: str,
        class_name: str | None,
    ) -> str:
        qualname = f"{qual_prefix}{node.name}"
        facts = self._make_function_facts(node, qualname, class_name)
        walker = _FunctionWalker(facts)
        walker.walk(node.body)
        self.facts.functions[qualname] = facts
        for name, nested in walker.nested:
            if isinstance(nested, ast.Lambda):
                self._lambda(
                    nested, f"{qualname}.<locals>.{name}", class_name
                )
            else:
                self._function(
                    nested,
                    qual_prefix=f"{qualname}.<locals>.",
                    class_name=class_name,
                )
        return qualname

    def _lambda(
        self, node: ast.Lambda, qualname: str, class_name: str | None
    ) -> None:
        facts = FunctionFacts(
            name=qualname.rsplit(".", 1)[-1],
            qualname=qualname,
            lineno=node.lineno,
            class_name=class_name,
            params=tuple(arg.arg for arg in node.args.args),
            annotations={},
            kwonly=tuple(arg.arg for arg in node.args.kwonlyargs),
            defaults=len(node.args.defaults),
            has_vararg=node.args.vararg is not None,
            has_kwarg=node.args.kwarg is not None,
        )
        walker = _FunctionWalker(facts)
        walker.walk([ast.Expr(value=node.body)])
        self.facts.functions[qualname] = facts

    def _make_function_facts(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        qualname: str,
        class_name: str | None,
    ) -> FunctionFacts:
        args = node.args
        params = [arg.arg for arg in args.posonlyargs + args.args]
        annotations: dict[str, str] = {}
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                annotations[arg.arg] = ast.unparse(arg.annotation)
        return FunctionFacts(
            name=node.name,
            qualname=qualname,
            lineno=node.lineno,
            class_name=class_name,
            params=tuple(params),
            annotations=annotations,
            kwonly=tuple(arg.arg for arg in args.kwonlyargs),
            defaults=len(args.defaults),
            has_vararg=args.vararg is not None,
            has_kwarg=args.kwarg is not None,
        )


def extract_module_facts(
    path: str,
    module_name: str | None,
    is_package: bool,
    tree: ast.Module,
    source_lines: list[str],
) -> ModuleFacts:
    """One call = one file's complete fact set."""
    return FactsExtractor(
        path, module_name, is_package, tree, source_lines
    ).extract()
