"""Rule protocol, per-module context, and the rule registry.

A rule is a class with an ``RPRnnn`` id, a suppression slug, a severity
and a :meth:`Rule.check` generator over one :class:`ModuleContext`.
Rules that need a whole-program view (RPR004's cycle detection, the
RPR009-RPR011 effect rules) also override :meth:`Rule.finalize`, which
runs once over the assembled :class:`~repro.analysis.program.Program`
after every module has been extracted.

Registering is one decorator::

    @register
    class MyRule(Rule):
        id = "RPR006"
        slug = "my-thing"
        severity = Severity.ERROR
        description = "..."

        def check(self, module):
            yield from ()

The CLI, the pytest entry point and the reporters all discover rules
through :func:`all_rules`, so a new rule ships by merely importing its
module from :mod:`repro.analysis.rules`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.program import Program

from repro.analysis.findings import AnalysisConfigError, Finding, Severity
from repro.analysis.layers import SCRIPT_LAYER, layer_of_module

__all__ = [
    "ModuleContext",
    "Rule",
    "all_rules",
    "get_rules",
    "register",
]


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one analyzed file."""

    path: str
    """Project-relative POSIX path (as reported in findings)."""

    module_name: str | None
    """Dotted module name for files under ``src/``; ``None`` for scripts."""

    tree: ast.Module
    """The parsed AST."""

    source_lines: list[str] = field(default_factory=list)
    """Raw source, split into lines (for suppression comments)."""

    is_package: bool = False
    """True when the file is an ``__init__.py``."""

    @property
    def layer(self) -> str:
        """The layering-DAG layer owning this file."""
        if self.module_name is None:
            return SCRIPT_LAYER
        return layer_of_module(self.module_name)

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        """A finding of ``rule`` anchored at ``node`` in this module."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule.id,
            severity=rule.severity,
            message=message,
        )


class Rule:
    """Base class for analysis rules; subclass and :func:`register`."""

    id: str = "RPR000"
    slug: str = "unnamed"
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Findings for one module.  Override in subclasses."""
        raise NotImplementedError

    def finalize(self, program: "Program") -> Iterator[Finding]:
        """Whole-program findings over the assembled fact base.

        ``program.modules`` holds every file's
        :class:`~repro.analysis.facts.ModuleFacts`;
        ``program.call_graph`` / ``program.effects`` build lazily, so
        per-file rules cost nothing extra.  Runs after every module was
        extracted (including cache hits — facts round-trip the cache).
        """
        return iter(())


_REGISTRY: dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one rule instance to the registry."""
    rule = rule_class()
    if not rule.id.startswith("RPR"):
        raise AnalysisConfigError(
            f"rule id {rule.id!r} must start with 'RPR'"
        )
    if rule.id in _REGISTRY:
        raise AnalysisConfigError(f"duplicate rule id {rule.id!r}")
    slugs = {existing.slug for existing in _REGISTRY.values()}
    if rule.slug in slugs:
        raise AnalysisConfigError(f"duplicate rule slug {rule.slug!r}")
    _REGISTRY[rule.id] = rule
    return rule_class


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    import repro.analysis.rules  # noqa: F401  (registers on import)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rules(rule_ids: Iterable[str] | None = None) -> list[Rule]:
    """The selected rules (``None`` means all), validating the ids."""
    rules = all_rules()
    if rule_ids is None:
        return rules
    wanted = list(rule_ids)
    known = {rule.id for rule in rules}
    unknown = [rule_id for rule_id in wanted if rule_id not in known]
    if unknown:
        raise AnalysisConfigError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [rule for rule in rules if rule.id in set(wanted)]
