"""Text, JSON, and SARIF reporters over an analysis result."""

from __future__ import annotations

import json

from repro.analysis.registry import all_rules
from repro.analysis.runner import AnalysisResult

__all__ = ["render_json", "render_sarif", "render_text"]


def render_text(result: AnalysisResult) -> str:
    """One ``path:line:col: RULE [severity] message`` line per finding."""
    lines = [
        f"{finding.path}:{finding.line}:{finding.col}: "
        f"{finding.rule} [{finding.severity}] {finding.message}"
        for finding in result.findings
    ]
    errors = sum(1 for f in result.findings if f.severity.name == "ERROR")
    warnings = len(result.findings) - errors
    summary = (
        f"{len(result.findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s)) "
        f"in {result.files_scanned} file(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed inline")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if extras:
        summary += f"; {', '.join(extras)}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Stable machine-readable report (consumed by CI)."""
    document = {
        "version": 1,
        "findings": [finding.to_dict() for finding in result.findings],
        "summary": {
            "files_scanned": result.files_scanned,
            "findings": len(result.findings),
            "errors": sum(
                1 for f in result.findings if f.severity.name == "ERROR"
            ),
            "warnings": sum(
                1 for f in result.findings if f.severity.name == "WARNING"
            ),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(result: AnalysisResult) -> str:
    """SARIF 2.1.0 report (the format CI uploads so findings annotate
    pull requests).  Only rules with at least the minimal metadata are
    emitted; severities map error -> "error", warning -> "warning".
    """
    rule_index: dict[str, int] = {}
    rules_meta = []
    for rule in all_rules():
        rule_index[rule.id] = len(rules_meta)
        rules_meta.append(
            {
                "id": rule.id,
                "name": rule.slug,
                "shortDescription": {"text": rule.description},
                "defaultConfiguration": {
                    "level": str(rule.severity),
                },
            }
        )
    results = []
    for finding in result.findings:
        entry = {
            "ruleId": finding.rule,
            "level": str(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            entry["ruleIndex"] = rule_index[finding.rule]
        results.append(entry)
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": (
                            "docs/STATIC_ANALYSIS.md"
                        ),
                        "rules": rules_meta,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
