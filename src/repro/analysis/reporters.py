"""Text and JSON reporters over an analysis result."""

from __future__ import annotations

import json

from repro.analysis.runner import AnalysisResult

__all__ = ["render_json", "render_text"]


def render_text(result: AnalysisResult) -> str:
    """One ``path:line:col: RULE [severity] message`` line per finding."""
    lines = [
        f"{finding.path}:{finding.line}:{finding.col}: "
        f"{finding.rule} [{finding.severity}] {finding.message}"
        for finding in result.findings
    ]
    errors = sum(1 for f in result.findings if f.severity.name == "ERROR")
    warnings = len(result.findings) - errors
    summary = (
        f"{len(result.findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s)) "
        f"in {result.files_scanned} file(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed inline")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if extras:
        summary += f"; {', '.join(extras)}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Stable machine-readable report (consumed by CI)."""
    document = {
        "version": 1,
        "findings": [finding.to_dict() for finding in result.findings],
        "summary": {
            "files_scanned": result.files_scanned,
            "findings": len(result.findings),
            "errors": sum(
                1 for f in result.findings if f.severity.name == "ERROR"
            ),
            "warnings": sum(
                1 for f in result.findings if f.severity.name == "WARNING"
            ),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)
