"""The declared import-layering DAG — the single source of truth.

Every ``repro`` subsystem registers here which *other* subsystems it may
import.  RPR004 (:mod:`repro.analysis.rules.layering`) checks the actual
``import`` statements of every module against this table, so adding a
new subsystem means adding one :func:`register_layer` call (or editing
:data:`LAYERS`) — not editing the rule.

The layer of a module is the first dotted component under ``repro``:
``repro.core.bitstring`` lives in layer ``core``; the top-level modules
``repro.errors`` / ``repro.store`` and the package root ``repro`` itself
are each their own layer.  Files outside ``src/`` (benchmarks, examples,
scripts) belong to the pseudo-layer :data:`SCRIPT_LAYER`, which may
import anything.

The table must describe a DAG; :func:`validate_layers` rejects declared
cycles at load time, and RPR004 additionally reports any cycle in the
*observed* import graph (which a stale or over-permissive declaration
could otherwise let through).
"""

from __future__ import annotations

from repro.analysis.findings import AnalysisConfigError

__all__ = [
    "ALL_LAYERS",
    "LAYERS",
    "SCRIPT_LAYER",
    "allowed_imports",
    "layer_of_module",
    "register_layer",
    "validate_layers",
    "ASSERT_RULE_MODULE_PREFIXES",
    "NAKED_WRITE_EXEMPT_MODULES",
    "NAKED_WRITE_MODULE_PREFIXES",
    "RAW_BITS_ALLOWED_MODULES",
    "RAW_COMPARE_ALLOWED_MODULES",
    "SHARED_STATE_SERVICE_REACHABLE_PREFIXES",
    "TIMING_ALLOWED_MODULE_PREFIXES",
    "TIMING_ALLOWED_PATH_PARTS",
    "UNGUARDED_CODE_EXEMPT_MODULES",
]


SCRIPT_LAYER = "scripts"
"""Pseudo-layer for files outside ``src/`` — unconstrained imports."""

ALL_LAYERS = "*"
"""Sentinel meaning "may import every layer" (facades and harnesses)."""


#: layer name -> layers it may import.  ``ALL_LAYERS`` marks facades.
#: Keep entries in dependency order (lowest first) for readability.
LAYERS: dict[str, frozenset[str] | str] = {
    # Foundations: no intra-package imports at all.
    "errors": frozenset(),
    # Observability is a leaf: every instrumented layer may call into
    # it, so it must not import back up (which is also why its CLI
    # cannot build live documents — see repro/obs/__main__.py).
    "obs": frozenset({"errors"}),
    # The static analyzer itself: deliberately near-leaf so it can lint
    # everything above it without creating cycles.
    "analysis": frozenset({"errors"}),
    # Fault injection is a near-leaf like obs: every instrumented layer
    # may consult the FAULTS registry, so it must not import back up.
    # (It uses obs only to count injections.)
    "faults": frozenset({"errors", "obs"}),
    # Paper foundations (BitString, Algorithms 1/2, QED, order keys).
    "core": frozenset({"errors", "faults", "obs"}),
    # The XML document model is independent of encodings.
    "xmltree": frozenset({"errors"}),
    # Dataset generators build documents only.
    "datasets": frozenset({"errors", "xmltree"}),
    # Labeling schemes sit on the encodings and the tree model —
    # never on storage, query, or relational (Property 5.1: encodings
    # and schemes stay orthogonal to how labels are stored or queried).
    "labeling": frozenset({"errors", "core", "faults", "obs", "xmltree"}),
    "storage": frozenset(
        {"errors", "core", "faults", "labeling", "obs", "xmltree"}
    ),
    "query": frozenset({"errors", "core", "labeling", "obs", "xmltree"}),
    "relational": frozenset(
        {"errors", "core", "labeling", "query", "xmltree"}
    ),
    # Durability: the WAL replays through labeling/storage directly and
    # must never import `updates` — recovery cannot depend on the engine
    # whose durability it implements (same rule as `verify`).
    "wal": frozenset(
        {"errors", "core", "faults", "labeling", "obs", "storage", "xmltree"}
    ),
    "updates": frozenset(
        {
            "errors",
            "core",
            "faults",
            "labeling",
            "obs",
            "storage",
            "wal",
            "xmltree",
        }
    ),
    # The integrity verifier reads every structure the update path
    # mutates (labels, order index, SC groups, page offsets) but never
    # mutates anything itself, so it sits beside `updates`, above
    # storage and labeling.
    "verify": frozenset(
        {"errors", "core", "labeling", "obs", "storage", "xmltree"}
    ),
    # The concurrent document service (ROADMAP item 1) sits on top of
    # the whole engine stack: it owns writer threads and the commit
    # queue, delegates document work to `updates`, durability to `wal`
    # (via the engine's group-commit scope) and reads to `labeling`
    # snapshots + `query`.  Nothing below may import it back.
    "service": frozenset(
        {
            "errors",
            "core",
            "faults",
            "labeling",
            "obs",
            "query",
            "storage",
            "updates",
            "verify",
            "wal",
            "xmltree",
        }
    ),
    # Facades and harnesses.
    "store": ALL_LAYERS,
    "bench": ALL_LAYERS,
    "repro": ALL_LAYERS,  # the package root re-exports the public API
}


#: Modules allowed to manipulate raw '0'/'1' text and packed
#: ``(value, length)`` payloads (RPR001).  Everything else must go
#: through :class:`repro.core.bitstring.BitString`.  The per-bit
#: differential oracle is codec core too — it *is* an alternative
#: BitString implementation.
RAW_BITS_ALLOWED_MODULES = frozenset(
    {"repro.core.bitstring", "repro.core.bitstring_ref"}
)

#: Modules allowed to order labels via raw str()/tuple()/to01() casts
#: (RPR002).  Empty: the comparators are the only sanctioned order.
RAW_COMPARE_ALLOWED_MODULES: frozenset[str] = frozenset()

#: Modules exempt from RPR003 because they *define* the insertion
#: algorithms whose call sites the rule polices.
UNGUARDED_CODE_EXEMPT_MODULES = frozenset({"repro.core.middle"})

#: RPR005's assert-as-validation check applies only to library code;
#: benchmarks and examples use ``assert`` as executable documentation.
ASSERT_RULE_MODULE_PREFIXES = ("repro",)

#: RPR006: modules allowed to read wall clocks directly.  Everything
#: else times code through ``repro.obs`` spans so the measurement is
#: observable (and attributable) instead of a local variable.
TIMING_ALLOWED_MODULE_PREFIXES = ("repro.obs",)

#: RPR006 also exempts files under any ``benchmarks/`` directory —
#: harnesses own their clocks (calibration loops, per-op timing).
TIMING_ALLOWED_PATH_PARTS = frozenset({"benchmarks"})

#: RPR008: module prefixes where a naked ``open(..., "w"/"wb")`` (or
#: ``Path.write_bytes``/``write_text``) is banned — durable artifacts in
#: these layers must go through ``atomic_write_bytes`` or the WAL's
#: append path, so a crash can never expose a half-written file.
NAKED_WRITE_MODULE_PREFIXES = ("repro.storage", "repro.wal")

#: The one sanctioned implementation of the temp-file + ``os.replace``
#: recipe (and therefore the one place allowed to open for writing).
NAKED_WRITE_EXEMPT_MODULES = frozenset({"repro.storage.atomicio"})


# -- whole-program effect analysis (RPR009-RPR011) --------------------------
#
# The tracked-state taxonomy.  "Facade" classes own transactional state
# and *their own methods* are the mutation sites that must register
# inverses (the PR-4 idiom: ``log = self.undo_log; if log is not None:
# log.record(<inverse>)``).  "Primitive" classes are the raw structures
# the facades wrap: mutations *inside* them are exempt (the wrapper owns
# the undo responsibility), but calling one of their mutator methods
# from outside counts as a tracked mutation of the receiver.  "Durable"
# classes appear in effect summaries but are policed by RPR010's
# protocol checks rather than RPR009's undo discipline.

#: Facade class -> attributes excluded from mutation tracking (the
#: undo-log binding itself, plus knobs that are not document state).
TXN_STATE_FACADE_CLASSES: dict[str, frozenset[str]] = {
    "LabeledDocument": frozenset({"undo_log"}),
    "PageStore": frozenset({"undo_log", "retry_backoff_seconds"}),
}

#: Primitive state classes (self-mutations exempt; external calls to
#: their mutator methods are tracked mutations of the receiver chain).
TXN_STATE_PRIMITIVE_CLASSES = frozenset(
    {
        "Node",
        "OrderStatisticTree",
        "BufferPool",
        "PageCounter",
        # Labeling-scheme codec state: ``bulk()`` widens _field_bits/_width.
        "IntervalCodec",
        "VBinaryCodec",
        "FBinaryCodec",
        "GappedIntegerCodec",
        "FloatPointCodec",
        "VCDBSCodec",
        "FCDBSCodec",
        "QEDCodec",
    }
)

#: Durable-state classes: summarized, never RPR009-flagged.
DURABLE_STATE_CLASSES = frozenset({"WalManager"})

#: Parameter-name conventions that type untyped parameters for effect
#: classification (annotations win when present).
EFFECT_PARAM_CONVENTIONS: dict[str, str] = {
    "labeled": "LabeledDocument",
    "node": "Node",
    "parent": "Node",
    "child": "Node",
    "target": "Node",
    "subtree_root": "Node",
}

#: Public entry points the RPR009 reachability starts from.
EFFECT_ENTRY_POINTS: tuple[tuple[str, str], ...] = (
    ("repro.updates.engine", "UpdateEngine"),
)

#: Modules exempt from RPR009: the transaction machinery itself (its
#: whole job is to mutate state while orchestrating the undo log).
EFFECT_EXEMPT_MODULES = frozenset({"repro.updates.txn"})

#: Module prefixes where durable side effects are sanctioned (RPR010).
DURABLE_ALLOWED_MODULE_PREFIXES = (
    "repro.wal",
    "repro.storage.atomicio",
    "repro.storage.labelfile",
)

#: RPR011 exempts the explicit process-wide registries and the tooling
#: that is never on an engine code path.
SHARED_STATE_EXEMPT_MODULE_PREFIXES = (
    "repro.obs",
    "repro.faults",
    "repro.analysis",
    "repro.bench",
)

#: RPR011 severity promotion: module prefixes reachable from the
#: concurrent document service, where shared mutable state is no longer
#: a future hazard but a live data race (many writer threads, snapshot
#: readers).  Findings in these modules are errors; elsewhere they stay
#: warnings until the module joins a service code path.
SHARED_STATE_SERVICE_REACHABLE_PREFIXES = (
    "repro.service",
    "repro.updates",
    "repro.wal",
    "repro.labeling",
    "repro.storage",
    "repro.query",
    "repro.core",
    "repro.xmltree",
)

#: Script files under these directory names are exempt from the
#: script-mode effect checks (harnesses own their state).
SCRIPT_EFFECTS_EXEMPT_PATH_PARTS = frozenset({"benchmarks", "examples"})

#: Generic container verbs never duck-resolved to class methods — they
#: would wire ``self._wal_pending.clear()`` to ``BufferPool.clear``.
DUCK_SKIP_METHOD_NAMES = frozenset(
    {
        "add",
        "append",
        "clear",
        "close",
        "copy",
        "count",
        "discard",
        "endswith",
        "extend",
        "flush",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "pop",
        "popitem",
        "read",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "split",
        "startswith",
        "strip",
        "update",
        "values",
        "write",
    }
)


def register_layer(
    name: str, allowed: frozenset[str] | set[str] | str
) -> None:
    """Declare a new subsystem and the layers it may import.

    Future subsystems call this (or add a :data:`LAYERS` entry) instead
    of editing RPR004.  Pass :data:`ALL_LAYERS` for facades.
    """
    if name in LAYERS:
        raise AnalysisConfigError(f"layer {name!r} is already registered")
    LAYERS[name] = (
        allowed if allowed == ALL_LAYERS else frozenset(allowed)
    )
    try:
        validate_layers()
    except AnalysisConfigError:
        del LAYERS[name]
        raise


def layer_of_module(module_name: str) -> str:
    """The layer owning a dotted ``repro`` module name.

    ``repro`` itself, ``repro.errors`` and ``repro.store`` are their own
    layers; anything else under ``repro`` belongs to its first
    sub-package.  Names outside the package map to the script layer.
    """
    parts = module_name.split(".")
    if parts[0] != "repro":
        return SCRIPT_LAYER
    if len(parts) == 1:
        return "repro"
    return parts[1]


def allowed_imports(layer: str) -> frozenset[str] | str:
    """The layers ``layer`` may import (or :data:`ALL_LAYERS`).

    Unknown layers get an empty allowance, so a brand-new subsystem
    fails RPR004 until it is declared here — by design.
    """
    if layer == SCRIPT_LAYER:
        return ALL_LAYERS
    return LAYERS.get(layer, frozenset())


def validate_layers(table: dict[str, frozenset[str] | str] | None = None) -> None:
    """Reject a cyclic or dangling layering declaration.

    Facade layers (``ALL_LAYERS``) are excluded from cycle checking:
    they may import everything but nothing below is allowed to import
    them back, which the per-edge check enforces.
    """
    layers = LAYERS if table is None else table
    strict = {
        name: allowed
        for name, allowed in layers.items()
        if allowed != ALL_LAYERS
    }
    for name, allowed in strict.items():
        unknown = set(allowed) - set(layers)
        if unknown:
            raise AnalysisConfigError(
                f"layer {name!r} allows unknown layers: {sorted(unknown)}"
            )
    # Depth-first search over the declared edges; a back edge is a cycle.
    WHITE, GRAY, BLACK = 0, 1, 2
    state = dict.fromkeys(strict, WHITE)

    def visit(node: str, trail: list[str]) -> None:
        state[node] = GRAY
        trail.append(node)
        for dep in sorted(strict.get(node, frozenset())):
            if dep not in strict:
                continue  # facade or script layer: no outgoing check
            if state[dep] == GRAY:
                cycle = trail[trail.index(dep) :] + [dep]
                raise AnalysisConfigError(
                    "layering declaration contains a cycle: "
                    + " -> ".join(cycle)
                )
            if state[dep] == WHITE:
                visit(dep, trail)
        trail.pop()
        state[node] = BLACK

    for name in strict:
        if state[name] == WHITE:
            visit(name, [])


validate_layers()
