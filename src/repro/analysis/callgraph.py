"""Project-wide symbol table and call graph over per-file facts.

Nodes are program-wide function ids (``module.qualname`` for importable
modules, ``path::qualname`` for scripts).  Edges come from the call
sites :mod:`repro.analysis.facts` extracted, resolved in three tiers:

1. **Named resolution** — bare names against the caller's locals,
   module-level functions, imports, and classes (a class call edges to
   its ``__init__``); ``self``/``cls``/``super()`` receivers against a
   linearized class hierarchy (bases resolved through imports, so
   ``ContainmentScheme(LabelingScheme)`` inherits ``insert_run`` edges
   from ``repro.labeling.base``).
2. **Transaction hooks** — constructing ``Transaction`` also edges to
   its ``__enter__``/``__exit__``, mirroring the duck-typed ``undo_log``
   bind/unbind that happens at runtime without a syntactic call.
3. **Duck typing** — a method call through an untyped receiver edges to
   every known class method with a *compatible* signature.  Compatible
   means the call's positional/keyword shape fits the candidate's
   parameters, and the method name is not a generic container verb
   (``append``, ``clear``, ...) — both filters exist to kill false
   edges like ``self._wal_pending.clear()`` -> ``BufferPool.clear``.

The graph is rebuilt from facts on every run (it is cheap); only the
per-file extraction is cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.facts import CallSite, FunctionFacts, ModuleFacts
from repro.analysis.layers import DUCK_SKIP_METHOD_NAMES

__all__ = ["CallGraph", "FunctionNode", "build_call_graph"]


@dataclass
class FunctionNode:
    """One function in the program, with its owning module."""

    fullqual: str
    module: ModuleFacts
    facts: FunctionFacts

    @property
    def display(self) -> str:
        return self.fullqual


class CallGraph:
    """Resolved call edges + class hierarchy over a set of modules."""

    def __init__(self, modules: Iterable[ModuleFacts]) -> None:
        self.modules: list[ModuleFacts] = sorted(
            modules, key=lambda m: m.path
        )
        self.by_module_name: dict[str, ModuleFacts] = {
            m.module_name: m for m in self.modules if m.module_name
        }
        self.functions: dict[str, FunctionNode] = {}
        #: class name -> [(module, class_name)] — names can collide
        #: across modules; resolution prefers import-directed matches.
        self._classes: dict[str, list[tuple[ModuleFacts, str]]] = {}
        #: method name -> [FunctionNode] for duck resolution.
        self._methods_by_name: dict[str, list[FunctionNode]] = {}
        self.edges: dict[str, tuple[str, ...]] = {}
        self.reverse: dict[str, tuple[str, ...]] = {}
        #: (defining module path, class) -> direct subclasses.
        self._subclasses: (
            dict[tuple[str, str], list[tuple[ModuleFacts, str]]] | None
        ) = None
        self._index()
        self._link()

    # -- indexing ----------------------------------------------------------

    def _index(self) -> None:
        for module in self.modules:
            for qualname, facts in module.functions.items():
                node = FunctionNode(
                    fullqual=module.qualify(qualname),
                    module=module,
                    facts=facts,
                )
                self.functions[node.fullqual] = node
                if (
                    facts.class_name is not None
                    and "<locals>" not in qualname
                ):
                    self._methods_by_name.setdefault(
                        facts.name, []
                    ).append(node)
            for class_name in module.classes:
                self._classes.setdefault(class_name, []).append(
                    (module, class_name)
                )

    # -- class hierarchy ---------------------------------------------------

    def resolve_class(
        self, module: ModuleFacts, name: str
    ) -> tuple[ModuleFacts, str] | None:
        """(defining module, class name) for ``name`` seen in ``module``."""
        last = name.rsplit(".", 1)[-1]
        if name in module.classes:
            return (module, name)
        # Import-directed: `from x import C` / `import x as m; m.C`.
        target = module.imports.get(name)
        if target is None and "." in name:
            head, rest = name.split(".", 1)
            head_target = module.imports.get(head)
            if head_target is not None:
                target = f"{head_target}.{rest}"
        if target is not None:
            owner_name, _, cls = target.rpartition(".")
            owner = self.by_module_name.get(owner_name)
            if owner is not None and cls in owner.classes:
                return (owner, cls)
            # `from x import C` may re-export; fall through to global.
            last = cls or last
        candidates = self._classes.get(last, [])
        if len(candidates) == 1:
            return candidates[0]
        for candidate in candidates:
            if candidate[0] is module:
                return candidate
        return candidates[0] if candidates else None

    def linearize(
        self, module: ModuleFacts, class_name: str
    ) -> list[tuple[ModuleFacts, str]]:
        """The class and its base classes, nearest first (BFS, no C3)."""
        seen: set[tuple[str, str]] = set()
        order: list[tuple[ModuleFacts, str]] = []
        queue: list[tuple[ModuleFacts, str]] = []
        start = self.resolve_class(module, class_name)
        if start is not None:
            queue.append(start)
        while queue:
            owner, name = queue.pop(0)
            key = (owner.path, name)
            if key in seen:
                continue
            seen.add(key)
            order.append((owner, name))
            for base in owner.classes[name].bases:
                resolved = self.resolve_class(owner, base)
                if resolved is not None:
                    queue.append(resolved)
        return order

    def lookup_method(
        self, module: ModuleFacts, class_name: str, method: str
    ) -> FunctionNode | None:
        """Nearest definition of ``method`` in the hierarchy."""
        for owner, name in self.linearize(module, class_name):
            qual = owner.classes[name].methods.get(method)
            if qual is not None:
                return self.functions.get(owner.qualify(qual))
        return None

    def class_kind_names(
        self, module: ModuleFacts, class_name: str
    ) -> set[str]:
        """Every class name in the hierarchy (for tracked-class tests)."""
        return {name for _, name in self.linearize(module, class_name)}

    # -- edge construction -------------------------------------------------

    def _link(self) -> None:
        reverse: dict[str, set[str]] = {}
        for fullqual, node in self.functions.items():
            targets: set[str] = set()
            for call in node.facts.calls:
                targets.update(self._resolve_call(node, call))
            targets.discard(fullqual)
            self.edges[fullqual] = tuple(sorted(targets))
            for target in targets:
                reverse.setdefault(target, set()).add(fullqual)
        self.reverse = {
            target: tuple(sorted(sources))
            for target, sources in reverse.items()
        }

    def _resolve_call(
        self, caller: FunctionNode, call: CallSite
    ) -> set[str]:
        module = caller.module
        if call.kind == "name":
            return self._resolve_name_call(caller, call)
        if call.kind == "super":
            return self._resolve_super_call(caller, call)
        # Method call through a receiver.
        receiver = call.receiver
        if receiver in ("self", "cls") and caller.facts.class_name:
            # The MRO target plus every subclass override: at runtime
            # `self` may be any subtype, and an override that mutates
            # without undo must not hide behind a base-class call site.
            targets = self._subclass_overrides(
                module, caller.facts.class_name, call.name
            )
            found = self.lookup_method(
                module, caller.facts.class_name, call.name
            )
            if found is not None:
                targets.add(found.fullqual)
            return targets
        head = receiver.split(".", 1)[0]
        if receiver and head in module.imports and "." not in receiver:
            # Module alias or imported class as the receiver.
            target = module.imports[receiver]
            owner = self.by_module_name.get(target)
            if owner is not None:
                return self._in_module(owner, call.name)
            owner_name, _, cls = target.rpartition(".")
            owner = self.by_module_name.get(owner_name)
            if owner is not None and cls in owner.classes:
                found = self.lookup_method(owner, cls, call.name)
                if found is not None:
                    return {found.fullqual}
                return set()
        if receiver in module.classes:
            found = self.lookup_method(module, receiver, call.name)
            if found is not None:
                return {found.fullqual}
            return set()
        return self._duck(call)

    def _resolve_name_call(
        self, caller: FunctionNode, call: CallSite
    ) -> set[str]:
        module = caller.module
        # Nested function defined in the caller.
        local = f"{caller.facts.qualname}.<locals>.{call.name}"
        if local in module.functions:
            return {module.qualify(local)}
        # Module-level function.
        if call.name in module.functions:
            return {module.qualify(call.name)}
        # Class in this module or imported: edge to the constructor
        # (plus Transaction's duck-typed enter/exit hooks).
        resolved_class = self.resolve_class(module, call.name)
        if (
            resolved_class is not None
            and self._names_class(module, call.name)
        ):
            return self._constructor_edges(resolved_class)
        # Imported function.
        target = module.imports.get(call.name)
        if target is not None:
            owner_name, _, func = target.rpartition(".")
            owner = self.by_module_name.get(owner_name)
            if owner is not None and func in owner.functions:
                return {owner.qualify(func)}
        return set()

    def _names_class(self, module: ModuleFacts, name: str) -> bool:
        if name in module.classes:
            return True
        target = module.imports.get(name)
        if target is None:
            return False
        owner_name, _, cls = target.rpartition(".")
        owner = self.by_module_name.get(owner_name)
        return owner is not None and cls in owner.classes

    def _constructor_edges(
        self, resolved: tuple[ModuleFacts, str]
    ) -> set[str]:
        owner, cls = resolved
        edges: set[str] = set()
        init = self.lookup_method(owner, cls, "__init__")
        if init is not None:
            edges.add(init.fullqual)
        if cls == "Transaction":
            # The context-manager protocol and the undo_log bind happen
            # without a syntactic call; model them as explicit edges.
            for hook in ("__enter__", "__exit__"):
                found = self.lookup_method(owner, cls, hook)
                if found is not None:
                    edges.add(found.fullqual)
        return edges

    def _subclass_map(
        self,
    ) -> dict[tuple[str, str], list[tuple[ModuleFacts, str]]]:
        if self._subclasses is None:
            subclasses: dict[
                tuple[str, str], list[tuple[ModuleFacts, str]]
            ] = {}
            for module in self.modules:
                for class_name, class_facts in module.classes.items():
                    for base in class_facts.bases:
                        resolved = self.resolve_class(module, base)
                        if resolved is not None:
                            key = (resolved[0].path, resolved[1])
                            subclasses.setdefault(key, []).append(
                                (module, class_name)
                            )
            self._subclasses = subclasses
        return self._subclasses

    def _subclass_overrides(
        self, module: ModuleFacts, class_name: str, method: str
    ) -> set[str]:
        """Definitions of ``method`` in (transitive) subclasses."""
        start = self.resolve_class(module, class_name)
        if start is None:
            return set()
        found: set[str] = set()
        seen = {(start[0].path, start[1])}
        queue = [start]
        while queue:
            owner, name = queue.pop(0)
            for sub in self._subclass_map().get((owner.path, name), ()):
                key = (sub[0].path, sub[1])
                if key in seen:
                    continue
                seen.add(key)
                queue.append(sub)
                qual = sub[0].classes[sub[1]].methods.get(method)
                if qual is not None:
                    node = self.functions.get(sub[0].qualify(qual))
                    if node is not None:
                        found.add(node.fullqual)
        return found

    def _resolve_super_call(
        self, caller: FunctionNode, call: CallSite
    ) -> set[str]:
        class_name = caller.facts.class_name
        if class_name is None:
            return set()
        order = self.linearize(caller.module, class_name)
        for owner, name in order[1:]:
            qual = owner.classes[name].methods.get(call.name)
            if qual is not None:
                found = self.functions.get(owner.qualify(qual))
                if found is not None:
                    return {found.fullqual}
        return set()

    def _in_module(self, owner: ModuleFacts, name: str) -> set[str]:
        if name in owner.functions:
            return {owner.qualify(name)}
        if name in owner.classes:
            return self._constructor_edges((owner, name))
        return set()

    def _duck(self, call: CallSite) -> set[str]:
        if call.name in DUCK_SKIP_METHOD_NAMES:
            return set()
        matches: set[str] = set()
        for node in self._methods_by_name.get(call.name, ()):
            if self._signature_fits(node.facts, call):
                matches.add(node.fullqual)
        return matches

    @staticmethod
    def _signature_fits(facts: FunctionFacts, call: CallSite) -> bool:
        params = list(facts.params)
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        if call.args < 0 or "**" in call.keywords:
            return True  # splats: assume the caller knows the shape
        for keyword in call.keywords:
            if (
                keyword not in params
                and keyword not in facts.kwonly
                and not facts.has_kwarg
            ):
                return False
        if not facts.has_vararg and call.args > len(params):
            return False
        required = max(0, len(params) - facts.defaults)
        keyword_hits = sum(1 for k in call.keywords if k in params)
        return call.args + keyword_hits >= required

    # -- traversal ---------------------------------------------------------

    def reachable_from(self, seeds: Iterable[str]) -> set[str]:
        """Every function reachable over call edges from ``seeds``."""
        seen: set[str] = set()
        stack = [s for s in seeds if s in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen

    def shortest_parents(
        self, seeds: Iterable[str]
    ) -> dict[str, str | None]:
        """BFS parent map from ``seeds`` (for "via ..." diagnostics)."""
        parents: dict[str, str | None] = {}
        queue: list[str] = []
        for seed in sorted(seeds):
            if seed in self.functions and seed not in parents:
                parents[seed] = None
                queue.append(seed)
        while queue:
            current = queue.pop(0)
            for target in self.edges.get(current, ()):
                if target not in parents:
                    parents[target] = current
                    queue.append(target)
        return parents

    def path_to(
        self, parents: dict[str, str | None], target: str, limit: int = 6
    ) -> list[str]:
        """The seed -> ... -> target chain recorded by a parent map."""
        chain: list[str] = []
        cursor: str | None = target
        while cursor is not None and len(chain) < limit:
            chain.append(cursor)
            cursor = parents.get(cursor)
        chain.reverse()
        return chain

    # -- serialization (golden snapshot tests) ------------------------------

    def to_dict(self) -> dict:
        return {
            "functions": sorted(self.functions),
            "edges": {
                source: list(targets)
                for source, targets in sorted(self.edges.items())
                if targets
            },
        }


def build_call_graph(modules: Iterable[ModuleFacts]) -> CallGraph:
    return CallGraph(modules)
