"""File walking, two-phase rule dispatch, and result filtering.

The run is split into two phases:

1. **Extraction** (per file, cacheable, parallelizable): parse, run
   every registered rule's :meth:`~repro.analysis.registry.Rule.check`,
   extract :class:`~repro.analysis.facts.ModuleFacts` and suppression
   comments.  The result is a plain-JSON payload keyed by the file's
   content hash, so warm runs skip this phase entirely
   (:mod:`repro.analysis.cache`) and cold runs can fan it out across
   processes (``--jobs``).
2. **Assembly** (whole-program, always live): build the
   :class:`~repro.analysis.program.Program`, run each selected rule's
   ``finalize``, then filter through inline suppressions and the
   baseline.  Findings are sorted, so serial and parallel runs are
   byte-identical.

:func:`analyze_paths` keeps its original signature and defaults
(serial, no cache); :func:`run_analysis` returns the richer
:class:`ProgramRun` the CLI needs for ``--check-baseline`` and
``--effects``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline, EMPTY_BASELINE
from repro.analysis.cache import (
    CACHE_FORMAT_VERSION,
    ExtractionCache,
    content_hash,
)
from repro.analysis.facts import ModuleFacts, extract_module_facts
from repro.analysis.findings import AnalysisConfigError, Finding, Severity
from repro.analysis.program import Program
from repro.analysis.registry import ModuleContext, Rule, all_rules, get_rules
from repro.analysis.suppressions import Suppressions

__all__ = [
    "AnalysisResult",
    "ProgramRun",
    "analyze_paths",
    "check_hygiene",
    "collect_files",
    "run_analysis",
]

_SKIPPED_DIR_NAMES = {"__pycache__"}

#: Folded into the cache signature alongside the registered rule ids;
#: bump when extraction behavior changes without a facts-format change.
_EXTRACTION_SALT = 3


@dataclass
class AnalysisResult:
    """What one analysis run produced, post-filtering."""

    findings: list[Finding] = field(default_factory=list)
    """Active findings (not suppressed, not baselined), sorted."""

    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0

    def max_severity(self) -> Severity | None:
        """The worst active severity, or None when clean."""
        if not self.findings:
            return None
        return max(finding.severity for finding in self.findings)


@dataclass
class ProgramRun:
    """One analysis run with its unfiltered internals exposed."""

    result: AnalysisResult
    program: Program
    raw_findings: list[Finding]
    """Every finding of the selected rules *before* suppression and
    baseline filtering (the hygiene check's reference set)."""

    suppressions: dict[str, Suppressions]
    """Display path -> parsed inline suppressions."""


def collect_files(
    paths: Sequence[str | Path],
    exclude: Sequence[str | Path] = (),
) -> list[Path]:
    """Every ``*.py`` under the given files/directories, sorted.

    ``exclude`` drops files under any of the given roots (used to keep
    deliberately-violating rule fixtures out of a ``tests`` scan).
    """
    excluded = [Path(e).resolve() for e in exclude]
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisConfigError(f"no such file or directory: {path}")
        if path.is_file():
            if path.suffix == ".py":
                files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.relative_to(path).parts
                if any(
                    part in _SKIPPED_DIR_NAMES or part.startswith(".")
                    for part in parts
                ):
                    continue
                files.add(candidate)
    if excluded:
        files = {
            path
            for path in files
            if not any(
                root == path.resolve()
                or root in path.resolve().parents
                for root in excluded
            )
        }
    return sorted(files)


def _module_name_for(path: Path) -> str | None:
    """Dotted module name for files under a ``src`` directory.

    ``.../src/repro/core/middle.py`` -> ``repro.core.middle``;
    ``__init__.py`` maps to its package.  Files not under a ``src``
    component (benchmarks, examples, loose scripts) return ``None``.
    """
    parts = path.parts
    try:
        anchor = len(parts) - 1 - parts[::-1].index("src")
    except ValueError:
        return None
    module_parts = list(parts[anchor + 1 :])
    if not module_parts:
        return None
    module_parts[-1] = module_parts[-1][: -len(".py")]
    if module_parts[-1] == "__init__":
        module_parts.pop()
    if not module_parts:
        return None
    return ".".join(module_parts)


def _display_path(path: Path, project_root: Path | None) -> str:
    """Project-relative POSIX path when possible, else as given."""
    if project_root is not None:
        try:
            return path.resolve().relative_to(
                project_root.resolve()
            ).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def load_module_context(
    path: Path, project_root: Path | None = None
) -> ModuleContext:
    """Parse one file into the context rules operate on.

    Raises :class:`SyntaxError` for unparsable source — the caller
    converts that into an RPR000 finding.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleContext(
        path=_display_path(path, project_root),
        module_name=_module_name_for(path),
        tree=tree,
        source_lines=source.splitlines(),
        is_package=path.name == "__init__.py",
    )


def _cache_signature() -> str:
    rule_ids = ",".join(rule.id for rule in all_rules())
    return f"v{CACHE_FORMAT_VERSION}.{_EXTRACTION_SALT}:{rule_ids}"


def _extract_file(job: tuple[str, str | None]) -> tuple[str, dict]:
    """Phase-1 worker: parse + check + facts for one file.

    Module-level (not a closure) so :mod:`concurrent.futures` can ship
    it to worker processes.  Returns ``(display_path, payload)`` where
    the payload is the JSON-serializable extraction result.
    """
    path_text, root_text = job
    path = Path(path_text)
    root = Path(root_text) if root_text is not None else None
    display = _display_path(path, root)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=path_text)
    except SyntaxError as error:
        finding = Finding(
            path=display,
            line=error.lineno or 1,
            col=(error.offset or 1) - 1,
            rule="RPR000",
            severity=Severity.ERROR,
            message=f"file does not parse: {error.msg}",
        )
        return display, {"findings": [finding.to_dict()], "facts": None}
    context = ModuleContext(
        path=display,
        module_name=_module_name_for(path),
        tree=tree,
        source_lines=source.splitlines(),
        is_package=path.name == "__init__.py",
    )
    findings: list[dict] = []
    for rule in all_rules():
        for finding in rule.check(context):
            findings.append(finding.to_dict())
    facts = extract_module_facts(
        context.path,
        context.module_name,
        context.is_package,
        tree,
        context.source_lines,
    )
    return display, {"findings": findings, "facts": facts.to_dict()}


def _run_extraction(
    jobs_list: list[tuple[str, str | None]], jobs: int
) -> dict[str, dict]:
    """Run phase 1, fanning out when asked (and possible)."""
    payloads: dict[str, dict] = {}
    if jobs > 1 and len(jobs_list) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for display, payload in pool.map(
                    _extract_file, jobs_list, chunksize=8
                ):
                    payloads[display] = payload
            return payloads
        except Exception:
            # Sandboxes without working process pools degrade to serial
            # — same findings, just slower.
            payloads.clear()
    for job in jobs_list:
        display, payload = _extract_file(job)
        payloads[display] = payload
    return payloads


def run_analysis(
    paths: Sequence[str | Path],
    *,
    rules: Iterable[str] | None = None,
    baseline: Baseline | None = None,
    project_root: str | Path | None = None,
    jobs: int | None = None,
    cache_path: str | Path | None = None,
    exclude: Sequence[str | Path] = (),
) -> ProgramRun:
    """Run the selected rules over every Python file under ``paths``."""
    selected: list[Rule] = get_rules(rules)
    selected_ids = {rule.id for rule in selected} | {"RPR000"}
    active_baseline = baseline if baseline is not None else EMPTY_BASELINE
    root = Path(project_root) if project_root is not None else None
    worker_count = max(1, jobs) if jobs is not None else 1

    files = collect_files(paths, exclude)
    cache = (
        ExtractionCache(cache_path, _cache_signature())
        if cache_path is not None
        else None
    )

    payloads: dict[str, dict] = {}
    pending: list[tuple[str, str | None]] = []
    digests: dict[str, str] = {}
    for path in files:
        display = _display_path(path, root)
        if cache is not None:
            try:
                digest = content_hash(path.read_bytes())
            except OSError:
                digest = ""
            digests[display] = digest
            hit = cache.get(display, digest) if digest else None
            if hit is not None:
                payloads[display] = hit
                continue
        pending.append((str(path), str(root) if root is not None else None))

    payloads.update(_run_extraction(pending, worker_count))
    if cache is not None:
        for job_path, _ in pending:
            display = _display_path(Path(job_path), root)
            payload = payloads.get(display)
            digest = digests.get(display, "")
            if payload is not None and digest:
                cache.put(display, digest, payload)
        cache.save()

    # -- assembly ----------------------------------------------------------
    raw: list[Finding] = []
    modules: list[ModuleFacts] = []
    suppressions: dict[str, Suppressions] = {}
    for display in sorted(payloads):
        payload = payloads[display]
        for entry in payload["findings"]:
            finding = Finding.from_dict(entry)
            if finding.rule in selected_ids:
                raw.append(finding)
        if payload["facts"] is not None:
            facts = ModuleFacts.from_dict(payload["facts"])
            modules.append(facts)
            suppressions[display] = Suppressions.from_mapping(
                facts.suppressions
            )

    program = Program(modules)
    for rule in selected:
        raw.extend(rule.finalize(program))

    result = AnalysisResult(files_scanned=len(files))
    slug_by_rule = {rule.id: rule.slug for rule in all_rules()}
    for finding in raw:
        slug = slug_by_rule.get(finding.rule)
        file_suppressions = suppressions.get(finding.path)
        if (
            slug is not None
            and file_suppressions is not None
            and not finding.unsuppressable
            and file_suppressions.allows(finding.line, slug)
        ):
            result.suppressed += 1
            continue
        if active_baseline.waives(finding):
            result.baselined += 1
            continue
        result.findings.append(finding)
    result.findings.sort()
    raw.sort()
    return ProgramRun(
        result=result,
        program=program,
        raw_findings=raw,
        suppressions=suppressions,
    )


def analyze_paths(
    paths: Sequence[str | Path],
    *,
    rules: Iterable[str] | None = None,
    baseline: Baseline | None = None,
    project_root: str | Path | None = None,
    jobs: int | None = None,
    cache_path: str | Path | None = None,
    exclude: Sequence[str | Path] = (),
) -> AnalysisResult:
    """Run the selected rules over every Python file under ``paths``."""
    return run_analysis(
        paths,
        rules=rules,
        baseline=baseline,
        project_root=project_root,
        jobs=jobs,
        cache_path=cache_path,
        exclude=exclude,
    ).result


def check_hygiene(run: ProgramRun, baseline: Baseline) -> list[str]:
    """Stale baseline entries and dead/unknown inline suppressions.

    The reference set is the run's *raw* findings (pre-suppression,
    pre-baseline): an entry or comment that matches none of them no
    longer suppresses anything and must be removed — dead waivers are
    how real violations sneak back in unnoticed.
    """
    issues: list[str] = []
    by_rule_path: set[tuple[str, str]] = {
        (finding.rule, finding.path) for finding in run.raw_findings
    }
    lines_by_rule_path: dict[tuple[str, str], set[int]] = {}
    for finding in run.raw_findings:
        lines_by_rule_path.setdefault(
            (finding.rule, finding.path), set()
        ).add(finding.line)

    for entry in baseline.entries:
        if (entry.rule, entry.path) not in by_rule_path:
            issues.append(
                f"stale baseline entry: {entry.rule} at {entry.path} "
                f"matches no current finding"
            )

    slug_to_rule = {rule.slug: rule.id for rule in all_rules()}
    for path in sorted(run.suppressions):
        for line, slugs in sorted(
            run.suppressions[path].by_line().items()
        ):
            for slug in sorted(slugs):
                rule_id = slug_to_rule.get(slug)
                if rule_id is None:
                    issues.append(
                        f"unknown suppression slug at {path}:{line}: "
                        f"allow-{slug}"
                    )
                    continue
                covered = lines_by_rule_path.get((rule_id, path), set())
                # A comment on line L silences findings on L and L+1.
                if not (line in covered or line + 1 in covered):
                    issues.append(
                        f"dead suppression at {path}:{line}: allow-{slug} "
                        f"matches no {rule_id} finding"
                    )
    return issues
