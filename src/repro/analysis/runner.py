"""File walking and rule dispatch — the analyzer's engine.

:func:`analyze_paths` walks the given files/directories, parses every
``*.py`` with the stdlib :mod:`ast`, derives each file's module name
(files under a ``src/`` component map to their dotted name; everything
else is a script), applies the selected rules, then filters the raw
findings through inline suppressions and the baseline.

The result is deterministic: files are visited in sorted order and
findings come back sorted by (path, line, col, rule).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline, EMPTY_BASELINE
from repro.analysis.findings import AnalysisConfigError, Finding, Severity
from repro.analysis.registry import ModuleContext, Rule, get_rules
from repro.analysis.suppressions import collect_suppressions

__all__ = ["AnalysisResult", "analyze_paths", "collect_files"]

_SKIPPED_DIR_NAMES = {"__pycache__"}


@dataclass
class AnalysisResult:
    """What one analysis run produced, post-filtering."""

    findings: list[Finding] = field(default_factory=list)
    """Active findings (not suppressed, not baselined), sorted."""

    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0

    def max_severity(self) -> Severity | None:
        """The worst active severity, or None when clean."""
        if not self.findings:
            return None
        return max(finding.severity for finding in self.findings)


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``*.py`` under the given files/directories, sorted."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisConfigError(f"no such file or directory: {path}")
        if path.is_file():
            if path.suffix == ".py":
                files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.relative_to(path).parts
                if any(
                    part in _SKIPPED_DIR_NAMES or part.startswith(".")
                    for part in parts
                ):
                    continue
                files.add(candidate)
    return sorted(files)


def _module_name_for(path: Path) -> str | None:
    """Dotted module name for files under a ``src`` directory.

    ``.../src/repro/core/middle.py`` -> ``repro.core.middle``;
    ``__init__.py`` maps to its package.  Files not under a ``src``
    component (benchmarks, examples, loose scripts) return ``None``.
    """
    parts = path.parts
    try:
        anchor = len(parts) - 1 - parts[::-1].index("src")
    except ValueError:
        return None
    module_parts = list(parts[anchor + 1 :])
    if not module_parts:
        return None
    module_parts[-1] = module_parts[-1][: -len(".py")]
    if module_parts[-1] == "__init__":
        module_parts.pop()
    if not module_parts:
        return None
    return ".".join(module_parts)


def _display_path(path: Path, project_root: Path | None) -> str:
    """Project-relative POSIX path when possible, else as given."""
    if project_root is not None:
        try:
            return path.resolve().relative_to(
                project_root.resolve()
            ).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def load_module_context(
    path: Path, project_root: Path | None = None
) -> ModuleContext:
    """Parse one file into the context rules operate on.

    Raises :class:`SyntaxError` for unparsable source — the caller
    converts that into an RPR000 finding.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleContext(
        path=_display_path(path, project_root),
        module_name=_module_name_for(path),
        tree=tree,
        source_lines=source.splitlines(),
        is_package=path.name == "__init__.py",
    )


def analyze_paths(
    paths: Sequence[str | Path],
    *,
    rules: Iterable[str] | None = None,
    baseline: Baseline | None = None,
    project_root: str | Path | None = None,
) -> AnalysisResult:
    """Run the selected rules over every Python file under ``paths``."""
    selected: list[Rule] = get_rules(rules)
    active_baseline = baseline if baseline is not None else EMPTY_BASELINE
    root = Path(project_root) if project_root is not None else None

    result = AnalysisResult()
    contexts: list[ModuleContext] = []
    raw: list[tuple[ModuleContext | None, Finding]] = []

    for path in collect_files(paths):
        result.files_scanned += 1
        try:
            context = load_module_context(path, root)
        except SyntaxError as error:
            raw.append(
                (
                    None,
                    Finding(
                        path=_display_path(path, root),
                        line=error.lineno or 1,
                        col=(error.offset or 1) - 1,
                        rule="RPR000",
                        severity=Severity.ERROR,
                        message=f"file does not parse: {error.msg}",
                    ),
                )
            )
            continue
        contexts.append(context)
        for rule in selected:
            for finding in rule.check(context):
                raw.append((context, finding))

    for rule in selected:
        for finding in rule.finalize(contexts):
            raw.append((None, finding))

    slug_by_rule = {rule.id: rule.slug for rule in selected}
    suppressions_cache = {
        context.path: collect_suppressions(context.source_lines)
        for context in contexts
    }
    for context, finding in raw:
        slug = slug_by_rule.get(finding.rule)
        if context is not None and slug is not None:
            if suppressions_cache[context.path].allows(finding.line, slug):
                result.suppressed += 1
                continue
        if active_baseline.waives(finding):
            result.baselined += 1
            continue
        result.findings.append(finding)
    result.findings.sort()
    return result
