"""Static analysis for the repo's paper invariants (``repro.analysis``).

The correctness story of the reproduction rests on invariants the type
system cannot see: Definition 3.1's lexicographical order lives behind
:class:`~repro.core.bitstring.BitString`; Algorithm 1 requires codes
ending in ``1``; Property 5.1 keeps encodings orthogonal to labeling
schemes; and the subsystems form a strict layering DAG.  This package
machine-checks those invariants at the source level so a refactor that
violates one fails in CI instead of surfacing as a silently mis-ordered
label later.

Shipped rules (see ``docs/STATIC_ANALYSIS.md``):

======  ============  ========================================================
id      suppression   checks
======  ============  ========================================================
RPR001  raw-bits      raw '0'/'1' text manipulation outside core/bitstring.py
RPR002  raw-compare   ordering labels via str()/tuple()/to01() casts
RPR003  raw-code      unguarded codes handed to assign_middle (Example 3.3)
RPR004  layering      import edges outside the declared DAG; cycles
RPR005  hygiene       mutable defaults, bare except, assert-as-validation
======  ============  ========================================================

Programmatic use::

    from repro.analysis import analyze_paths
    result = analyze_paths(["src"])
    assert not result.findings

CLI: ``python -m repro.analysis [paths...] [--format json]``.
"""

from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.findings import AnalysisConfigError, Finding, Severity
from repro.analysis.registry import (
    ModuleContext,
    Rule,
    all_rules,
    get_rules,
    register,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import AnalysisResult, analyze_paths

__all__ = [
    "AnalysisConfigError",
    "AnalysisResult",
    "Baseline",
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "get_rules",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
]
