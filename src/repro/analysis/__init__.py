"""Static analysis for the repo's paper invariants (``repro.analysis``).

The correctness story of the reproduction rests on invariants the type
system cannot see: Definition 3.1's lexicographical order lives behind
:class:`~repro.core.bitstring.BitString`; Algorithm 1 requires codes
ending in ``1``; Property 5.1 keeps encodings orthogonal to labeling
schemes; and the subsystems form a strict layering DAG.  This package
machine-checks those invariants at the source level so a refactor that
violates one fails in CI instead of surfacing as a silently mis-ordered
label later.

Shipped rules (see ``docs/STATIC_ANALYSIS.md``):

======  ====================  ================================================
id      suppression           checks
======  ====================  ================================================
RPR001  raw-bits              raw '0'/'1' text outside core/bitstring.py
RPR002  raw-compare           ordering labels via str()/tuple()/to01() casts
RPR003  raw-code              unguarded codes handed to assign_middle
RPR004  layering              import edges outside the declared DAG; cycles
RPR005  hygiene               mutable defaults, bare except, assert-validation
RPR009  mutation-without-undo tracked-state writes with no undo registration
RPR010  durability-protocol   durable effects outside the WAL protocol
RPR011  shared-state          process-wide mutable state before MVCC
======  ====================  ================================================

RPR009-RPR011 are *whole-program* rules: per-file facts feed a
project-wide call graph (:mod:`repro.analysis.callgraph`) and effect
summaries (:mod:`repro.analysis.effects`), assembled into a
:class:`~repro.analysis.program.Program` each rule's ``finalize`` sees.
Extraction is cached by content hash (:mod:`repro.analysis.cache`) and
parallelizable (``--jobs``).

Programmatic use::

    from repro.analysis import analyze_paths
    result = analyze_paths(["src"])
    assert not result.findings

CLI: ``python -m repro.analysis [paths...] [--format json|sarif]``.
"""

from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.findings import AnalysisConfigError, Finding, Severity
from repro.analysis.program import Program
from repro.analysis.registry import (
    ModuleContext,
    Rule,
    all_rules,
    get_rules,
    register,
)
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.runner import (
    AnalysisResult,
    ProgramRun,
    analyze_paths,
    check_hygiene,
    run_analysis,
)

__all__ = [
    "AnalysisConfigError",
    "AnalysisResult",
    "Baseline",
    "Finding",
    "ModuleContext",
    "Program",
    "ProgramRun",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "check_hygiene",
    "get_rules",
    "load_baseline",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "run_analysis",
]
