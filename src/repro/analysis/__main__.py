"""``python -m repro.analysis`` — the paper-invariant static checker.

Exit codes: 0 clean (or everything below ``--fail-on``), 1 findings at
or above the threshold (or hygiene failures under ``--check-baseline``),
2 configuration error (bad rule id, cyclic layering declaration,
unreadable baseline).

Typical invocations::

    python -m repro.analysis                       # src benchmarks examples
    python -m repro.analysis src --format json
    python -m repro.analysis src --format sarif    # CI artifact
    python -m repro.analysis --rules RPR004        # layering only
    python -m repro.analysis --check-baseline      # + dead-waiver hygiene
    python -m repro.analysis --effects UpdateEngine.insert_before
    python -m repro.analysis --jobs 4 --cache .analysis-cache.json
    python -m repro.analysis --write-baseline      # accept current findings
    python -m repro.analysis --list-rules
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.findings import AnalysisConfigError, Severity
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.runner import check_hygiene, run_analysis

DEFAULT_PATHS = ("src", "benchmarks", "examples")
DEFAULT_BASELINE = "analysis-baseline.json"
DEFAULT_CACHE = ".analysis-cache.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based checker for the repo's paper invariants: raw "
            "bit-string manipulation, raw label comparison, unguarded "
            "codes, import layering, generic hygiene, and the "
            "whole-program transactional-effect rules (RPR009-RPR011)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to analyze "
            f"(default: {' '.join(DEFAULT_PATHS)}, where present)"
        ),
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PATH",
        help=(
            "drop files under this path from the scan (repeatable; "
            "used to skip deliberately-violating rule fixtures)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=(
            "baseline file of accepted findings "
            f"(default: {DEFAULT_BASELINE}; missing file = empty)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to accept all current findings "
            "(existing justifications are preserved; new entries get a "
            "placeholder to triage)"
        ),
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help=(
            "also fail (exit 1) on stale baseline entries and dead or "
            "unknown inline suppressions — waivers that no longer "
            "match any finding"
        ),
    )
    parser.add_argument(
        "--fail-on",
        choices=("warning", "error", "never"),
        default="warning",
        help=(
            "minimum severity that causes exit code 1 "
            "(default: warning — any finding fails)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the parse/extract phase "
            "(default: os.cpu_count(); findings are identical to a "
            "serial run)"
        ),
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=DEFAULT_CACHE,
        default=None,
        metavar="FILE",
        help=(
            "incremental extraction cache keyed on file content hashes "
            f"(default file when given bare: {DEFAULT_CACHE})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the extraction cache",
    )
    parser.add_argument(
        "--effects",
        metavar="SYMBOL",
        help=(
            "print the effect summary of a function/method (exact "
            "fullqual or dotted suffix, e.g. 'LabeledDocument.set_label') "
            "and exit"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _dump_effects(run, symbol: str) -> int:
    """Human-readable effect summaries for ``--effects SYMBOL``."""
    effects = run.program.effects
    matches = effects.find_symbols(symbol)
    if not matches:
        print(f"no function matches {symbol!r}", file=sys.stderr)
        return 2
    for fullqual in matches:
        summary = effects.summaries[fullqual]
        node = summary.node
        print(f"{fullqual}  ({node.module.path}:{node.facts.lineno})")
        print(f"  registers undo:    {summary.registers_undo}")
        print(f"  opens transaction: {summary.opens_transaction}")
        reachable = fullqual in effects.reachable
        print(f"  engine-reachable:  {reachable}")
        if reachable:
            chain = effects.entry_path(fullqual)
            if len(chain) > 1:
                print(f"    via {' -> '.join(chain)}")
        if summary.tracked:
            print("  tracked mutations:")
            for mutation in summary.tracked:
                counts = "" if mutation.counts else "  [durable-state]"
                print(
                    f"    {mutation.owner}.{mutation.target} "
                    f"({mutation.kind}) at line {mutation.lineno}{counts}"
                )
        else:
            print("  tracked mutations: none")
        direct = [e for e in summary.durables if not e.marker]
        if direct:
            print("  durable effects (direct):")
            for event in direct:
                print(f"    {event.kind} at line {event.lineno}")
        closure = sorted(effects.durable_effects_of(fullqual))
        if closure:
            print("  durable effects (transitive):")
            for kind, where, line in closure:
                print(f"    {kind} via {where}:{line}")
        else:
            print("  durable effects (transitive): none")
        if node.facts.raises:
            print(f"  raises: {', '.join(sorted(set(node.facts.raises)))}")
        callees = run.program.call_graph.edges.get(fullqual, ())
        if callees:
            print("  calls:")
            for callee in callees:
                print(f"    {callee}")
        callers = run.program.call_graph.reverse.get(fullqual, ())
        if callers:
            print("  callers:")
            for caller in callers:
                print(f"    {caller}")
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.list_rules:
            for rule in all_rules():
                print(
                    f"{rule.id}  [{rule.severity}]  allow-{rule.slug}\n"
                    f"    {rule.description}"
                )
            return 0

        paths = args.paths or [
            path for path in DEFAULT_PATHS if Path(path).exists()
        ]
        if not paths:
            print(
                "error: no paths given and none of the default paths "
                f"({', '.join(DEFAULT_PATHS)}) exist",
                file=sys.stderr,
            )
            return 2

        rules = args.rules.split(",") if args.rules else None
        baseline = (
            None if args.no_baseline else load_baseline(args.baseline)
        )
        jobs = args.jobs if args.jobs is not None else os.cpu_count() or 1
        cache_path = None if args.no_cache else args.cache

        if args.write_baseline:
            # Analyze without the baseline so every finding is captured.
            run = run_analysis(
                paths,
                rules=rules,
                baseline=None,
                jobs=jobs,
                cache_path=cache_path,
                exclude=args.exclude,
            )
            written = write_baseline(
                args.baseline,
                run.result.findings,
                baseline if baseline is not None else load_baseline(
                    args.baseline
                ),
            )
            print(
                f"wrote {len(written)} baseline entr"
                f"{'y' if len(written) == 1 else 'ies'} to {args.baseline}"
            )
            return 0

        run = run_analysis(
            paths,
            rules=rules,
            baseline=baseline,
            jobs=jobs,
            cache_path=cache_path,
            exclude=args.exclude,
        )

        if args.effects:
            return _dump_effects(run, args.effects)
    except AnalysisConfigError as error:
        print(f"configuration error: {error}", file=sys.stderr)
        return 2

    result = run.result
    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(result)
    print(report)

    hygiene_failed = False
    if args.check_baseline:
        issues = check_hygiene(
            run, baseline if baseline is not None else load_baseline(
                args.baseline
            )
        )
        for issue in issues:
            print(f"hygiene: {issue}", file=sys.stderr)
        if issues:
            hygiene_failed = True
        else:
            print(
                "hygiene: baseline entries and inline suppressions all "
                "match live findings",
                file=sys.stderr,
            )

    if args.fail_on == "never":
        return 1 if hygiene_failed else 0
    threshold = (
        Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    )
    worst = result.max_severity()
    if worst is not None and worst >= threshold:
        return 1
    return 1 if hygiene_failed else 0


if __name__ == "__main__":
    sys.exit(main())
