"""``python -m repro.analysis`` — the paper-invariant static checker.

Exit codes: 0 clean (or everything below ``--fail-on``), 1 findings at
or above the threshold, 2 configuration error (bad rule id, cyclic
layering declaration, unreadable baseline).

Typical invocations::

    python -m repro.analysis                       # src benchmarks examples
    python -m repro.analysis src --format json
    python -m repro.analysis --rules RPR004        # layering only
    python -m repro.analysis --write-baseline      # accept current findings
    python -m repro.analysis --list-rules
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.findings import AnalysisConfigError, Severity
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import analyze_paths

DEFAULT_PATHS = ("src", "benchmarks", "examples")
DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based checker for the repo's paper invariants: raw "
            "bit-string manipulation, raw label comparison, unguarded "
            "codes, import layering, and generic hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to analyze "
            f"(default: {' '.join(DEFAULT_PATHS)}, where present)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=(
            "baseline file of accepted findings "
            f"(default: {DEFAULT_BASELINE}; missing file = empty)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to accept all current findings "
            "(existing justifications are preserved; new entries get a "
            "placeholder to triage)"
        ),
    )
    parser.add_argument(
        "--fail-on",
        choices=("warning", "error", "never"),
        default="warning",
        help=(
            "minimum severity that causes exit code 1 "
            "(default: warning — any finding fails)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.list_rules:
            for rule in all_rules():
                print(
                    f"{rule.id}  [{rule.severity}]  allow-{rule.slug}\n"
                    f"    {rule.description}"
                )
            return 0

        paths = args.paths or [
            path for path in DEFAULT_PATHS if Path(path).exists()
        ]
        if not paths:
            print(
                "error: no paths given and none of the default paths "
                f"({', '.join(DEFAULT_PATHS)}) exist",
                file=sys.stderr,
            )
            return 2

        rules = args.rules.split(",") if args.rules else None
        baseline = (
            None if args.no_baseline else load_baseline(args.baseline)
        )

        if args.write_baseline:
            # Analyze without the baseline so every finding is captured.
            result = analyze_paths(paths, rules=rules, baseline=None)
            written = write_baseline(
                args.baseline,
                result.findings,
                baseline if baseline is not None else load_baseline(
                    args.baseline
                ),
            )
            print(
                f"wrote {len(written)} baseline entr"
                f"{'y' if len(written) == 1 else 'ies'} to {args.baseline}"
            )
            return 0

        result = analyze_paths(paths, rules=rules, baseline=baseline)
    except AnalysisConfigError as error:
        print(f"configuration error: {error}", file=sys.stderr)
        return 2

    report = (
        render_json(result) if args.format == "json" else render_text(result)
    )
    print(report)

    if args.fail_on == "never":
        return 0
    threshold = (
        Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    )
    worst = result.max_severity()
    return 1 if worst is not None and worst >= threshold else 0


if __name__ == "__main__":
    sys.exit(main())
