"""Baseline file: accepted findings that do not fail the build.

The baseline is a JSON document, checked into the repository root as
``analysis-baseline.json``::

    {
      "version": 1,
      "entries": [
        {
          "rule": "RPR001",
          "path": "src/repro/legacy/shim.py",
          "justification": "pre-existing; tracked in #42"
        }
      ]
    }

An entry waives every finding of ``rule`` in ``path`` — deliberately
coarse (no line numbers) so that unrelated edits to a baselined file do
not churn the baseline.  Every entry must carry a non-empty
``justification``; the test suite enforces that the shipped baseline is
empty or justified.  ``python -m repro.analysis --write-baseline``
regenerates the file from the current findings with placeholder
justifications for triage.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import AnalysisConfigError, Finding

__all__ = ["Baseline", "BaselineEntry", "load_baseline", "write_baseline"]

_PLACEHOLDER = "TODO: justify or fix"


class BaselineEntry:
    """One waived (rule, path) pair with its justification."""

    __slots__ = ("rule", "path", "justification")

    def __init__(self, rule: str, path: str, justification: str) -> None:
        self.rule = rule
        self.path = path
        self.justification = justification

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "justification": self.justification,
        }


class Baseline:
    """The set of waived (rule, path) pairs."""

    def __init__(self, entries: list[BaselineEntry]) -> None:
        self.entries = entries
        self._waived = {(entry.rule, entry.path) for entry in entries}

    def waives(self, finding: Finding) -> bool:
        return (finding.rule, finding.path) in self._waived

    def __len__(self) -> int:
        return len(self.entries)


EMPTY_BASELINE = Baseline([])


def load_baseline(path: str | Path) -> Baseline:
    """Parse a baseline file; missing file means an empty baseline."""
    file_path = Path(path)
    if not file_path.exists():
        return EMPTY_BASELINE
    try:
        document = json.loads(file_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise AnalysisConfigError(
            f"unreadable baseline file {file_path}: {error}"
        ) from error
    if not isinstance(document, dict) or "entries" not in document:
        raise AnalysisConfigError(
            f"baseline file {file_path} must be an object with 'entries'"
        )
    entries = []
    for raw in document["entries"]:
        try:
            entries.append(
                BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    justification=raw.get("justification", ""),
                )
            )
        except (TypeError, KeyError) as error:
            raise AnalysisConfigError(
                f"malformed baseline entry {raw!r} in {file_path}"
            ) from error
    return Baseline(entries)


def write_baseline(
    path: str | Path, findings: Iterable[Finding], existing: Baseline
) -> Baseline:
    """Write a baseline waiving ``findings``, keeping old justifications."""
    justifications = {
        (entry.rule, entry.path): entry.justification
        for entry in existing.entries
    }
    seen: set[tuple[str, str]] = set()
    entries: list[BaselineEntry] = []
    for finding in sorted(findings):
        key = (finding.rule, finding.path)
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                justification=justifications.get(key, _PLACEHOLDER),
            )
        )
    document = {
        "version": 1,
        "entries": [entry.to_dict() for entry in entries],
    }
    Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )
    return Baseline(entries)
