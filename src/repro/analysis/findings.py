"""Finding and severity value types for the static-analysis pass.

A :class:`Finding` is one rule violation at one source location; the
whole pass produces a sorted list of them.  Findings are plain data —
rendering is the reporters' job (:mod:`repro.analysis.reporters`) and
policy (suppression, baselining, exit codes) lives in the runner and
CLI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = ["AnalysisConfigError", "Finding", "Severity"]


class AnalysisConfigError(ReproError):
    """The analyzer's own configuration is unusable.

    Raised for a cyclic layering declaration, an unreadable baseline
    file, or an unknown rule id — never for a finding in analyzed code.
    """


class Severity(enum.IntEnum):
    """Per-rule severity; ordering supports ``--fail-on`` thresholds."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error" / "warning" in reports
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    """Project-relative POSIX path of the offending file."""

    line: int
    """1-based line of the offending node."""

    col: int
    """0-based column of the offending node."""

    rule: str
    """Rule id, e.g. ``"RPR001"``."""

    severity: Severity = field(compare=False)
    """The owning rule's severity."""

    message: str = field(compare=False)
    """Human-readable description of the violation."""

    unsuppressable: bool = field(default=False, compare=False)
    """True for findings no inline comment may silence (layer cycles:
    there is no single line that owns a cycle)."""

    def to_dict(self) -> dict:
        """JSON-ready representation (reporters and the facts cache)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        """Rebuild from :meth:`to_dict` output (the cache round trip)."""
        return cls(
            path=raw["path"],
            line=raw["line"],
            col=raw["col"],
            rule=raw["rule"],
            severity=(
                Severity.ERROR
                if raw["severity"] == "error"
                else Severity.WARNING
            ),
            message=raw["message"],
        )
