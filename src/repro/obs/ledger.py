"""Cost ledger: paper cost units attributed to the operation paying them.

The paper's experiments (Section 7) measure updates in *cost units* —
labels compared, middle-string bits generated, pages touched, nodes
re-labeled — not just wall-clock time.  :class:`CostLedger` is the
single place those units accumulate.  Each charge lands twice: in a
global ``totals`` map and in a ``by_op`` map keyed by the operation
that was active when the cost was incurred (the ``op`` tag of the
innermost span; see :mod:`repro.obs.registry`).

``COST_UNITS`` is the catalogue of every unit the instrumented code
charges, with its unit-of-measure and the paper cost it reproduces.
Docs and the CLI render it; the ledger itself accepts any unit name so
experiments can add ad-hoc units without registration ceremony.
"""

from __future__ import annotations

__all__ = ["CostLedger", "COST_UNITS", "UNATTRIBUTED"]

UNATTRIBUTED = "(unattributed)"

# unit name -> (unit of measure, paper cost it reproduces)
COST_UNITS: dict[str, tuple[str, str]] = {
    "labels.compared": (
        "comparisons",
        "ancestor/parent label decisions (Sec. 3 query predicates)",
    ),
    "labeling.labels_assigned": (
        "labels",
        "fresh labels written by an insertion (Sec. 5 dynamic formulae)",
    ),
    "labeling.nodes_relabeled": (
        "nodes",
        "existing nodes whose label changed (the paper's headline cost)",
    ),
    "labeling.relabel_events": (
        "events",
        "update ops that triggered any relabeling (Table 4 storms)",
    ),
    "middle.codes_assigned": (
        "codes",
        "CDBS middle binary strings generated (Sec. 4.1 Algorithm 1)",
    ),
    "middle.bits_generated": (
        "bits",
        "total size of generated middle strings (Sec. 4.2 Theorem 2)",
    ),
    "orderindex.rotations": (
        "rotations",
        "treap rebalancing work on the document-order index",
    ),
    "pager.pages_read": (
        "pages",
        "label-store pages fetched (Sec. 7 I/O experiments)",
    ),
    "pager.pages_written": (
        "pages",
        "label-store pages written back",
    ),
    "pager.pages_invalidated": (
        "pages",
        "buffered pages dropped when a splice shifted offsets",
    ),
    "pager.pool_hits": (
        "accesses",
        "buffer-pool hits (reads served without I/O)",
    ),
    "pager.pool_misses": (
        "accesses",
        "buffer-pool misses (reads that paid a page fetch)",
    ),
    "prime.sc_groups_recomputed": (
        "groups",
        "CRT simultaneous-congruence groups re-solved (prime scheme)",
    ),
    "query.evaluations": ("queries", "path queries evaluated"),
    "query.candidates_scanned": (
        "nodes",
        "candidate nodes examined by structural-join steps",
    ),
    "query.scan_bytes": (
        "bytes",
        "label bytes scanned while evaluating a query",
    ),
    "engine.nodes_inserted": (
        "nodes",
        "UpdateStats.inserted_nodes, ledger-side",
    ),
    "engine.nodes_deleted": ("nodes", "UpdateStats.deleted_nodes, ledger-side"),
    "engine.nodes_relabeled": (
        "nodes",
        "UpdateStats.relabeled_nodes, ledger-side",
    ),
    "engine.sc_groups_recomputed": (
        "groups",
        "UpdateStats.sc_recomputed, ledger-side",
    ),
    "engine.labels_written": (
        "labels",
        "UpdateStats.labels_written, ledger-side",
    ),
    "engine.pages_touched": (
        "pages",
        "pages the storage model charged for one update",
    ),
    "wal.records_appended": (
        "records",
        "redo records durably logged (one per committed transaction)",
    ),
    "wal.bytes_appended": (
        "bytes",
        "framed WAL bytes fsync'd — the durable footprint of updates "
        "(Sec. 4.2: proportional to the label delta, not the document)",
    ),
    "wal.fsyncs": (
        "fsyncs",
        "explicit durability barriers (one per commit)",
    ),
    "wal.checkpoints": (
        "checkpoints",
        "labelfile-v2 bundles written by the K-commits/B-bytes policy",
    ),
    "wal.checkpoint_bytes": (
        "bytes",
        "total size of checkpoint bundles written",
    ),
}


class CostLedger:
    """Accumulates integer cost units, globally and per operation."""

    __slots__ = ("totals", "by_op")

    def __init__(self) -> None:
        self.totals: dict[str, int] = {}
        self.by_op: dict[str, dict[str, int]] = {}

    def add(self, op: str, unit: str, amount: int) -> None:
        if amount < 0:
            raise ValueError(
                f"ledger unit {unit!r} cannot be charged a negative "
                f"amount ({amount})"
            )
        if amount == 0:
            return
        self.totals[unit] = self.totals.get(unit, 0) + amount
        bucket = self.by_op.get(op)
        if bucket is None:
            bucket = {}
            self.by_op[op] = bucket
        bucket[unit] = bucket.get(unit, 0) + amount

    def total(self, unit: str) -> int:
        return self.totals.get(unit, 0)

    def op_total(self, op: str, unit: str) -> int:
        return self.by_op.get(op, {}).get(unit, 0)

    def totals_snapshot(self) -> dict[str, int]:
        """Cheap copy of the totals map, for before/after cost deltas."""
        return dict(self.totals)

    def state_snapshot(self) -> dict:
        """Full copy of totals *and* per-op attribution.

        Taken by :class:`repro.updates.txn.Transaction` at begin so a
        rollback can return the ledger — not just the document — to the
        exact pre-operation state via :meth:`restore`.
        """
        return {
            "totals": dict(self.totals),
            "by_op": {op: dict(units) for op, units in self.by_op.items()},
        }

    def restore(self, state: dict) -> None:
        """Reset the ledger to a :meth:`state_snapshot` capture."""
        self.totals = dict(state["totals"])
        self.by_op = {op: dict(units) for op, units in state["by_op"].items()}

    def clear(self) -> None:
        self.totals.clear()
        self.by_op.clear()

    def snapshot(self) -> dict:
        return {
            "totals": {k: self.totals[k] for k in sorted(self.totals)},
            "by_op": {
                op: {k: units[k] for k in sorted(units)}
                for op, units in sorted(self.by_op.items())
            },
        }
