"""Metric primitives: :class:`Counter`, :class:`Gauge`, :class:`Histogram`.

These are deliberately tiny, dependency-free value holders.  All
aggregation policy (when to record, how to attribute) lives in
:mod:`repro.obs.registry`; the primitives only know how to accumulate
and summarise themselves.

Histogram keeps *exact* ``count``/``sum``/``min``/``max`` aggregates
plus a bounded reservoir of samples for percentile estimation.  The
reservoir uses Vitter's algorithm R with a fixed-seed RNG so snapshots
are reproducible run-to-run — a requirement for the CI bench gate,
which diffs snapshots across commits.
"""

from __future__ import annotations

import math
import random

__all__ = ["Counter", "Gauge", "Histogram", "DEFAULT_RESERVOIR_SIZE"]

DEFAULT_RESERVOIR_SIZE = 4096
_RESERVOIR_SEED = 0x0B5E12


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Point-in-time value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Sampled distribution with exact moments and estimated quantiles.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    percentiles interpolate over a bounded reservoir (algorithm R), so
    they are exact until ``max_samples`` observations and an unbiased
    estimate after.
    """

    __slots__ = (
        "name",
        "count",
        "sum",
        "min",
        "max",
        "_samples",
        "_sorted",
        "_max_samples",
        "_rng",
    )

    def __init__(
        self, name: str, max_samples: int = DEFAULT_RESERVOIR_SIZE
    ) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._sorted: list[float] | None = None
        self._max_samples = max_samples
        self._rng = random.Random(_RESERVOIR_SEED)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._max_samples:
                self._samples[slot] = value
            else:
                return
        self._sorted = None

    @property
    def mean(self) -> float | None:
        if self.count == 0:
            return None
        return self.sum / self.count

    def percentile(self, q: float) -> float | None:
        """Linear-interpolation percentile, ``q`` in ``[0, 100]``.

        Matches numpy's default ("linear") definition: rank
        ``q/100 * (n-1)`` interpolated between its floor and ceil.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        if not self._samples:
            return None
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        data = self._sorted
        if len(data) == 1:
            return data[0]
        rank = (q / 100.0) * (len(data) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return data[lo]
        frac = rank - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "samples_kept": len(self._samples),
        }
