"""Process-local metric registry, span tracing and the disabled fast path.

Hot paths call into a single module-level registry (``repro.obs.OBS``).
The contract that keeps instrumentation free when nobody is looking:

* every hook decorated with :func:`no_overhead_when_disabled` begins
  with ``if not self.enabled: return`` — one attribute check, nothing
  else; ``python -m repro.obs overhead`` measures exactly this.
* call sites that would do *any* work to prepare a charge (compute an
  amount, snapshot a dict) guard themselves with ``if OBS.enabled:``
  so the disabled cost stays at one attribute check per site.

:class:`Span` is the one deliberate exception: it always reads the
clock, because the update engine reports ``processing_seconds`` even
with observability off (pre-existing API).  When the registry is
enabled a span additionally pushes itself on the span stack — making
it the attribution context for :meth:`Registry.charge` — and folds its
duration into per-name aggregates on exit.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.obs.ledger import UNATTRIBUTED, CostLedger
from repro.obs.metrics import (
    DEFAULT_RESERVOIR_SIZE,
    Counter,
    Gauge,
    Histogram,
)

__all__ = [
    "Registry",
    "Span",
    "no_overhead_when_disabled",
    "DISABLED_SAFE_HOOKS",
]

# Hook names registered by @no_overhead_when_disabled, in declaration
# order.  The overhead micro-benchmark iterates this list so a new hook
# is measured automatically.
DISABLED_SAFE_HOOKS: list[str] = []


def no_overhead_when_disabled(func: Callable) -> Callable:
    """Marker for hooks whose disabled cost is one attribute check.

    Purely declarative: the decorated function is returned unchanged
    (a wrapper would *add* overhead), but its name is recorded in
    ``DISABLED_SAFE_HOOKS`` so ``python -m repro.obs overhead`` and the
    test suite can verify the claim empirically.
    """
    DISABLED_SAFE_HOOKS.append(func.__name__)
    return func


class Span:
    """Context manager timing one named section of work.

    ``seconds`` is valid after ``__exit__`` regardless of registry
    state.  When the registry is enabled the span also participates in
    attribution: its ``op`` is the explicit ``op`` tag if given, else
    inherited from the enclosing span, else the span name.  Tags
    propagate the same way (child tags override).
    """

    __slots__ = ("registry", "name", "tags", "op", "seconds", "_start", "_on_stack")

    def __init__(self, registry: "Registry", name: str, tags: dict) -> None:
        self.registry = registry
        self.name = name
        self.tags = tags
        self.op: str = tags.get("op", name)
        self.seconds = 0.0
        self._start = 0.0
        self._on_stack = False

    def __enter__(self) -> "Span":
        registry = self.registry
        if registry.enabled:
            stack = registry._span_stack
            if stack:
                parent = stack[-1]
                if "op" not in self.tags:
                    self.op = parent.op
                merged = dict(parent.tags)
                merged.update(self.tags)
                self.tags = merged
            stack.append(self)
            self._on_stack = True
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._start
        if self._on_stack:
            registry = self.registry
            stack = registry._span_stack
            # Exception-safe even if an inner span leaked: pop down to
            # (and including) this span rather than blindly popping one.
            while stack:
                top = stack.pop()
                if top is self:
                    break
            registry._record_span(self, failed=exc_type is not None)
        return False


class Registry:
    """Named collection of metrics, spans and one cost ledger.

    Starts disabled.  ``enabled`` is a plain attribute so hooks and
    call sites pay one attribute check when observability is off.
    """

    __slots__ = (
        "name",
        "enabled",
        "ledger",
        "_counters",
        "_gauges",
        "_histograms",
        "_span_stats",
        "_span_stack",
        "_histogram_max_samples",
    )

    def __init__(
        self,
        name: str = "default",
        *,
        enabled: bool = False,
        histogram_max_samples: int = DEFAULT_RESERVOIR_SIZE,
    ) -> None:
        self.name = name
        self.enabled = enabled
        self.ledger = CostLedger()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._span_stats: dict[str, dict[str, Any]] = {}
        self._span_stack: list[Span] = []
        self._histogram_max_samples = histogram_max_samples

    # -- accessors (not hooks: used by tests/exports, not hot paths) --

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = Counter(name)
            self._counters[name] = metric
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = Gauge(name)
            self._gauges[name] = metric
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = Histogram(name, self._histogram_max_samples)
            self._histograms[name] = metric
        return metric

    def current_op(self) -> str:
        stack = self._span_stack
        return stack[-1].op if stack else UNATTRIBUTED

    # -- hooks (hot-path entry points) --

    @no_overhead_when_disabled
    def inc(self, name: str, amount: int = 1) -> None:
        if not self.enabled:
            return
        self.counter(name).inc(amount)

    @no_overhead_when_disabled
    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauge(name).set(value)

    @no_overhead_when_disabled
    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.histogram(name).observe(value)

    @no_overhead_when_disabled
    def charge(self, unit: str, amount: int = 1) -> None:
        if not self.enabled:
            return
        stack = self._span_stack
        op = stack[-1].op if stack else UNATTRIBUTED
        self.ledger.add(op, unit, amount)

    def span(self, name: str, **tags: Any) -> Span:
        # Not @no_overhead_when_disabled: spans time their body even
        # when the registry is disabled (see class docstring).
        return Span(self, name, tags)

    # -- lifecycle --

    def reset(self) -> None:
        """Drop all recorded data; keeps ``enabled`` as-is."""
        self.ledger.clear()
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._span_stats.clear()
        self._span_stack.clear()

    def capture(self, *, reset: bool = True) -> "_Capture":
        """Context manager: enable (optionally after a reset), then
        restore the previous enabled state on exit."""
        return _Capture(self, reset)

    # -- span aggregation --

    def _record_span(self, span: Span, *, failed: bool) -> None:
        stats = self._span_stats.get(span.name)
        if stats is None:
            stats = {
                "count": 0,
                "failed": 0,
                "total_seconds": 0.0,
                "min_seconds": None,
                "max_seconds": None,
            }
            self._span_stats[span.name] = stats
        stats["count"] += 1
        if failed:
            stats["failed"] += 1
        seconds = span.seconds
        stats["total_seconds"] += seconds
        if stats["min_seconds"] is None or seconds < stats["min_seconds"]:
            stats["min_seconds"] = seconds
        if stats["max_seconds"] is None or seconds > stats["max_seconds"]:
            stats["max_seconds"] = seconds

    # -- export --

    def snapshot(self) -> dict:
        return {
            "registry": self.name,
            "enabled": self.enabled,
            "counters": {
                k: self._counters[k].snapshot()
                for k in sorted(self._counters)
            },
            "gauges": {
                k: self._gauges[k].snapshot() for k in sorted(self._gauges)
            },
            "histograms": {
                k: self._histograms[k].snapshot()
                for k in sorted(self._histograms)
            },
            "spans": {
                k: dict(self._span_stats[k])
                for k in sorted(self._span_stats)
            },
            "ledger": self.ledger.snapshot(),
        }


class _Capture:
    __slots__ = ("_registry", "_reset", "_prior")

    def __init__(self, registry: Registry, reset: bool) -> None:
        self._registry = registry
        self._reset = reset
        self._prior = False

    def __enter__(self) -> Registry:
        if self._reset:
            self._registry.reset()
        self._prior = self._registry.enabled
        self._registry.enabled = True
        return self._registry

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._registry.enabled = self._prior
        return False
