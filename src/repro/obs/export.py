"""Snapshot-to-JSON helpers shared by the CLI and the benches."""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.registry import Registry

__all__ = ["dumps", "write", "bench_section", "extract_bench_sections"]


def dumps(registry: Registry, *, indent: int | None = 2) -> str:
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=False)


def write(registry: Registry, path: str | Path, *, indent: int | None = 2) -> Path:
    path = Path(path)
    path.write_text(dumps(registry, indent=indent) + "\n")
    return path


def bench_section(registry: Registry) -> dict:
    """The snapshot subset benches embed per configuration/experiment.

    Everything the CI gate and a human reader need — ledger, counters,
    span aggregates, histogram summaries — without registry identity
    noise.
    """
    snap = registry.snapshot()
    return {
        "ledger": snap["ledger"],
        "counters": snap["counters"],
        "spans": snap["spans"],
        "histograms": snap["histograms"],
    }


def extract_bench_sections(payload: dict) -> dict[str, dict]:
    """Pull embedded obs sections out of a bench JSON file.

    Understands both bench formats in this repo:

    * ``bench_update_hotpath.py`` output — ``configs`` list whose
      entries may carry an ``obs`` key; sections are keyed
      ``"<scheme>@<n>"``.
    * ``repro.bench --json`` output — a top-level ``_obs`` map keyed by
      experiment id.
    """
    sections: dict[str, dict] = {}
    for config in payload.get("configs", []):
        obs = config.get("obs")
        if obs is not None:
            sections[f"{config['scheme']}@{config['n']}"] = obs
    for key, obs in payload.get("_obs", {}).items():
        sections[key] = obs
    return sections
