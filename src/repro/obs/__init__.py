"""repro.obs — zero-dependency observability for the repro codebase.

Three pieces (ISSUE 3 tentpole):

* metrics — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  in a process-local :class:`Registry`;
* spans — ``with OBS.span("update.insert", op="insert"): ...`` nested
  timing with tag propagation; all wall-clock timing in ``src/`` flows
  through spans (enforced by analysis rule RPR006);
* :class:`CostLedger` — the paper's cost units (labels compared,
  middle-string bits, pages read/written, nodes re-labeled, treap
  rotations) attributed to the operation that incurred them via the
  active span's ``op`` tag.

``OBS`` is the module-level registry every instrumented module uses.
It starts **disabled**; hot paths pay one attribute check per hook
(see :func:`no_overhead_when_disabled`, verified by
``python -m repro.obs overhead``).  Enable around a region of interest
with ``with OBS.capture(): ...`` and read ``OBS.snapshot()`` after.

Layering: ``obs`` sits below ``core`` — it may import only
``repro.errors`` (currently: nothing but the stdlib).
"""

from repro.obs.ledger import COST_UNITS, UNATTRIBUTED, CostLedger
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.registry import (
    DISABLED_SAFE_HOOKS,
    Registry,
    Span,
    no_overhead_when_disabled,
)

__all__ = [
    "OBS",
    "Registry",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "CostLedger",
    "COST_UNITS",
    "UNATTRIBUTED",
    "DISABLED_SAFE_HOOKS",
    "no_overhead_when_disabled",
]

#: The process-local registry all instrumented modules share.  Never
#: rebind this name — call ``OBS.reset()`` for isolation instead, so
#: modules that imported it keep observing the same object.
OBS = Registry("default")
