"""CLI for repro.obs: ``dump`` (JSON export) and ``overhead`` (the
disabled-registry micro-benchmark).

::

    python -m repro.obs dump                 # demo workload -> snapshot JSON
    python -m repro.obs dump --from-json BENCH_updates.json
    python -m repro.obs overhead             # ns/call per hook, disabled
    python -m repro.obs overhead --budget-ns 1000   # exit 1 over budget

``dump`` without ``--from-json`` runs a small synthetic workload against
a fresh registry — it exists to show the snapshot format, not to
measure anything.  With ``--from-json`` it extracts the obs sections a
bench run embedded in its output (``repro.obs`` sits below the rest of
the codebase in the layering DAG, so the CLI cannot import the update
engine to build a live document).

``overhead`` times every hook registered via
``@no_overhead_when_disabled`` against a bare attribute-check loop and
reports nanoseconds per call.  This is the empirical check behind the
"one attribute check per hook when disabled" claim.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.obs import OBS, DISABLED_SAFE_HOOKS, Registry
from repro.obs.export import dumps, extract_bench_sections

_DEMO_ROUNDS = 500


def _demo_workload(registry: Registry) -> None:
    with registry.capture():
        with registry.span("demo.load", op="load"):
            for i in range(_DEMO_ROUNDS):
                registry.inc("demo.records")
                registry.charge("demo.cost_units", i % 3)
        with registry.span("demo.update", op="update"):
            for i in range(_DEMO_ROUNDS):
                with registry.span("demo.update.step"):
                    registry.observe("demo.step_value", float(i % 17))
                registry.charge("demo.cost_units", 1)
        registry.set_gauge("demo.final_round", float(_DEMO_ROUNDS))
    # Snapshot with enabled restored to its prior value but data intact.


def _cmd_dump(args: argparse.Namespace) -> int:
    if args.from_json:
        try:
            payload = json.loads(open(args.from_json).read())
        except OSError as exc:
            print(f"error: cannot read {args.from_json}: {exc}", file=sys.stderr)
            return 2
        sections = extract_bench_sections(payload)
        if not sections:
            print(
                f"error: no embedded obs sections in {args.from_json} "
                "(expected 'configs[*].obs' or a top-level '_obs' map)",
                file=sys.stderr,
            )
            return 2
        print(json.dumps(sections, indent=args.indent))
        return 0
    registry = Registry("dump-demo")
    _demo_workload(registry)
    print(dumps(registry, indent=args.indent))
    return 0


def _time_loop(fn, iterations: int) -> float:
    """Best-of-3 nanoseconds per call for ``fn`` over a tight loop."""
    best = None
    for _ in range(3):
        start = time.perf_counter_ns()
        for _ in range(iterations):
            fn()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    return best / iterations


def _cmd_overhead(args: argparse.Namespace) -> int:
    registry = Registry("overhead-probe")
    registry.enabled = False
    iterations = args.iterations

    def baseline() -> None:
        if not registry.enabled:
            return

    rows = [("attribute-check baseline", _time_loop(baseline, iterations))]
    hook_args = {
        "inc": ("probe.counter",),
        "set_gauge": ("probe.gauge", 1.0),
        "observe": ("probe.histogram", 1.0),
        "charge": ("probe.unit", 1),
    }
    failures = []
    for name in DISABLED_SAFE_HOOKS:
        hook = getattr(registry, name)
        call_args = hook_args.get(name, ())
        per_call = _time_loop(lambda h=hook, a=call_args: h(*a), iterations)
        rows.append((f"OBS.{name}", per_call))
        if args.budget_ns is not None and per_call > args.budget_ns:
            failures.append((name, per_call))

    width = max(len(label) for label, _ in rows)
    print(f"disabled-registry overhead ({iterations} calls, best of 3):")
    for label, per_call in rows:
        print(f"  {label:<{width}}  {per_call:8.1f} ns/call")
    if failures:
        for name, per_call in failures:
            print(
                f"FAIL: OBS.{name} costs {per_call:.1f} ns/call "
                f"(budget {args.budget_ns} ns)",
                file=sys.stderr,
            )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dump = sub.add_parser("dump", help="print a registry snapshot as JSON")
    dump.add_argument(
        "--from-json",
        metavar="PATH",
        help="extract obs sections embedded in a bench JSON file "
        "instead of running the demo workload",
    )
    dump.add_argument("--indent", type=int, default=2)
    dump.set_defaults(func=_cmd_dump)

    overhead = sub.add_parser(
        "overhead",
        help="micro-benchmark the disabled-registry hook cost",
    )
    overhead.add_argument("--iterations", type=int, default=200_000)
    overhead.add_argument(
        "--budget-ns",
        type=float,
        default=None,
        help="fail (exit 1) if any hook exceeds this many ns/call",
    )
    overhead.set_defaults(func=_cmd_overhead)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
