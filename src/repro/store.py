"""``XmlStore`` — the library's batteries-included front door.

Everything the paper's system does, behind one object: documents go in
as XML text, get labeled by the scheme of your choice, stay queryable
through the label-driven engine, absorb updates (without re-labeling,
when the scheme is dynamic), and round-trip to disk as label bundles.

Example::

    store = XmlStore(scheme="V-CDBS-Containment")
    store.add_document("<play><act/><act/></play>", name="hamlet")
    acts = store.query("/play/act")
    store.insert_xml(acts[0], "<act/>", position="before")
    assert store.totals.relabeled_nodes == 0
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.errors import ReproError
from repro.labeling import LabeledDocument, UpdateStats, make_scheme
from repro.query import CollectionQueryEngine, QueryEngine
from repro.storage import load_labeled, save_labeled
from repro.storage.pager import IOCostModel
from repro.updates import UpdateEngine, UpdateResult
from repro.xmltree import Document, Node, parse_document, parse_fragment, serialize_document

__all__ = ["XmlStore", "StoreError"]


class StoreError(ReproError):
    """A store-level misuse: unknown document, duplicate name, etc."""


class XmlStore:
    """A multi-document XML store over one labeling scheme.

    Args:
        scheme: any name from :func:`repro.labeling.scheme_names`.
        with_storage: model page I/O per update (Figure 7 style).
        io_model: per-page costs when storage modelling is on.
    """

    def __init__(
        self,
        scheme: str = "V-CDBS-Containment",
        *,
        with_storage: bool = False,
        io_model: IOCostModel | None = None,
    ) -> None:
        self.scheme_name = scheme
        self._with_storage = with_storage
        self._io_model = io_model
        self._labeled: dict[str, LabeledDocument] = {}
        self._engines: dict[str, UpdateEngine] = {}
        self.totals = UpdateStats()

    # -- document management -------------------------------------------------

    def add_document(
        self, source: "str | Document", name: str | None = None
    ) -> str:
        """Parse (if text), label and register a document; returns its name."""
        if isinstance(source, Document):
            document = source
        else:
            document = parse_document(source, name=name or "document")
        key = name or document.name
        if key in self._labeled:
            raise StoreError(f"a document named {key!r} already exists")
        document.name = key
        labeled = make_scheme(self.scheme_name).label_document(document)
        self._labeled[key] = labeled
        self._engines[key] = UpdateEngine(
            labeled, with_storage=self._with_storage, io_model=self._io_model
        )
        return key

    def remove_document(self, name: str) -> None:
        self._labeled_of(name)  # raise on unknown
        del self._labeled[name]
        del self._engines[name]

    def document(self, name: str) -> Document:
        return self._labeled_of(name).document

    def document_names(self) -> list[str]:
        return list(self._labeled)

    def __len__(self) -> int:
        return len(self._labeled)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labeled)

    def _labeled_of(self, name: str) -> LabeledDocument:
        try:
            return self._labeled[name]
        except KeyError:
            raise StoreError(
                f"no document named {name!r}; have {sorted(self._labeled)}"
            ) from None

    def _owner_of(self, node: Node) -> tuple[str, LabeledDocument]:
        for name, labeled in self._labeled.items():
            if id(node) in labeled.labels:
                return name, labeled
        raise StoreError("node does not belong to any stored document")

    # -- queries ------------------------------------------------------------

    def query(self, text: str, document: str | None = None) -> list[Node]:
        """Evaluate over one document, or the whole store when ``None``."""
        if document is not None:
            return QueryEngine(self._labeled_of(document)).evaluate(text)
        return CollectionQueryEngine(self._labeled.values()).evaluate(text)

    def count(self, text: str, document: str | None = None) -> int:
        return len(self.query(text, document))

    # -- updates --------------------------------------------------------------

    def _resolve_target(self, target: "str | Node") -> Node:
        if isinstance(target, Node):
            return target
        matches = self.query(target)
        if not matches:
            raise StoreError(f"query {target!r} matched nothing")
        if len(matches) > 1:
            raise StoreError(
                f"query {target!r} matched {len(matches)} nodes; updates "
                f"need exactly one target"
            )
        return matches[0]

    def _apply(self, name: str, result: UpdateResult) -> UpdateResult:
        self.totals = self.totals.merge(result.stats)
        return result

    def insert_xml(
        self,
        target: "str | Node",
        fragment: str,
        *,
        position: str = "child",
    ) -> UpdateResult:
        """Insert a parsed XML fragment relative to ``target``.

        ``position`` is ``"before"``, ``"after"`` or ``"child"``
        (appended as the last child).
        """
        node = self._resolve_target(target)
        name, _ = self._owner_of(node)
        engine = self._engines[name]
        subtree = parse_fragment(fragment)
        if position == "before":
            result = engine.insert_before(node, subtree)
        elif position == "after":
            result = engine.insert_after(node, subtree)
        elif position == "child":
            result = engine.insert_child(node, subtree)
        else:
            raise StoreError(
                f"position must be 'before', 'after' or 'child', "
                f"got {position!r}"
            )
        return self._apply(name, result)

    def delete(self, target: "str | Node") -> UpdateResult:
        node = self._resolve_target(target)
        name, _ = self._owner_of(node)
        return self._apply(name, self._engines[name].delete(node))

    def move(self, node: "str | Node", *, before: "str | Node") -> UpdateResult:
        moving = self._resolve_target(node)
        destination = self._resolve_target(before)
        name, _ = self._owner_of(moving)
        dest_name, _ = self._owner_of(destination)
        if name != dest_name:
            raise StoreError("cannot move a node across documents")
        return self._apply(
            name, self._engines[name].move_before(moving, destination)
        )

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Store-wide counters: documents, nodes, label bits, update totals."""
        return {
            "scheme": self.scheme_name,
            "documents": len(self._labeled),
            "nodes": sum(l.node_count() for l in self._labeled.values()),
            "label_bits": sum(
                l.total_label_bits() for l in self._labeled.values()
            ),
            "inserted_nodes": self.totals.inserted_nodes,
            "deleted_nodes": self.totals.deleted_nodes,
            "relabeled_nodes": self.totals.relabeled_nodes,
            "sc_recomputed": self.totals.sc_recomputed,
        }

    def export_xml(self, name: str) -> str:
        """The current XML text of one document."""
        return serialize_document(self.document(name))

    # -- persistence -----------------------------------------------------------

    def save(self, directory: "str | Path") -> None:
        """Write every document as a label bundle under ``directory``."""
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        for name, labeled in self._labeled.items():
            save_labeled(labeled, target / f"{name}.rpro")

    @classmethod
    def load(
        cls,
        directory: "str | Path",
        *,
        with_storage: bool = False,
        io_model: IOCostModel | None = None,
    ) -> "XmlStore":
        """Rebuild a store from :meth:`save` output."""
        source = Path(directory)
        bundles = sorted(source.glob("*.rpro"))
        if not bundles:
            raise StoreError(f"no .rpro bundles under {source}")
        store: XmlStore | None = None
        for bundle in bundles:
            labeled = load_labeled(bundle)
            if store is None:
                store = cls(
                    scheme=labeled.scheme.name,
                    with_storage=with_storage,
                    io_model=io_model,
                )
            elif labeled.scheme.name != store.scheme_name:
                raise StoreError(
                    f"{bundle.name} uses scheme {labeled.scheme.name!r}, "
                    f"store uses {store.scheme_name!r}"
                )
            name = bundle.stem
            labeled.document.name = name
            store._labeled[name] = labeled
            store._engines[name] = UpdateEngine(
                labeled, with_storage=with_storage, io_model=io_model
            )
        assert store is not None
        return store
