"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with one handler.  The two errors that
matter most for the paper's claims are the *re-label triggers*:

* :class:`LengthFieldOverflow` — the fixed-width length field of a
  variable-length code can no longer describe a new code (Section 6 of the
  paper, the "overflow problem").  V-CDBS / F-CDBS / OrdPath raise it;
  QED never does.
* :class:`PrecisionExhausted` — a float-point containment label can no
  longer bisect the gap between two neighbours (Section 2.1; the paper
  notes at most ~18 insertions fit at one spot).

Both derive from :class:`RelabelRequired`; the update engine catches that
base class and falls back to a full re-labeling pass, counting its cost.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidCodeError(ReproError, ValueError):
    """A code violates its encoding's invariants.

    Examples: a CDBS binary string that does not end with ``1``
    (Example 3.3 of the paper shows why that invariant is required), or a
    QED quaternary string containing the reserved separator symbol ``0``.
    """


class NotOrderedError(ReproError, ValueError):
    """The pair of codes handed to an insertion routine is not ordered.

    ``assign_middle_binary_string(left, right)`` requires
    ``left < right`` lexicographically (Theorem 3.1); this error reports a
    caller bug, never a data-dependent condition.
    """


class RelabelRequired(ReproError):
    """A dynamic insertion cannot proceed without re-labeling existing nodes.

    The update engine treats this as a signal to run (and account for) a
    full re-label of the affected region, mirroring how a real system
    would recover.
    """


class LengthFieldOverflow(RelabelRequired):
    """A new code no longer fits the fixed-width length field (Section 6)."""

    def __init__(self, code_bits: int, max_bits: int) -> None:
        super().__init__(
            f"code of {code_bits} bits exceeds the {max_bits}-bit capacity "
            f"described by the fixed-width length field"
        )
        self.code_bits = code_bits
        self.max_bits = max_bits


class PrecisionExhausted(RelabelRequired):
    """A float-point label gap can no longer be bisected (Section 2.1)."""

    def __init__(self, left: float, right: float) -> None:
        super().__init__(
            f"no representable float strictly between {left!r} and {right!r}"
        )
        self.left = left
        self.right = right


class UpdateAborted(ReproError):
    """A structural update failed mid-flight and was rolled back.

    Raised by :class:`~repro.updates.txn.Transaction` after the undo log
    has restored the exact pre-operation state, so the caller knows two
    things at once: *what* failed (``original``, also chained as
    ``__cause__``) and that the document, its indexes and the page store
    are still mutually consistent.
    """

    def __init__(self, op: str, original: BaseException) -> None:
        super().__init__(
            f"update {op!r} failed and was rolled back to the "
            f"pre-operation state: {original!r}"
        )
        self.op = op
        self.original = original


class RollbackError(ReproError):
    """An undo entry itself failed while rolling a transaction back.

    This is always a bug in the undo log (inverse operations touch raw
    state and pass through no fault points); the document may be left
    inconsistent, which is why the partially-unwound transaction does
    not swallow it.
    """


class InjectedFault(ReproError):
    """A deterministic fault raised by :mod:`repro.faults`.

    Never raised in production paths unless a :class:`FaultPlan` is
    armed; chaos tests use it to prove every mutation site rolls back.
    """

    def __init__(self, site: str, hit: int, message: str = "") -> None:
        detail = f": {message}" if message else ""
        super().__init__(f"injected fault at {site!r} (hit #{hit}){detail}")
        self.site = site
        self.hit = hit


class TransientFault(InjectedFault):
    """An injected fault a bounded retry may clear (e.g. a flaky write)."""


class PersistentFault(InjectedFault):
    """An injected fault that fires on every retry of the same site."""


class SimulatedCrash(InjectedFault):
    """An injected process death at a durability site.

    Unlike :class:`TransientFault`/:class:`PersistentFault`, a crash is
    never retried and never wrapped in :class:`UpdateAborted`: the
    "process" is considered dead the instant it fires, so the crash
    matrix catches it raw, throws the in-memory state away, and drives
    :func:`repro.wal.recover` against what reached disk.
    """


class ServiceError(ReproError):
    """A document-service request that cannot be served.

    Covers malformed update specs, positions outside the current
    document, and requests against unknown or closed documents.  The
    HTTP layer maps it to a 4xx response; the engine state is untouched
    (either the request never reached a transaction, or the transaction
    rolled back and :class:`UpdateAborted` is chained as the cause).
    """


class DeadlineExceeded(ServiceError):
    """A queued update's deadline expired before the writer reached it.

    The op was **not** applied (expiry is checked before the engine
    runs it) and nothing of it was logged.  The HTTP layer maps this to
    408; a client that still wants the update should resubmit — with a
    ``request_id`` if it cannot tell a late ack from a lost one.
    """


class ServiceOverloaded(ServiceError):
    """The document's commit queue is full; the update was refused.

    Backpressure, not failure: nothing was enqueued, nothing applied.
    ``retry_after`` is the writer's hint (in seconds) for when the
    queue should have drained; the HTTP layer maps this to 429 with a
    ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceCrashed(ReproError):
    """The document's writer died before this commit was acknowledged.

    Raised to waiters whose queued update was in (or behind) a batch
    whose group fsync never returned.  The commit may or may not have
    reached disk; the only truth is what :func:`repro.wal.recover`
    rebuilds — which is why the service quarantines the document
    instead of guessing.
    """


class XMLParseError(ReproError, ValueError):
    """Malformed XML input fed to :mod:`repro.xmltree.parser`."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class XPathSyntaxError(ReproError, ValueError):
    """Malformed query fed to :mod:`repro.query.xpath`."""


class UnsupportedOperationError(ReproError):
    """A labeling scheme was asked for an operation it cannot perform."""
