"""Paged label storage, bit-exact label codecs, and persistence."""

from repro.storage.atomicio import atomic_write_bytes
from repro.storage.encoding import (
    BitReader,
    BitWriter,
    decode_labels,
    encode_labels,
    make_label_codec,
)
from repro.storage.labelfile import (
    FORMAT_VERSION,
    LabelFileError,
    load_labeled,
    save_labeled,
)
from repro.storage.labelstore import LabelStore
from repro.storage.pager import (
    DEFAULT_PAGE_BYTES,
    BufferPool,
    IOCostModel,
    PageCounter,
    PageStore,
)

__all__ = [
    "atomic_write_bytes",
    "BitReader",
    "BitWriter",
    "encode_labels",
    "decode_labels",
    "make_label_codec",
    "save_labeled",
    "load_labeled",
    "LabelFileError",
    "FORMAT_VERSION",
    "LabelStore",
    "PageStore",
    "BufferPool",
    "PageCounter",
    "IOCostModel",
    "DEFAULT_PAGE_BYTES",
]
