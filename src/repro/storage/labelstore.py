"""A label store: one document's labels laid out in a page store.

Binds a :class:`~repro.labeling.base.LabeledDocument` to a
:class:`~repro.storage.pager.PageStore`: labels sit in document order,
each occupying ``ceil(bits / 8)`` bytes.  The update engine reports each
structural update to the store, which translates it into page I/O:

* a dynamic insert splices the new labels in locally (1–2 pages);
* a re-label rewrites the page range its records span;
* a Prime SC recomputation rewrites the SC file's affected range.
"""

from __future__ import annotations

from repro.labeling.base import LabeledDocument, UpdateStats
from repro.obs import OBS
from repro.storage.pager import (
    DEFAULT_PAGE_BYTES,
    BufferPool,
    IOCostModel,
    PageStore,
)
from repro.xmltree.node import Node

__all__ = ["LabelStore"]

_SC_RECORD_BYTES = 16
"""Approximate bytes of one SC value: a CRT solution modulo the product
of five ~24-bit primes is ~120 bits."""


class LabelStore:
    """Page-level storage accounting for one labeled document."""

    def __init__(
        self,
        labeled: LabeledDocument,
        *,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        io_model: IOCostModel | None = None,
        cache_pages: int | None = None,
    ) -> None:
        self.labeled = labeled
        self.io_model = io_model or IOCostModel()
        self.buffer_pool = BufferPool(cache_pages) if cache_pages else None
        # Distinct namespaces: both stores number pages from 0, so a
        # shared pool would otherwise alias label page 0 with SC page 0
        # and report cache hits for pages never actually cached.
        self.pages = PageStore(
            page_bytes, buffer_pool=self.buffer_pool, namespace="labels"
        )
        self.sc_pages = PageStore(
            page_bytes, buffer_pool=self.buffer_pool, namespace="sc"
        )
        self._load()

    def bind_undo(self, log) -> None:
        """Bind (or, with ``None``, unbind) a transaction's undo log.

        Called by :class:`repro.updates.txn.Transaction`; both page
        stores share the one log so a rollback unwinds label and SC
        traffic in a single reverse pass.
        """
        self.pages.undo_log = log
        self.sc_pages.undo_log = log

    def _label_bytes(self, node: Node) -> int:
        bits = self.labeled.scheme.label_bits(self.labeled.label_of(node))
        return max(1, -(-bits // 8))

    def _load(self) -> None:
        sizes = [self._label_bytes(node) for node in self.labeled.nodes_in_order]
        self.pages.load_records(sizes)
        groups = self.labeled.extra.get("sc_groups")
        if groups:
            self.sc_pages.load_records([_SC_RECORD_BYTES] * len(groups))

    # -- update accounting -------------------------------------------------

    def apply_update(
        self, stats: UpdateStats, position: int
    ) -> tuple[int, float]:
        """Charge one structural update; returns (pages touched, seconds).

        Args:
            stats: the scheme's accounting for the update.
            position: document-order index where the change begins.
        """
        # The span inherits the enclosing update's ``op`` tag, so page
        # charges below attribute to the insert/delete that caused them.
        with OBS.span("store.apply_update"):
            return self._apply_update(stats, position)

    def _apply_update(
        self, stats: UpdateStats, position: int
    ) -> tuple[int, float]:
        reads_before = self.pages.counter.reads + self.sc_pages.counter.reads
        writes_before = (
            self.pages.counter.writes + self.sc_pages.counter.writes
        )
        backoff_before = (
            self.pages.retry_backoff_seconds
            + self.sc_pages.retry_backoff_seconds
        )
        pages = 0
        if stats.deleted_nodes:
            pages += self.pages.splice(position, [], removed=stats.deleted_nodes)
        if stats.inserted_nodes:
            # New labels go in at `position`; sizes approximated by the
            # neighbourhood's current label size (dynamic labels are
            # within a bit or two of their neighbours').
            nearby = min(position, max(0, self.pages.record_count() - 1))
            size = (
                self._label_bytes(self.labeled.nodes_in_order[nearby])
                if self.labeled.nodes_in_order
                else 4
            )
            pages += self.pages.splice(
                position, [size] * stats.inserted_nodes
            )
        if stats.relabeled_nodes:
            # Re-labeled records sit between the insertion point and the
            # end of the document (ancestors + following, Section 2.1).
            pages += self.pages.touch_range(
                position, position + stats.relabeled_nodes + stats.inserted_nodes
            )
        if stats.sc_recomputed:
            # Recomputing a group's SC value needs its five members'
            # self-label primes: Prime must *read* every label page from
            # the first disturbed position to the end of the file before
            # rewriting the SC records — the I/O that makes Figure 7's
            # Prime bars tower over even the full re-label schemes.
            read_pages = self.pages.pages_of_range(
                position, self.pages.record_count() - 1
            )
            self.pages.charge_reads(read_pages)
            pages += read_pages
            total_groups = len(self.labeled.extra.get("sc_groups", []))
            if self.sc_pages.record_count() != total_groups:
                self.sc_pages.load_records([_SC_RECORD_BYTES] * total_groups)
            first = max(0, total_groups - stats.sc_recomputed)
            pages += self.sc_pages.touch_range(first, total_groups - 1)
        reads = (
            self.pages.counter.reads + self.sc_pages.counter.reads
        ) - reads_before
        writes = (
            self.pages.counter.writes + self.sc_pages.counter.writes
        ) - writes_before
        # Retried transient writes fold their modeled backoff into the
        # update's I/O time (zero whenever no fault plan is armed).
        backoff = (
            self.pages.retry_backoff_seconds
            + self.sc_pages.retry_backoff_seconds
        ) - backoff_before
        return pages, self.io_model.cost(reads, writes) + backoff

    def io_seconds_so_far(self) -> float:
        counter = self.pages.counter.merge(self.sc_pages.counter)
        return self.io_model.cost(counter.reads, counter.writes)
