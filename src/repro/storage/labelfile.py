"""Persistence: save and reload a labeled document as one file bundle.

A bundle holds the XML text, the scheme name and codec configuration,
and the bit-exact label stream of :mod:`repro.storage.encoding` — what a
real CDBS deployment would keep in its catalog plus label file.  A
reloaded document answers queries identically to the original without
re-labeling anything.

Format v2 (all integers ASCII in the header, binary payloads after)::

    RPRO-LABELS-2\\n
    <scheme name>\\n
    <config json>\\n
    <xml byte length> <label byte length> <crc32 of payload>\\n
    <xml bytes><label bytes>

The version lives in the magic line; the CRC-32 covers the
concatenated payload (XML bytes then label bytes), so a flipped bit
anywhere in the body is caught before decoding is attempted.  Bundles
written by version 1 (no checksum field) still load; new bundles are
always written as v2.  Every malformation — bad magic, short header,
checksum mismatch, undecodable XML or label stream, unknown scheme —
surfaces as :class:`LabelFileError`, never a raw parser exception.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.labeling import LabeledDocument, make_scheme
from repro.labeling.containment import ContainmentScheme
from repro.labeling.prime import PrimeScheme
from repro.storage.atomicio import atomic_write_bytes
from repro.storage.encoding import decode_labels, encode_labels
from repro.xmltree import parse_document, serialize_document

__all__ = ["save_labeled", "load_labeled", "LabelFileError", "FORMAT_VERSION"]

_MAGIC_V1 = b"RPRO-LABELS-1\n"
_MAGIC_V2 = b"RPRO-LABELS-2\n"

FORMAT_VERSION = 2
"""The bundle format version :func:`save_labeled` writes."""


class LabelFileError(ReproError):
    """The bundle is malformed or written by an incompatible version."""


def _scheme_config(scheme) -> dict[str, Any]:
    """Codec state that must survive a save/load cycle.

    ``_configured_field_bits`` rides along for V-CDBS because the
    stream framing derives its practical length field from it (a
    deliberately tight Section 6 overflow configuration must decode
    with the same tight field it encoded with).
    """
    config: dict[str, Any] = {}
    if isinstance(scheme, ContainmentScheme):
        codec = scheme.codec
        attributes = ("_field_bits", "_configured_field_bits", "_width", "gap")
        for attribute in attributes:
            if hasattr(codec, attribute):
                config[attribute] = getattr(codec, attribute)
    return config


def _apply_scheme_config(scheme, config: dict[str, Any]) -> None:
    if isinstance(scheme, ContainmentScheme):
        codec = scheme.codec
        for attribute, value in config.items():
            if hasattr(codec, attribute):
                setattr(codec, attribute, value)


def save_labeled(labeled: LabeledDocument, path: "str | Path") -> int:
    """Write a labeled document bundle (format v2) to ``path``.

    The write is atomic (temp file + ``os.replace``): a crash or fault
    mid-save leaves the previous bundle intact instead of a truncated
    file that only the CRC would catch later.  Returns the bundle size
    in bytes (the WAL checkpointer reports it to the obs ledger).
    """
    xml_bytes = serialize_document(labeled.document).encode("utf-8")
    label_bytes = encode_labels(labeled)
    checksum = zlib.crc32(xml_bytes + label_bytes)
    header = (
        _MAGIC_V2
        + f"{labeled.scheme.name}\n".encode("utf-8")
        + (json.dumps(_scheme_config(labeled.scheme)) + "\n").encode("utf-8")
        + f"{len(xml_bytes)} {len(label_bytes)} {checksum}\n".encode("ascii")
    )
    return atomic_write_bytes(path, header + xml_bytes + label_bytes)


def load_labeled(path: "str | Path") -> LabeledDocument:
    """Reload a bundle; the result queries exactly like the original.

    Accepts both format versions; only v2 carries a payload checksum.

    Raises:
        LabelFileError: bad magic, malformed header, checksum mismatch,
            an undecodable payload, an unknown scheme, or a label count
            that does not match the document.
    """
    data = Path(path).read_bytes()
    if data.startswith(_MAGIC_V2):
        version, rest = 2, data[len(_MAGIC_V2) :]
    elif data.startswith(_MAGIC_V1):
        version, rest = 1, data[len(_MAGIC_V1) :]
    else:
        raise LabelFileError(f"{path}: not a repro label bundle")
    try:
        scheme_line, rest = rest.split(b"\n", 1)
        config_line, rest = rest.split(b"\n", 1)
        sizes_line, rest = rest.split(b"\n", 1)
        fields = sizes_line.split()
        if len(fields) != (3 if version == 2 else 2):
            raise ValueError(f"expected {3 if version == 2 else 2} fields")
        xml_size, label_size = int(fields[0]), int(fields[1])
        checksum = int(fields[2]) if version == 2 else None
    except ValueError as error:
        raise LabelFileError(f"{path}: malformed header") from error
    if len(rest) != xml_size + label_size:
        raise LabelFileError(
            f"{path}: payload is {len(rest)} bytes, header promises "
            f"{xml_size + label_size}"
        )
    if checksum is not None and zlib.crc32(rest) != checksum:
        raise LabelFileError(
            f"{path}: payload checksum mismatch — the bundle is corrupt"
        )
    try:
        scheme = make_scheme(scheme_line.decode("utf-8"))
    except (KeyError, UnicodeDecodeError) as error:
        raise LabelFileError(
            f"{path}: unknown labeling scheme {scheme_line!r}"
        ) from error
    try:
        _apply_scheme_config(scheme, json.loads(config_line.decode("utf-8")))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise LabelFileError(f"{path}: malformed scheme config") from error
    try:
        document = parse_document(
            rest[:xml_size].decode("utf-8"), keep_whitespace=True
        )
        labels = decode_labels(scheme, rest[xml_size:])
    except LabelFileError:
        raise
    except (ReproError, ValueError, UnicodeDecodeError) as error:
        raise LabelFileError(f"{path}: undecodable payload") from error

    labeled = LabeledDocument(document, scheme)
    labeled.rebuild_order()
    if len(labels) != len(labeled.nodes_in_order):
        raise LabelFileError(
            f"{path}: {len(labels)} labels for "
            f"{len(labeled.nodes_in_order)} nodes"
        )
    for node, label in zip(labeled.nodes_in_order, labels):
        labeled.set_label(node, label)
    if isinstance(scheme, PrimeScheme):
        # SC groups (document order) are derived state; rebuild them and
        # restore the prime allocation floor for future insertions.
        scheme._rebuild_groups(labeled, from_group=0)
        labeled.extra["next_prime_floor"] = (
            max(label.self_label for label in labels) + 1 if labels else 11
        )
    return labeled
