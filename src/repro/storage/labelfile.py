"""Persistence: save and reload a labeled document as one file bundle.

A bundle holds the XML text, the scheme name and codec configuration,
and the bit-exact label stream of :mod:`repro.storage.encoding` — what a
real CDBS deployment would keep in its catalog plus label file.  A
reloaded document answers queries identically to the original without
re-labeling anything.

Format (all integers ASCII in the header, binary payloads after)::

    RPRO-LABELS-1\\n
    <scheme name>\\n
    <config json>\\n
    <xml byte length> <label byte length>\\n
    <xml bytes><label bytes>
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.labeling import LabeledDocument, make_scheme
from repro.labeling.containment import ContainmentScheme
from repro.labeling.prime import PrimeScheme
from repro.storage.encoding import decode_labels, encode_labels
from repro.xmltree import parse_document, serialize_document

__all__ = ["save_labeled", "load_labeled", "LabelFileError"]

_MAGIC = b"RPRO-LABELS-1\n"


class LabelFileError(ReproError):
    """The bundle is malformed or written by an incompatible version."""


def _scheme_config(scheme) -> dict[str, Any]:
    """Codec state that must survive a save/load cycle."""
    config: dict[str, Any] = {}
    if isinstance(scheme, ContainmentScheme):
        codec = scheme.codec
        for attribute in ("_field_bits", "_width", "gap"):
            if hasattr(codec, attribute):
                config[attribute] = getattr(codec, attribute)
    return config


def _apply_scheme_config(scheme, config: dict[str, Any]) -> None:
    if isinstance(scheme, ContainmentScheme):
        codec = scheme.codec
        for attribute, value in config.items():
            if hasattr(codec, attribute):
                setattr(codec, attribute, value)


def save_labeled(labeled: LabeledDocument, path: "str | Path") -> None:
    """Write a labeled document bundle to ``path``."""
    xml_bytes = serialize_document(labeled.document).encode("utf-8")
    label_bytes = encode_labels(labeled)
    header = (
        _MAGIC
        + f"{labeled.scheme.name}\n".encode("utf-8")
        + (json.dumps(_scheme_config(labeled.scheme)) + "\n").encode("utf-8")
        + f"{len(xml_bytes)} {len(label_bytes)}\n".encode("ascii")
    )
    Path(path).write_bytes(header + xml_bytes + label_bytes)


def load_labeled(path: "str | Path") -> LabeledDocument:
    """Reload a bundle; the result queries exactly like the original.

    Raises:
        LabelFileError: bad magic, malformed header, or a label count
            that does not match the document.
    """
    data = Path(path).read_bytes()
    if not data.startswith(_MAGIC):
        raise LabelFileError(f"{path}: not a repro label bundle")
    rest = data[len(_MAGIC) :]
    try:
        scheme_line, rest = rest.split(b"\n", 1)
        config_line, rest = rest.split(b"\n", 1)
        sizes_line, rest = rest.split(b"\n", 1)
        xml_size_text, label_size_text = sizes_line.split()
        xml_size, label_size = int(xml_size_text), int(label_size_text)
    except ValueError as error:
        raise LabelFileError(f"{path}: malformed header") from error
    if len(rest) != xml_size + label_size:
        raise LabelFileError(
            f"{path}: payload is {len(rest)} bytes, header promises "
            f"{xml_size + label_size}"
        )
    scheme = make_scheme(scheme_line.decode("utf-8"))
    _apply_scheme_config(scheme, json.loads(config_line.decode("utf-8")))
    document = parse_document(
        rest[:xml_size].decode("utf-8"), keep_whitespace=True
    )
    labels = decode_labels(scheme, rest[xml_size:])

    labeled = LabeledDocument(document, scheme)
    labeled.rebuild_order()
    if len(labels) != len(labeled.nodes_in_order):
        raise LabelFileError(
            f"{path}: {len(labels)} labels for "
            f"{len(labeled.nodes_in_order)} nodes"
        )
    for node, label in zip(labeled.nodes_in_order, labels):
        labeled.set_label(node, label)
    if isinstance(scheme, PrimeScheme):
        # SC groups (document order) are derived state; rebuild them and
        # restore the prime allocation floor for future insertions.
        scheme._rebuild_groups(labeled, from_group=0)
        labeled.extra["next_prime_floor"] = (
            max(label.self_label for label in labels) + 1 if labels else 11
        )
    return labeled
