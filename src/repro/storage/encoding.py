"""Bit-exact label encoding: labels as the bytes a real store would hold.

The rest of the library *accounts* label sizes in bits (Figure 5); this
module actually produces and parses the bit streams, so the accounting
can be validated against real encoded bytes and labeled documents can
be persisted and reloaded.  One :class:`LabelStreamCodec` exists per
scheme flavour:

* containment — per value: the codec-specific framing below, then an
  8-bit level;
* prefix — the per-component framings (UTF-8 varints for DeweyID,
  Li/Oi for OrdPath, frame-padded CDBS codes, separator-terminated QED,
  self-delimiting binary strings);
* prime — length-prefixed big-integer product and self label.

Value framings:

=============  =====================================================
V-Binary       fixed-width length field + value bits
F-Binary       fixed-width value
gapped int     same as V-Binary
float-point    IEEE-754 single, 32 bits
V-CDBS         fixed-width length field + code bits
F-CDBS         fixed-width code (right-padded with 0s)
QED            2-bit symbols, terminated by a ``00`` separator symbol
UTF-8 varint   RFC 2279 framing generalised past 6 bytes
CDBS-in-UTF-8  code bits left-aligned in a UTF-8 frame; the decoder
               strips the right padding, which is unambiguous because
               every CDBS code ends with ``1``
Li/Oi          the ORDPATH bucket table of
               :data:`repro.labeling.prefix.ORDPATH_BUCKETS`
=============  =====================================================
"""

from __future__ import annotations

import struct
from typing import Any, Callable

import numpy as np

from repro.core.bitstring import BitString
from repro.errors import InvalidCodeError, ReproError
from repro.labeling.base import LabeledDocument
from repro.labeling.containment import ContainmentLabel, ContainmentScheme
from repro.labeling.prefix import ORDPATH_BUCKETS, PrefixScheme
from repro.labeling.prime import PrimeLabel, PrimeScheme

__all__ = [
    "BitWriter",
    "BitReader",
    "encode_utf8_varint",
    "decode_utf8_varint",
    "encode_ordpath_component",
    "decode_ordpath_component",
    "LabelStreamCodec",
    "make_label_codec",
    "encode_labels",
    "decode_labels",
]


class EncodingError(ReproError):
    """A label stream is malformed or truncated."""


# ---------------------------------------------------------------------------
# Bit-level I/O
# ---------------------------------------------------------------------------

class BitWriter:
    """Accumulates bits MSB-first and renders zero-padded bytes."""

    def __init__(self) -> None:
        self._value = 0
        self._bits = 0

    def write(self, value: int, width: int) -> None:
        if width < 0 or value < 0 or value.bit_length() > width:
            raise ValueError(f"{value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._bits += width

    def write_bitstring(self, code: BitString) -> None:
        self.write(code.value, len(code))

    def write_bits_text(self, text: str) -> None:
        if text:
            self.write_bitstring(BitString.from_str(text))

    def bit_length(self) -> int:
        return self._bits

    def to_bytes(self) -> bytes:
        padding = (-self._bits) % 8
        total = self._bits + padding
        if total == 0:
            return b""
        return (self._value << padding).to_bytes(total // 8, "big")


class BitReader:
    """Reads MSB-first bits from bytes.

    The whole buffer is converted to one big integer up front, so each
    ``read`` is a shift and a mask instead of a per-bit loop — the
    decoding mirror of :class:`BitWriter`'s packed accumulator, and the
    hot path of WAL frame and checkpoint-bundle label decoding.
    """

    def __init__(self, data: bytes) -> None:
        self._total_bits = len(data) * 8
        self._packed = int.from_bytes(data, "big") if data else 0
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    def remaining(self) -> int:
        return self._total_bits - self._position

    def read(self, width: int) -> int:
        if width < 0:
            raise ValueError("width must be non-negative")
        position = self._position
        if self._total_bits - position < width:
            raise EncodingError(
                f"label stream truncated: needed {width} bits at offset "
                f"{position}, have {self._total_bits - position}"
            )
        end = position + width
        self._position = end
        return (self._packed >> (self._total_bits - end)) & ((1 << width) - 1)

    def read_bitstring(self, width: int) -> BitString:
        return BitString(self.read(width), width)


# ---------------------------------------------------------------------------
# Value framings
# ---------------------------------------------------------------------------

def _utf8_frame_capacity(extra_bytes: int) -> int:
    """Payload bits of a frame with ``extra_bytes`` continuation bytes."""
    return 7 if extra_bytes == 0 else 11 + 5 * (extra_bytes - 1)


def _utf8_frame_for(payload_bits: int) -> int:
    """Smallest frame (as continuation-byte count) fitting the payload."""
    extra = 0
    while _utf8_frame_capacity(extra) < payload_bits:
        extra += 1
    return extra


def _write_utf8_frame(writer: BitWriter, payload: int, extra_bytes: int) -> None:
    capacity = _utf8_frame_capacity(extra_bytes)
    if extra_bytes == 0:
        writer.write(0, 1)
        writer.write(payload, 7)
        return
    # Lead byte: (extra_bytes+1) ones, a zero, then the high payload bits.
    lead_payload_bits = 8 - (extra_bytes + 2)
    writer.write((1 << (extra_bytes + 1)) - 1, extra_bytes + 1)
    writer.write(0, 1)
    shift = capacity - lead_payload_bits
    writer.write(payload >> shift, lead_payload_bits)
    for index in range(extra_bytes):
        shift -= 6
        writer.write(0b10, 2)
        writer.write((payload >> max(shift, 0)) & 0x3F, 6)


def encode_utf8_varint(writer: BitWriter, value: int) -> None:
    """Encode a non-negative integer in (generalised) UTF-8 framing."""
    if value < 0:
        raise ValueError(f"UTF-8 varints are non-negative, got {value}")
    payload_bits = max(1, value.bit_length())
    extra = _utf8_frame_for(payload_bits)
    # Frames beyond 6 continuation bytes follow the same lead-byte
    # pattern; 8+ ones would overflow the lead byte, so cap the value.
    if extra + 2 > 8:
        raise InvalidCodeError(
            f"value {value} too large for UTF-8 framing ({payload_bits} bits)"
        )
    _write_utf8_frame(writer, value, extra)


def decode_utf8_varint(reader: BitReader) -> int:
    """Decode one UTF-8-framed integer."""
    first = reader.read(1)
    if first == 0:
        return reader.read(7)
    ones = 1
    while reader.read(1) == 1:
        ones += 1
    extra = ones - 1  # lead byte holds (extra + 1) ones then a zero
    if extra == 0 or extra + 2 > 8:
        raise EncodingError("malformed UTF-8 lead byte in label stream")
    lead_payload_bits = 8 - (extra + 2)
    value = reader.read(lead_payload_bits)
    for _ in range(extra):
        marker = reader.read(2)
        if marker != 0b10:
            raise EncodingError("malformed UTF-8 continuation byte")
        value = (value << 6) | reader.read(6)
    return value


def _encode_cdbs_in_utf8(writer: BitWriter, code: BitString) -> None:
    """A CDBS code left-aligned in the smallest UTF-8 frame."""
    if not code.ends_with_one():
        raise InvalidCodeError(
            f"CDBS component {code.to01()!r} must end with '1'"
        )
    extra = _utf8_frame_for(len(code))
    capacity = _utf8_frame_capacity(extra)
    _write_utf8_frame(writer, code.pad_right(capacity).value, extra)


def _decode_cdbs_in_utf8(reader: BitReader) -> BitString:
    # Re-read the frame as a varint, then recover the alignment: the
    # original code occupies the frame's high bits and ends with '1',
    # so stripping trailing zeros of the full-capacity view is exact.
    start = reader.position
    value = decode_utf8_varint(reader)
    frame_bits = reader.position - start
    extra = frame_bits // 8 - 1
    capacity = _utf8_frame_capacity(extra)
    code = BitString(value, capacity).strip_trailing_zeros()
    if not code:
        raise EncodingError("empty CDBS component in label stream")
    return code


def encode_ordpath_component(writer: BitWriter, value: int) -> None:
    """Encode one careted-ordinal component with the Li/Oi table."""
    for low, high, li, oi in ORDPATH_BUCKETS:
        if low <= value <= high:
            writer.write_bits_text(li)
            writer.write(value - low, oi)
            return
    raise InvalidCodeError(f"ordinal component {value} outside Li/Oi buckets")


def decode_ordpath_component(reader: BitReader) -> int:
    prefix = ""
    by_prefix = {li: (low, oi) for low, _, li, oi in ORDPATH_BUCKETS}
    longest = max(len(li) for li in by_prefix)
    while len(prefix) <= longest:
        prefix += str(reader.read(1))
        if prefix in by_prefix:
            low, oi = by_prefix[prefix]
            return low + reader.read(oi)
    raise EncodingError(f"unknown OrdPath Li prefix {prefix!r}")


_QED_SYMBOLS = {"1": 0b01, "2": 0b10, "3": 0b11}
_QED_REVERSE = {v: k for k, v in _QED_SYMBOLS.items()}


def _encode_qed(writer: BitWriter, code: str) -> None:
    for symbol in code:
        writer.write(_QED_SYMBOLS[symbol], 2)
    writer.write(0b00, 2)  # the separator symbol


def _decode_qed(reader: BitReader) -> str:
    symbols: list[str] = []
    while True:
        raw = reader.read(2)
        if raw == 0b00:
            return "".join(symbols)
        symbols.append(_QED_REVERSE[raw])


def _encode_varbytes_int(writer: BitWriter, value: int) -> None:
    """Length-prefixed big integer: 8-bit byte count, then the bytes."""
    raw = value.to_bytes(max(1, (value.bit_length() + 7) // 8), "big")
    if len(raw) >= 1 << 8:
        raise InvalidCodeError("integer too large for the label stream")
    writer.write(len(raw), 8)
    for byte in raw:
        writer.write(byte, 8)


def _decode_varbytes_int(reader: BitReader) -> int:
    length = reader.read(8)
    value = 0
    for _ in range(length):
        value = (value << 8) | reader.read(8)
    return value


# ---------------------------------------------------------------------------
# Scheme-level codecs
# ---------------------------------------------------------------------------

class LabelStreamCodec:
    """Encodes/decodes one scheme's labels to/from a bit stream."""

    def __init__(
        self,
        write_label: Callable[[BitWriter, Any], None],
        read_label: Callable[[BitReader], Any],
    ) -> None:
        self._write_label = write_label
        self._read_label = read_label

    def encode(self, labels: list[Any]) -> bytes:
        writer = BitWriter()
        writer.write(len(labels), 32)
        for label in labels:
            self._write_label(writer, label)
        return writer.to_bytes()

    def decode(self, data: bytes) -> list[Any]:
        reader = BitReader(data)
        count = reader.read(32)
        return [self._read_label(reader) for _ in range(count)]


def _containment_codec(scheme: ContainmentScheme) -> LabelStreamCodec:
    codec = scheme.codec
    name = codec.name

    if name in ("v-binary", "gapped-integer"):
        field = codec._field_bits  # noqa: SLF001 - sibling module
        max_value_bits = (1 << field) - 1

        def write_value(writer: BitWriter, value: int) -> None:
            width = value.bit_length()
            if width > max_value_bits:
                raise InvalidCodeError(
                    f"value {value} exceeds the {field}-bit length field"
                )
            writer.write(width, field)
            writer.write(value, width)

        def read_value(reader: BitReader) -> int:
            return reader.read(reader.read(field))

    elif name == "f-binary":
        width = codec._width  # noqa: SLF001

        def write_value(writer: BitWriter, value: int) -> None:
            writer.write(value, width)

        def read_value(reader: BitReader) -> int:
            return reader.read(width)

    elif name == "float-point":

        def write_value(writer: BitWriter, value) -> None:
            (packed,) = struct.unpack(">I", struct.pack(">f", float(value)))
            writer.write(packed, 32)

        def read_value(reader: BitReader):
            (value,) = struct.unpack(">f", struct.pack(">I", reader.read(32)))
            return np.float32(value)

    elif name == "v-cdbs":
        # The length prefix stores ``len - 1`` in the *analytical* field
        # of Example 4.2 (codes are never empty), so a bulk-encoded
        # document streams in exactly ``total_label_bits()`` bits — the
        # figure the paper's Figure 5 accounting reports.  Dynamic
        # inserts legally mint codes longer than the analytical field
        # describes (up to ``VCDBSCodec.max_code_bits``, byte-aligned
        # >= 8 bits), and a WAL record or post-churn bundle must carry
        # them: the all-ones prefix escapes to an explicit 16-bit
        # length.  Bulk lengths peak at ``2**field - 1``, below the
        # escape, so static streams never pay for the slack; both sides
        # derive ``field`` from persisted codec state, so encode and
        # decode agree across a save/load cycle.
        field = codec._field_bits  # noqa: SLF001
        escape = (1 << field) - 1

        def write_value(writer: BitWriter, value: BitString) -> None:
            length = len(value)
            if length < 1:
                raise InvalidCodeError("V-CDBS codes are never empty")
            if length - 1 < escape:
                writer.write(length - 1, field)
            elif length >= (1 << 16):
                raise InvalidCodeError(
                    f"{length}-bit code exceeds the escaped length field"
                )
            else:
                writer.write(escape, field)
                writer.write(length, 16)
            writer.write_bitstring(value)

        def read_value(reader: BitReader) -> BitString:
            prefix = reader.read(field)
            length = reader.read(16) if prefix == escape else prefix + 1
            return reader.read_bitstring(length)

    elif name == "f-cdbs":
        width = codec.width

        def write_value(writer: BitWriter, value: BitString) -> None:
            writer.write_bitstring(value)

        def read_value(reader: BitReader) -> BitString:
            return reader.read_bitstring(width)

    elif name == "qed":
        write_value = _encode_qed
        read_value = _decode_qed

    else:
        raise KeyError(f"no stream framing for containment codec {name!r}")

    def write_label(writer: BitWriter, label: ContainmentLabel) -> None:
        write_value(writer, label.start)
        write_value(writer, label.end)
        if not 0 <= label.level < 256:
            raise InvalidCodeError(f"level {label.level} exceeds one byte")
        writer.write(label.level, 8)

    def read_label(reader: BitReader) -> ContainmentLabel:
        start = read_value(reader)
        end = read_value(reader)
        level = reader.read(8)
        label = ContainmentLabel(start, end, level)
        label.start_key = codec.key(start)
        label.end_key = codec.key(end)
        return label

    return LabelStreamCodec(write_label, read_label)


def _prefix_codec(scheme: PrefixScheme) -> LabelStreamCodec:
    name = scheme.policy.name

    if name == "dewey-utf8":

        def write_component(writer: BitWriter, component: int) -> None:
            encode_utf8_varint(writer, component)

        def read_component(reader: BitReader) -> int:
            return decode_utf8_varint(reader)

    elif name == "ordpath":
        # Careted ordinals are self-delimiting: even components are
        # caret glue, the first odd component ends the ordinal (exactly
        # how ORDPATH's decoder determines prefix levels).
        def write_component(writer: BitWriter, component: tuple) -> None:
            for value in component:
                encode_ordpath_component(writer, value)

        def read_component(reader: BitReader) -> tuple:
            values: list[int] = []
            while True:
                value = decode_ordpath_component(reader)
                values.append(value)
                if value % 2 != 0:
                    return tuple(values)

    elif name == "binary-string":

        def write_component(writer: BitWriter, component: str) -> None:
            writer.write_bits_text(component)

        def read_component(reader: BitReader) -> str:
            symbols = []
            while True:
                bit = reader.read(1)
                symbols.append(str(bit))
                if bit == 0:
                    return "".join(symbols)

    elif name == "cdbs":
        write_component = _encode_cdbs_in_utf8
        read_component = _decode_cdbs_in_utf8

    elif name == "qed":
        write_component = _encode_qed
        read_component = _decode_qed

    else:
        raise KeyError(f"no stream framing for prefix policy {name!r}")

    def write_label(writer: BitWriter, label: tuple) -> None:
        if len(label) >= 256:
            raise InvalidCodeError("label depth exceeds 255 levels")
        writer.write(len(label), 8)
        for component in label:
            write_component(writer, component)

    def read_label(reader: BitReader) -> tuple:
        depth = reader.read(8)
        return tuple(read_component(reader) for _ in range(depth))

    return LabelStreamCodec(write_label, read_label)


def _prime_codec(scheme: PrimeScheme) -> LabelStreamCodec:
    def write_label(writer: BitWriter, label: PrimeLabel) -> None:
        _encode_varbytes_int(writer, label.product)
        _encode_varbytes_int(writer, label.self_label)

    def read_label(reader: BitReader) -> PrimeLabel:
        product = _decode_varbytes_int(reader)
        self_label = _decode_varbytes_int(reader)
        return PrimeLabel(product, self_label)

    return LabelStreamCodec(write_label, read_label)


def make_label_codec(scheme) -> LabelStreamCodec:
    """The stream codec matching a labeling scheme instance."""
    if isinstance(scheme, ContainmentScheme):
        return _containment_codec(scheme)
    if isinstance(scheme, PrefixScheme):
        return _prefix_codec(scheme)
    if isinstance(scheme, PrimeScheme):
        return _prime_codec(scheme)
    raise KeyError(f"no stream codec for scheme {scheme!r}")


def encode_labels(labeled: LabeledDocument) -> bytes:
    """Serialize a labeled document's labels, in document order."""
    codec = make_label_codec(labeled.scheme)
    labels = [labeled.label_of(node) for node in labeled.nodes_in_order]
    return codec.encode(labels)


def decode_labels(scheme, data: bytes) -> list[Any]:
    """Parse a label stream produced by :func:`encode_labels`.

    The scheme must be configured as at encode time (same widths), i.e.
    typically the instance that produced the labels or a fresh one that
    has bulk-labeled an equal-sized document.

    Note for Prime: decoded labels carry no SC group (order metadata
    lives in the separate SC file), so they support ancestor/parent
    tests but not order keys until regrouped.
    """
    return make_label_codec(scheme).decode(data)
