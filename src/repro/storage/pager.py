"""A paged storage simulator with explicit I/O accounting.

Figure 7 of the paper measures *total* update time — "processing time +
I/O time" — and observes that for intermittent updates the I/O term
dominates, compressing the visible gap between OrdPath, Float-point and
CDBS (Section 7.3's closing remark).  To reproduce that decomposition on
a simulator we model label storage as fixed-size pages and charge a
calibratable cost per page read and write.

The model is deliberately simple (sequential record layout, no caching
across operations) because the experiment only needs the page-touch
*counts* to be faithful: a dynamic insert touches the one page holding
the neighbourhood of the new label, while a re-label of K nodes dirties
every page across K contiguous records.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IOCostModel", "PageCounter", "PageStore", "BufferPool"]

DEFAULT_PAGE_BYTES = 4096


@dataclass(frozen=True)
class IOCostModel:
    """Seconds charged per page operation.

    Defaults approximate the paper's 2005-era commodity disk: ~8 ms per
    random page read or write (seek + rotational delay dominate at 4 KiB).
    """

    read_seconds: float = 0.008
    write_seconds: float = 0.008

    def cost(self, reads: int, writes: int) -> float:
        return reads * self.read_seconds + writes * self.write_seconds


@dataclass
class PageCounter:
    """Tallies of page operations."""

    reads: int = 0
    writes: int = 0

    def merge(self, other: "PageCounter") -> "PageCounter":
        return PageCounter(self.reads + other.reads, self.writes + other.writes)


class PageStore:
    """Pages of fixed size holding variable-size records in sequence.

    Records (labels) are addressed by ordinal; the store maintains the
    byte offset of each record so it can answer "which pages does record
    range [i, j) occupy?".  All mutation paths count page reads (the
    page must be fetched to modify it) and writes.
    """

    def __init__(
        self,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        *,
        buffer_pool: "BufferPool | None" = None,
    ) -> None:
        if page_bytes <= 0:
            raise ValueError(f"page size must be positive, got {page_bytes}")
        self.page_bytes = page_bytes
        self.counter = PageCounter()
        self.buffer_pool = buffer_pool
        self._offsets: list[int] = [0]  # prefix sums of record sizes

    # -- layout ------------------------------------------------------------

    def load_records(self, sizes_bytes: list[int]) -> None:
        """Lay out records sequentially; counts the initial bulk write."""
        offsets = [0]
        total = 0
        for size in sizes_bytes:
            if size < 0:
                raise ValueError(f"record size must be non-negative: {size}")
            total += size
            offsets.append(total)
        self._offsets = offsets
        self.counter.writes += self.page_count()

    def record_count(self) -> int:
        return len(self._offsets) - 1

    def total_bytes(self) -> int:
        return self._offsets[-1]

    def page_count(self) -> int:
        return -(-self._offsets[-1] // self.page_bytes) if self._offsets[-1] else 0

    def pages_of_range(self, first_record: int, last_record: int) -> int:
        """Distinct pages occupied by records ``[first, last]`` inclusive."""
        if self.record_count() == 0:
            return 0
        first_record = max(0, min(first_record, self.record_count() - 1))
        last_record = max(first_record, min(last_record, self.record_count() - 1))
        first_page = self._offsets[first_record] // self.page_bytes
        end_byte = max(self._offsets[last_record + 1] - 1, self._offsets[first_record])
        last_page = end_byte // self.page_bytes
        return last_page - first_page + 1

    # -- mutation accounting ---------------------------------------------------

    def _page_span(self, first_record: int, last_record: int) -> range:
        if self.record_count() == 0:
            return range(0)
        first_record = max(0, min(first_record, self.record_count() - 1))
        last_record = max(first_record, min(last_record, self.record_count() - 1))
        first_page = self._offsets[first_record] // self.page_bytes
        end_byte = max(
            self._offsets[last_record + 1] - 1, self._offsets[first_record]
        )
        return range(first_page, end_byte // self.page_bytes + 1)

    def touch_range(self, first_record: int, last_record: int) -> int:
        """Read-modify-write the pages covering a record range.

        With a buffer pool attached, reads that hit the pool are free;
        writes always reach storage (write-through).
        """
        span = self._page_span(first_record, last_record)
        pages = len(span)
        if self.buffer_pool is None:
            self.counter.reads += pages
        else:
            for page_id in span:
                if not self.buffer_pool.access(page_id):
                    self.counter.reads += 1
        self.counter.writes += pages
        return pages

    def splice(
        self, position: int, new_sizes: list[int], removed: int = 0
    ) -> int:
        """Insert/remove records at ``position``; returns pages touched.

        Models a slotted-page layout: the insertion lands in the page(s)
        already holding that neighbourhood (splitting locally when the
        records outgrow them), so a *dynamic* label insert costs one or
        two page I/Os — while a re-label storm, driven through
        :meth:`touch_range`, pays for every page its records span.  This
        is the asymmetry behind Figure 7.
        """
        if not 0 <= position <= self.record_count():
            raise ValueError(
                f"position {position} out of range 0..{self.record_count()}"
            )
        if removed < 0 or position + removed > self.record_count():
            raise ValueError("removed range exceeds the stored records")
        head = self._offsets[: position + 1]
        tail_sizes = [
            self._offsets[i + 1] - self._offsets[i]
            for i in range(position + removed, self.record_count())
        ]
        offsets = head
        total = head[-1]
        for size in new_sizes + tail_sizes:
            total += size
            offsets.append(total)
        anchor_page = head[-1] // self.page_bytes if head[-1] else 0
        self._offsets = offsets
        if not new_sizes and not removed:
            return 0
        # Local cost: the page holding the neighbourhood plus any pages
        # the new records themselves span.
        new_bytes = sum(new_sizes)
        pages = 1 + new_bytes // self.page_bytes
        if self.buffer_pool is None:
            self.counter.reads += pages
        else:
            for page_id in range(anchor_page, anchor_page + pages):
                if not self.buffer_pool.access(page_id):
                    self.counter.reads += 1
        self.counter.writes += pages
        return pages

    def overwrite(self, record: int) -> int:
        """Rewrite one record in place (same size); returns pages touched."""
        return self.touch_range(record, record)


class BufferPool:
    """An LRU page cache with hit/miss accounting.

    Purely optional: experiments reproduce the paper's cold-cache
    behaviour without one, but a real deployment fronts the label file
    with a buffer pool, and the update workloads' locality (skew!) makes
    its hit ratio interesting.  Write-through: writes always reach the
    page store; reads that hit the pool cost nothing.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._pages: dict[int, None] = {}  # insertion-ordered LRU

    def access(self, page_id: int) -> bool:
        """Touch a page; returns True on a cache hit."""
        if page_id in self._pages:
            self._pages.pop(page_id)
            self._pages[page_id] = None
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page_id] = None
        if len(self._pages) > self.capacity:
            self._pages.pop(next(iter(self._pages)))
        return False

    def invalidate(self, page_id: int) -> None:
        self._pages.pop(page_id, None)

    def clear(self) -> None:
        self._pages.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
