"""A paged storage simulator with explicit I/O accounting.

Figure 7 of the paper measures *total* update time — "processing time +
I/O time" — and observes that for intermittent updates the I/O term
dominates, compressing the visible gap between OrdPath, Float-point and
CDBS (Section 7.3's closing remark).  To reproduce that decomposition on
a simulator we model label storage as fixed-size pages and charge a
calibratable cost per page read and write.

The model is deliberately simple (sequential record layout, write-through
caching) because the experiment only needs the page-touch *counts* to be
faithful: a dynamic insert touches the one page holding the neighbourhood
of the new label, while a re-label of K nodes dirties every page across K
contiguous records.

Record byte offsets live in an :class:`~repro.core.orderindex.OrderStatisticTree`
keyed by record ordinal with record sizes as weights, so a splice —
which shifts every later ordinal — is O(log N) instead of the
rebuild-the-whole-prefix-sum-array it used to cost, and offset lookups
stay O(log N).  That keeps the simulator's own bookkeeping off the
update path it is supposed to be measuring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.orderindex import OrderStatisticTree
from repro.errors import TransientFault
from repro.faults import DEFAULT_RETRY_POLICY, FAULTS, RetryPolicy
from repro.obs import OBS

__all__ = ["IOCostModel", "PageCounter", "PageStore", "BufferPool"]

DEFAULT_PAGE_BYTES = 4096


@dataclass(frozen=True)
class IOCostModel:
    """Seconds charged per page operation.

    Defaults approximate the paper's 2005-era commodity disk: ~8 ms per
    random page read or write (seek + rotational delay dominate at 4 KiB).
    """

    read_seconds: float = 0.008
    write_seconds: float = 0.008

    def cost(self, reads: int, writes: int) -> float:
        return reads * self.read_seconds + writes * self.write_seconds


@dataclass
class PageCounter:
    """Tallies of page operations."""

    reads: int = 0
    writes: int = 0

    def merge(self, other: "PageCounter") -> "PageCounter":
        return PageCounter(self.reads + other.reads, self.writes + other.writes)


class PageStore:
    """Pages of fixed size holding variable-size records in sequence.

    Records (labels) are addressed by ordinal; the store maintains the
    byte offset of each record so it can answer "which pages does record
    range [i, j) occupy?".  All mutation paths count page reads (the
    page must be fetched to modify it) and writes.

    Args:
        page_bytes: page size of the simulated device.
        buffer_pool: optional shared LRU pool fronting reads.
        namespace: distinguishes this store's pages in a *shared*
            buffer pool.  Two stores both number pages from 0, so
            without a namespace their page 0s alias and every cross-file
            read counts as a bogus cache hit.
    """

    def __init__(
        self,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        *,
        buffer_pool: "BufferPool | None" = None,
        namespace: str = "",
        retry: RetryPolicy | None = None,
    ) -> None:
        if page_bytes <= 0:
            raise ValueError(f"page size must be positive, got {page_bytes}")
        self.page_bytes = page_bytes
        self.counter = PageCounter()
        self.buffer_pool = buffer_pool
        self.namespace = namespace
        self.retry = DEFAULT_RETRY_POLICY if retry is None else retry
        #: Modeled seconds spent in retry backoff (never slept — RPR006).
        #: Monotone like the fault/retry counters: it records attempted
        #: work, so rollback deliberately leaves it alone.
        self.retry_backoff_seconds = 0.0
        #: Duck-typed transaction hook, bound by
        #: :class:`repro.updates.txn.Transaction` via the owning
        #: :meth:`LabelStore.bind_undo`; ``None`` means log-free.
        self.undo_log: Any = None
        self._records = OrderStatisticTree()  # weights = record sizes

    # -- layout ------------------------------------------------------------

    def load_records(self, sizes_bytes: list[int]) -> None:
        """Lay out records sequentially; counts the initial bulk write."""
        for size in sizes_bytes:
            if size < 0:
                raise ValueError(f"record size must be non-negative: {size}")
        log = self.undo_log
        if log is not None:
            old_records = self._records
            counters_undo = self._counters_undo()

            def undo_load() -> None:
                self._records = old_records
                counters_undo()

            log.record(undo_load)
        self._records = OrderStatisticTree(sizes_bytes, weights=sizes_bytes)
        pages = self.page_count()
        self.counter.writes += pages
        self._write_pages(pages)
        if OBS.enabled:
            OBS.charge("pager.pages_written", pages)

    def record_count(self) -> int:
        return len(self._records)

    def record_sizes(self) -> list[int]:
        """Every record's byte size in storage order.

        The integrity verifier recomputes offsets from these and checks
        they agree with :meth:`total_bytes`; callers must treat the list
        as a copy.
        """
        return list(self._records)

    def total_bytes(self) -> int:
        return self._records.total_weight()

    def page_count(self) -> int:
        total = self.total_bytes()
        return -(-total // self.page_bytes) if total else 0

    def _offset(self, record: int) -> int:
        """Byte offset where record ``record`` begins — O(log N)."""
        return self._records.prefix_weight(record)

    def pages_of_range(self, first_record: int, last_record: int) -> int:
        """Distinct pages occupied by records ``[first, last]`` inclusive."""
        return len(self._page_span(first_record, last_record))

    # -- mutation accounting ---------------------------------------------------

    def _page_span(self, first_record: int, last_record: int) -> range:
        if self.record_count() == 0:
            return range(0)
        first_record = max(0, min(first_record, self.record_count() - 1))
        last_record = max(first_record, min(last_record, self.record_count() - 1))
        first_byte = self._offset(first_record)
        first_page = first_byte // self.page_bytes
        end_byte = max(self._offset(last_record + 1) - 1, first_byte)
        return range(first_page, end_byte // self.page_bytes + 1)

    def _pool_key(self, page_id: int) -> tuple[str, int]:
        return (self.namespace, page_id)

    def _counters_undo(self) -> Callable[[], None]:
        """A closure restoring the counters (and pool) to right now.

        The buffer pool snapshot is bounded by the pool's capacity, so
        the capture stays O(cache pages), not O(document).
        """
        reads, writes = self.counter.reads, self.counter.writes
        pool = self.buffer_pool
        pool_state = None if pool is None else pool.state_snapshot()

        def undo() -> None:
            self.counter.reads = reads
            self.counter.writes = writes
            if pool_state is not None:
                pool.restore(pool_state)

        return undo

    def _write_pages(self, pages: int) -> None:
        """The page-write fault point: every write path funnels through here.

        With nothing armed this is one attribute check.  A
        :class:`TransientFault` is retried up to the policy bound,
        accumulating *modeled* backoff seconds (never slept — RPR006);
        a persistent fault propagates to the enclosing transaction on
        the first raise.
        """
        if not FAULTS.enabled:
            return
        attempt = 1
        while True:
            try:
                FAULTS.hit("pager.page_write", count=pages)
                return
            except TransientFault:
                if attempt >= self.retry.max_attempts:
                    raise
                self.retry_backoff_seconds += self.retry.backoff_seconds(
                    attempt
                )
                attempt += 1
                OBS.inc("retry.attempts")

    def charge_reads(self, pages: int) -> None:
        """Count ``pages`` pure page reads (no write, no pool traffic).

        The undoable replacement for callers reaching into
        ``counter.reads`` directly (e.g. the label store's SC-page
        accounting), so a rollback reconciles these too.
        """
        if pages <= 0:
            return
        log = self.undo_log
        if log is not None:
            log.record(self._counters_undo())
        self.counter.reads += pages
        if OBS.enabled:
            OBS.charge("pager.pages_read", pages)

    def touch_range(self, first_record: int, last_record: int) -> int:
        """Read-modify-write the pages covering a record range.

        With a buffer pool attached, reads that hit the pool are free;
        writes always reach storage (write-through).
        """
        span = self._page_span(first_record, last_record)
        pages = len(span)
        log = self.undo_log
        if log is not None:
            log.record(self._counters_undo())
        if self.buffer_pool is None:
            reads = pages
        else:
            reads = 0
            for page_id in span:
                if not self.buffer_pool.access(self._pool_key(page_id)):
                    reads += 1
        self.counter.reads += reads
        self.counter.writes += pages
        # Fault point last: a fault here leaves the counters and pool
        # already mutated, which is exactly what the undo must unwind.
        self._write_pages(pages)
        if OBS.enabled:
            OBS.charge("pager.pages_read", reads)
            OBS.charge("pager.pages_written", pages)
        return pages

    def splice(
        self, position: int, new_sizes: list[int], removed: int = 0
    ) -> int:
        """Insert/remove records at ``position``; returns pages touched.

        Models a slotted-page layout: the insertion lands in the page(s)
        already holding that neighbourhood (splitting locally when the
        records outgrow them), so a *dynamic* label insert costs one or
        two page I/Os — while a re-label storm, driven through
        :meth:`touch_range`, pays for every page its records span.  This
        is the asymmetry behind Figure 7.

        Every page past the ones this splice rewrites now holds shifted
        records, so those pool entries are dropped: a later
        :meth:`touch_range` over them must re-read, not count phantom
        hits on contents that moved.
        """
        if not 0 <= position <= self.record_count():
            raise ValueError(
                f"position {position} out of range 0..{self.record_count()}"
            )
        if removed < 0 or position + removed > self.record_count():
            raise ValueError("removed range exceeds the stored records")
        for size in new_sizes:
            if size < 0:
                raise ValueError(f"record size must be non-negative: {size}")
        anchor_page = self._offset(position) // self.page_bytes
        log = self.undo_log
        if log is not None and (new_sizes or removed):
            # Items ARE the record sizes, so slicing the treap before the
            # delete captures everything the inverse splice needs.
            removed_sizes = (
                list(self._records[position : position + removed])
                if removed
                else []
            )
            counters_undo = self._counters_undo()

            def undo_splice() -> None:
                if new_sizes:
                    self._records.delete_run(position, len(new_sizes))
                if removed_sizes:
                    self._records.insert_run(
                        position, removed_sizes, weights=removed_sizes
                    )
                counters_undo()

            log.record(undo_splice)
        if removed:
            self._records.delete_run(position, removed)
        if new_sizes:
            self._records.insert_run(position, new_sizes, weights=new_sizes)
        if not new_sizes and not removed:
            return 0
        # Local cost: the page holding the neighbourhood plus any pages
        # the new records themselves span.
        new_bytes = sum(new_sizes)
        pages = 1 + new_bytes // self.page_bytes
        dropped = 0
        if self.buffer_pool is None:
            reads = pages
        else:
            reads = 0
            for page_id in range(anchor_page, anchor_page + pages):
                if not self.buffer_pool.access(self._pool_key(page_id)):
                    reads += 1
            # The rewritten pages went through the pool (their frames
            # now match storage); everything after them shifted.
            dropped = self.buffer_pool.invalidate_from(
                self.namespace, anchor_page + pages
            )
        self.counter.reads += reads
        self.counter.writes += pages
        # Fault point after the treap splice and pool invalidation so an
        # injected write failure exercises the full inverse.
        self._write_pages(pages)
        if OBS.enabled:
            OBS.charge("pager.pages_read", reads)
            OBS.charge("pager.pages_written", pages)
            OBS.charge("pager.pages_invalidated", dropped)
        return pages

    def overwrite(self, record: int) -> int:
        """Rewrite one record in place (same size); returns pages touched."""
        return self.touch_range(record, record)


class BufferPool:
    """An LRU page cache with hit/miss accounting.

    Purely optional: experiments reproduce the paper's cold-cache
    behaviour without one, but a real deployment fronts the label file
    with a buffer pool, and the update workloads' locality (skew!) makes
    its hit ratio interesting.  Write-through: writes always reach the
    page store; reads that hit the pool cost nothing.

    Page keys are opaque hashables.  :class:`PageStore` keys its pages
    as ``(namespace, page_id)`` tuples so several stores can share one
    pool without their page numbers aliasing.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._pages: dict[object, None] = {}  # insertion-ordered LRU

    def access(self, page_id: object) -> bool:
        """Touch a page; returns True on a cache hit."""
        if page_id in self._pages:
            self._pages.pop(page_id)
            self._pages[page_id] = None
            self.hits += 1
            if OBS.enabled:
                OBS.charge("pager.pool_hits", 1)
            return True
        self.misses += 1
        if OBS.enabled:
            OBS.charge("pager.pool_misses", 1)
        self._pages[page_id] = None
        if len(self._pages) > self.capacity:
            self._pages.pop(next(iter(self._pages)))
        return False

    def invalidate(self, page_id: object) -> None:
        self._pages.pop(page_id, None)

    def state_snapshot(self) -> tuple[dict, int, int]:
        """Copy of the LRU contents (with order) and the hit/miss tallies."""
        return (dict(self._pages), self.hits, self.misses)

    def restore(self, state: tuple[dict, int, int]) -> None:
        """Return the pool to a :meth:`state_snapshot` capture."""
        pages, hits, misses = state
        self._pages = dict(pages)
        self.hits = hits
        self.misses = misses

    def invalidate_from(self, namespace: str, first_page: int) -> int:
        """Drop every cached page of ``namespace`` numbered >= ``first_page``.

        Called after a splice shifts records: those frames describe
        pre-shift contents, and counting hits on them inflates the hit
        ratio with reads the device never saw.  Returns pages dropped.
        Keys that are not ``(namespace, page_id)`` tuples (e.g. pages
        cached directly by tests) are left alone.
        """
        stale = [
            key
            for key in self._pages
            if isinstance(key, tuple)
            and len(key) == 2
            and key[0] == namespace
            and key[1] >= first_page
        ]
        for key in stale:
            del self._pages[key]
        return len(stale)

    def clear(self) -> None:
        self._pages.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
