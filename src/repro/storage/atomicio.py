"""Atomic file replacement for durable artifacts (bundles, WAL truncation).

Every on-disk artifact the library owns — labelfile bundles, WAL
checkpoint files, the truncated log — must never be observable in a
half-written state: a crash mid-write would otherwise leave a short
file whose corruption only the CRC catches *after* the good copy is
gone.  :func:`atomic_write_bytes` gives the standard POSIX recipe:
write a sibling temp file, flush + fsync it, then ``os.replace`` over
the destination (atomic on the same filesystem).

Rule RPR008 bans naked ``open(path, "w"/"wb")`` / ``write_bytes`` calls
in ``repro.storage`` and ``repro.wal``; this module is the one
sanctioned exemption (see ``repro.analysis.layers``).
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_bytes"]


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> int:
    """Durably replace ``path``'s contents with ``data``; returns len(data).

    The write goes to ``<path>.tmp`` in the same directory, is fsync'd,
    and is then renamed over ``path`` — so a reader (or a recovery pass)
    only ever sees the complete old file or the complete new one.  On
    failure the temp file is removed and the destination is untouched.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            # Cleanup is best-effort: the original failure matters more
            # than a stray .tmp file.
            pass
        raise
    _fsync_directory(path.parent)
    return len(data)


def _fsync_directory(directory: Path) -> None:
    """Persist the rename itself (the directory entry), where supported."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        # Some filesystems refuse fsync on directories; the rename is
        # still atomic, just not yet journalled.
        pass
    finally:
        os.close(fd)
