"""Core encodings: the paper's primary contribution.

* :mod:`repro.core.bitstring` — lexicographically ordered binary strings
  (Definition 3.1).
* :mod:`repro.core.middle` — Algorithm 1, ``AssignMiddleBinaryString``
  (Theorem 3.1, Corollary 3.3).
* :mod:`repro.core.cdbs` — Algorithm 2, the V-CDBS / F-CDBS encodings
  (Section 4) plus the V-Binary / F-Binary baselines.
* :mod:`repro.core.qed` — the quaternary QED encoding (Section 6), which
  completely avoids re-labeling.
* :mod:`repro.core.sizes` — the Section 4.2 size analysis.
* :mod:`repro.core.orderkeys` — Property 5.1 as a reusable order-key API.
* :mod:`repro.core.orderindex` — O(log N) dynamic order-statistic
  sequence (document-order ranks, positional splices, weight prefix
  sums) backing the update hot path.
"""

from repro.core.bitstring import EMPTY, BitString
from repro.core.cdbs import (
    fbinary_encode,
    fcdbs_encode,
    max_code_bits,
    vbinary_encode,
    vcdbs_encode,
    vcdbs_position,
)
from repro.core.middle import (
    assign_middle_binary_string,
    assign_middle_pair,
    assign_middle_run,
)
from repro.core.orderindex import OrderStatisticTree
from repro.core.orderkeys import OrderKey, OrderKeyFactory
from repro.core.qed import (
    assign_middle_quaternary,
    assign_quaternary_pair,
    qed_code_bits,
    qed_encode,
    qed_stored_bits,
    validate_qed_code,
)

__all__ = [
    "BitString",
    "EMPTY",
    "assign_middle_binary_string",
    "assign_middle_pair",
    "assign_middle_run",
    "vcdbs_encode",
    "fcdbs_encode",
    "vbinary_encode",
    "fbinary_encode",
    "vcdbs_position",
    "max_code_bits",
    "assign_middle_quaternary",
    "assign_quaternary_pair",
    "qed_encode",
    "qed_code_bits",
    "qed_stored_bits",
    "validate_qed_code",
    "OrderKey",
    "OrderKeyFactory",
    "OrderStatisticTree",
]
