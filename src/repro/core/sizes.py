"""Section 4.2 of the paper: closed-form size analysis of the encodings.

The paper derives, for ``N`` codes (logs base 2, ceilings omitted in the
paper "for simplicity" — we expose both the paper's smooth formulas and
exact integer counts):

* formula (1)/(2): raw V-Binary (= raw V-CDBS) code bits,
  ``N·log(N+1) − N + log(N+1)``;
* formula (3): V-Binary/V-CDBS total including per-code length fields,
  ``N·log(N+1) + N·log(log(N)) − N + log(N+1)``;
* formula (4)/(5): F-Binary (= F-CDBS) total,
  ``N·log(N) + log(log(N))``.

These back Theorem 4.4 ("V-CDBS and F-CDBS are the most compact variable
and fixed length binary string encodings which support updates
efficiently") and experiment **E2** checks formula-vs-measured agreement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.bitstring import BitString

__all__ = [
    "length_field_bits",
    "vbinary_raw_bits_formula",
    "vbinary_total_bits_formula",
    "fbinary_total_bits_formula",
    "vbinary_raw_bits_exact",
    "vcdbs_raw_bits_exact",
    "length_field_total_bits_exact",
    "fbinary_total_bits_exact",
    "measured_total_bits",
    "SizeReport",
]


def length_field_bits(count: int) -> int:
    """Width of the per-code length field for ``count`` variable codes.

    The longest code among ``1..count`` is ``ceil(log2(count+1))`` bits
    (e.g. 5 bits for N=18), and storing that length takes
    ``ceil(log2(maxlen + 1))`` bits — 3 bits in the paper's Example 4.2.
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    max_len = count.bit_length()
    return max(1, (max_len).bit_length())


def vbinary_raw_bits_formula(count: int) -> float:
    """Formula (2): raw code bits of V-Binary (and V-CDBS)."""
    n = float(count)
    return n * math.log2(n + 1) - n + math.log2(n + 1)


def vbinary_total_bits_formula(count: int) -> float:
    """Formula (3): V-Binary/V-CDBS total bits including length fields."""
    n = float(count)
    return (
        n * math.log2(n + 1)
        + n * math.log2(math.log2(n))
        - n
        + math.log2(n + 1)
    )


def fbinary_total_bits_formula(count: int) -> float:
    """Formula (5): F-Binary/F-CDBS total bits (one global length value)."""
    n = float(count)
    return n * math.log2(n) + math.log2(math.log2(n))


def vbinary_raw_bits_exact(count: int) -> int:
    """Exact raw bits of V-Binary for ``1..count``.

    ``sum(bit_length(i) for i in 1..count)`` — formula (1) evaluates this
    in closed form when ``count`` is one less than a power of two (the
    paper's ``N = 2^(n+1) − 1`` assumption).
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    total = 0
    width = 1
    remaining = count
    block = 1  # how many integers have bit_length == width
    while remaining > 0:
        take = min(block, remaining)
        total += take * width
        remaining -= take
        width += 1
        block *= 2
    return total


def vcdbs_raw_bits_exact(count: int) -> int:
    """Exact raw bits of V-CDBS for ``1..count``.

    Equal to :func:`vbinary_raw_bits_exact` by Theorem 4.4; kept as a
    distinct name so experiment code states what it means to measure.
    """
    return vbinary_raw_bits_exact(count)


def length_field_total_bits_exact(count: int) -> int:
    """Exact bits spent on per-code length fields for ``count`` codes."""
    return count * length_field_bits(count)


def fbinary_total_bits_exact(count: int) -> int:
    """Exact F-Binary/F-CDBS total: fixed width codes + one stored width."""
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    width = count.bit_length()
    return count * width + max(1, width.bit_length())


def measured_total_bits(
    codes: Sequence[BitString], *, with_length_field: bool
) -> int:
    """Total storage bits of concrete codes.

    With ``with_length_field=True`` every code pays the fixed-width
    length field sized for this code population (Example 4.2); without
    it, only raw code bits are summed.
    """
    raw = sum(len(code) for code in codes)
    if not with_length_field or not codes:
        return raw
    max_len = max(len(code) for code in codes)
    field = max(1, max_len.bit_length())
    return raw + field * len(codes)


@dataclass(frozen=True)
class SizeReport:
    """Formula-vs-measured totals for one population size (experiment E2)."""

    count: int
    vbinary_raw_exact: int
    vcdbs_raw_measured: int
    vbinary_total_exact: int
    fbinary_total_exact: int
    vbinary_raw_formula: float
    vbinary_total_formula: float
    fbinary_total_formula: float

    @classmethod
    def for_count(cls, count: int) -> "SizeReport":
        from repro.core.cdbs import vcdbs_encode

        codes = vcdbs_encode(count)
        return cls(
            count=count,
            vbinary_raw_exact=vbinary_raw_bits_exact(count),
            vcdbs_raw_measured=measured_total_bits(
                codes, with_length_field=False
            ),
            vbinary_total_exact=(
                vbinary_raw_bits_exact(count)
                + length_field_total_bits_exact(count)
            ),
            fbinary_total_exact=fbinary_total_bits_exact(count),
            vbinary_raw_formula=vbinary_raw_bits_formula(count),
            vbinary_total_formula=vbinary_total_bits_formula(count),
            fbinary_total_formula=fbinary_total_bits_formula(count),
        )
