"""High-level order keys — the paper's Property 5.1 as a public API.

Property 5.1 states that CDBS "is orthogonal to specific labeling
schemes, thus it can be applied broadly to different labeling schemes
*or other applications* which need to maintain the order in updates".
This module is that "other applications" surface: a fractional-indexing
style factory that mints totally ordered keys supporting insertion
before, after, or between existing keys — without ever rewriting a key.

Two backends:

* ``"cdbs"`` — binary CDBS codes (Section 4).  Most compact; models the
  fixed-width length field of a real store, so a long run of skewed
  insertions eventually raises :class:`~repro.errors.LengthFieldOverflow`
  (the Section 6 overflow problem) and the caller must re-key.
* ``"qed"`` — quaternary QED codes (Section 6).  ~26% larger keys but
  *never* overflows: the factory can absorb unbounded skewed insertions.

Example::

    >>> factory = OrderKeyFactory("cdbs")
    >>> a, b, c = factory.initial(3)
    >>> mid = factory.between(a, b)
    >>> a < mid < b < c
    True
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Optional

from repro.core.bitstring import EMPTY, BitString
from repro.core.cdbs import vcdbs_encode
from repro.core.middle import assign_middle_binary_string
from repro.core.qed import (
    assign_middle_quaternary,
    qed_code_bits,
    qed_encode,
    validate_qed_code,
)
from repro.errors import InvalidCodeError, LengthFieldOverflow

__all__ = ["OrderKey", "OrderKeyFactory"]


@total_ordering
class OrderKey:
    """An opaque, totally ordered key minted by :class:`OrderKeyFactory`.

    Keys compare only against keys from the same backend; ordering is the
    backend's lexicographical order.  Keys are hashable and printable —
    ``str(key)`` is the raw code, suitable for persisting in any store
    that can compare strings bytewise (the usual fractional-indexing
    deployment).
    """

    __slots__ = ("_backend", "_code")

    def __init__(self, backend: str, code: object) -> None:
        self._backend = backend
        self._code = code

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def code(self) -> object:
        """The raw backend code (a BitString for cdbs, a str for qed)."""
        return self._code

    @property
    def storage_bits(self) -> int:
        """Bits this key occupies in storage (excluding length fields)."""
        if self._backend == "cdbs":
            return len(self._code)  # type: ignore[arg-type]
        return qed_code_bits(self._code)  # type: ignore[arg-type]

    def _check_peer(self, other: object) -> "OrderKey":
        if not isinstance(other, OrderKey):
            raise TypeError(f"cannot compare OrderKey with {type(other).__name__}")
        if other._backend != self._backend:
            raise TypeError(
                f"cannot compare keys from different backends: "
                f"{self._backend!r} vs {other._backend!r}"
            )
        return other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrderKey):
            return NotImplemented
        return self._backend == other._backend and self._code == other._code

    def __lt__(self, other: object) -> bool:
        peer = self._check_peer(other)
        return self._code < peer._code  # type: ignore[operator]

    def __hash__(self) -> int:
        return hash((self._backend, self._code))

    def __str__(self) -> str:
        if self._backend == "cdbs":
            return self._code.to01()  # type: ignore[union-attr]
        return str(self._code)

    def __repr__(self) -> str:
        return f"OrderKey({self._backend!r}, {str(self)!r})"


class OrderKeyFactory:
    """Mints :class:`OrderKey` values for one backend.

    Args:
        backend: ``"cdbs"`` (compact, can overflow under skew) or
            ``"qed"`` (never overflows).
        max_code_bits: for the cdbs backend, the largest code length the
            simulated length field can describe; ``between`` raises
            :class:`LengthFieldOverflow` past it.  ``None`` disables the
            limit (an idealised CDBS with unbounded length fields).
    """

    def __init__(self, backend: str = "cdbs", *, max_code_bits: int | None = 64):
        if backend not in ("cdbs", "qed"):
            raise ValueError(f"unknown backend {backend!r}; use 'cdbs' or 'qed'")
        self._backend = backend
        self._max_code_bits = max_code_bits if backend == "cdbs" else None

    @property
    def backend(self) -> str:
        return self._backend

    # -- key creation ----------------------------------------------------

    def initial(self, count: int) -> list[OrderKey]:
        """Bulk-mint ``count`` evenly spread keys (Algorithm 2 / QED bulk)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        if self._backend == "cdbs":
            return [self._wrap(code) for code in vcdbs_encode(count)]
        return [self._wrap(code) for code in qed_encode(count)]

    def between(
        self, left: Optional[OrderKey], right: Optional[OrderKey]
    ) -> OrderKey:
        """A fresh key strictly between two existing keys.

        ``None`` on either side means "no bound": ``between(None, k)``
        mints a key before ``k``, ``between(k, None)`` after ``k``, and
        ``between(None, None)`` the very first key.
        """
        left_code = self._unwrap(left)
        right_code = self._unwrap(right)
        if self._backend == "cdbs":
            code = assign_middle_binary_string(left_code, right_code)
            if (
                self._max_code_bits is not None
                and len(code) > self._max_code_bits
            ):
                raise LengthFieldOverflow(len(code), self._max_code_bits)
            return self._wrap(code)
        return self._wrap(assign_middle_quaternary(left_code, right_code))

    def before(self, key: OrderKey) -> OrderKey:
        """A fresh key ordered immediately before ``key``."""
        return self.between(None, key)

    def after(self, key: OrderKey) -> OrderKey:
        """A fresh key ordered immediately after ``key``."""
        return self.between(key, None)

    def run_between(
        self,
        left: Optional[OrderKey],
        right: Optional[OrderKey],
        count: int,
    ) -> list[OrderKey]:
        """``count`` fresh ordered keys in one gap, balanced bisection.

        Preferable to chained :meth:`between` calls when inserting a run:
        keys grow by O(log count) bits instead of O(count).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        keys: list[OrderKey] = []
        slots: list[tuple[Optional[OrderKey], Optional[OrderKey], int]] = [
            (left, right, count)
        ]
        out: dict[int, OrderKey] = {}

        def fill(lo_key, hi_key, offset, size) -> None:
            if size <= 0:
                return
            mid_off = (size + 1) // 2  # 1-based position within the run
            mid = self.between(lo_key, hi_key)
            out[offset + mid_off] = mid
            fill(lo_key, mid, offset, mid_off - 1)
            fill(mid, hi_key, offset + mid_off, size - mid_off)

        fill(left, right, 0, count)
        return [out[i] for i in range(1, count + 1)]

    def parse(self, text: str) -> OrderKey:
        """Re-create a key from its :func:`str` form (for persistence)."""
        if self._backend == "cdbs":
            code = BitString.from_str(text)
            if not code.ends_with_one():
                raise InvalidCodeError(
                    f"{text!r} is not a CDBS key (must end with '1')"
                )
            return self._wrap(code)
        validate_qed_code(text)
        return self._wrap(text)

    # -- internals ---------------------------------------------------------

    def _wrap(self, code: object) -> OrderKey:
        return OrderKey(self._backend, code)

    def _unwrap(self, key: Optional[OrderKey]):
        if key is None:
            return EMPTY if self._backend == "cdbs" else ""
        if not isinstance(key, OrderKey):
            raise TypeError(f"expected OrderKey or None, got {type(key).__name__}")
        if key.backend != self._backend:
            raise TypeError(
                f"key from backend {key.backend!r} handed to a "
                f"{self._backend!r} factory"
            )
        return key.code

    def validate_sorted(self, keys: Iterable[OrderKey]) -> bool:
        """True iff the given keys are strictly increasing."""
        previous: Optional[OrderKey] = None
        for key in keys:
            if previous is not None and not previous < key:
                return False
            previous = key
        return True
