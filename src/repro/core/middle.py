"""Algorithm 1 of the paper: ``AssignMiddleBinaryString``.

This is the *first foundation* of the paper (Theorem 3.1): given two
binary strings ``S_L ≺ S_R``, both ending with ``1`` (or empty — the
sentinels used during bulk encoding), produce ``S_M`` with
``S_L ≺ S_M ≺ S_R`` lexicographically, touching neither input.

The two cases, verbatim from the paper::

    Case (1)  size(S_L) >= size(S_R):  S_M = S_L ⊕ "1"
    Case (2)  size(S_L) <  size(S_R):  S_M = S_R with its last "1"
                                              changed to "01"

Lemma 3.2 guarantees the result again ends with ``1``, so insertions can
compound indefinitely; Corollary 3.3 (here :func:`assign_middle_pair`)
yields *two* strictly ordered middles, which containment schemes need to
insert a ``start``/``end`` pair at one gap.
"""

from __future__ import annotations

from repro.core import bitstring as _bitstring
from repro.core.bitstring import BitString
from repro.errors import InvalidCodeError, NotOrderedError
from repro.faults import FAULTS
from repro.obs import OBS

__all__ = [
    "assign_middle_binary_string",
    "assign_middle_pair",
    "assign_middle_run",
]

_ONE = BitString.from_str("1")
_ZERO_ONE = BitString.from_str("01")


def _check_endpoint(code: BitString, side: str) -> None:
    if code and not code.ends_with_one():
        raise InvalidCodeError(
            f"{side} code {code.to01()!r} does not end with '1'; "
            f"Example 3.3 of the paper shows insertion between such codes "
            f"can be impossible"
        )


def assign_middle_binary_string(left: BitString, right: BitString) -> BitString:
    """Return ``S_M`` with ``left ≺ S_M ≺ right`` (Algorithm 1).

    ``left`` and ``right`` must end with ``1``; either (or both) may be
    the empty string, meaning "no bound on that side" — exactly how
    Algorithm 2 seeds its sentinels.  An empty ``left`` is treated as
    smaller than everything and an empty ``right`` as larger, matching
    the paper's reading of the size comparison in Section 4.

    Raises:
        InvalidCodeError: if a non-empty endpoint does not end with ``1``.
        NotOrderedError: if both endpoints are non-empty and
            ``left ≺ right`` does not hold.
    """
    if FAULTS.enabled:
        FAULTS.hit("middle.assign")
    _check_endpoint(left, "left")
    _check_endpoint(right, "right")
    if left and right and not left < right:
        raise NotOrderedError(
            f"left code {left.to01()!r} is not lexicographically smaller "
            f"than right code {right.to01()!r}"
        )
    if len(left) >= len(right):
        # Case (1): grow the left code by one trailing "1".
        middle = left + _ONE
    else:
        # Case (2): the right code's final "1" becomes "01".
        middle = right.drop_last() + _ZERO_ONE
    if OBS.enabled:
        OBS.charge("middle.codes_assigned", 1)
        OBS.charge("middle.bits_generated", len(middle))
    return middle


def assign_middle_pair(
    left: BitString, right: BitString
) -> tuple[BitString, BitString]:
    """Corollary 3.3: two codes ``M1 ≺ M2`` strictly between the endpoints.

    Containment labeling needs this to drop a new ``start``/``end`` pair
    into a single gap (Section 5.2.1's example inserts between the codes
    of 4 and 5).
    """
    first = assign_middle_binary_string(left, right)
    second = assign_middle_binary_string(first, right)
    return first, second


def assign_middle_run(
    left: BitString, right: BitString, count: int
) -> list[BitString]:
    """``count`` ordered codes strictly between ``left`` and ``right``.

    The codes are assigned by the same balanced bisection as Algorithm 2
    (middle position first, then recurse), so a bulk insertion of a run
    of siblings costs O(count) and yields codes only O(log count) bits
    longer than the gap's endpoints — instead of the O(count) growth a
    naive left-to-right chain of :func:`assign_middle_binary_string`
    calls would produce.

    Delegates to the packed batch kernel
    (:func:`repro.core.bitstring.encode_run`), which mints all codes on
    raw ``(value, length)`` pairs in one pass while hitting the
    ``middle.assign`` fault site and charging the middle-assignment
    ledger units per code, in the same visit order as the equivalent
    chain of :func:`assign_middle_binary_string` calls.
    """
    return _bitstring.encode_run(count, left, right)
