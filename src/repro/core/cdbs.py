"""CDBS — the paper's Compact Dynamic Binary String encoding (Section 4).

Algorithm 2 encodes the integers ``1..N`` as binary strings that are

* lexicographically ordered (Theorem 4.3),
* all terminated by ``1`` (Lemma 4.2), and
* exactly as compact as plain binary: the multiset of code lengths equals
  that of the variable-length binary numbers ``1..N`` (Example 4.1 /
  Theorem 4.4),

while still letting :func:`repro.core.middle.assign_middle_binary_string`
insert a fresh code between *any* two consecutive codes without touching
the rest.  That combination — no reserved gaps yet insert-anywhere — is
the paper's headline property.

Two storage flavours:

* **V-CDBS** — variable-length codes; each stored code needs a companion
  length field of ``ceil(log2(ceil(log2(N))))`` bits (Example 4.2).
* **F-CDBS** — every code right-padded with ``0``\\ s to the common
  maximum width, no length field, one global width value.

The midpoint arithmetic uses *round-half-up*, ``(lo + hi + 1) // 2``:
the paper's Step 2 computes ``round(0 + (19 - 0)/2) = 10`` and Step 5
``round(10 + (19 - 10)/2) = 15``, which only half-up rounding satisfies
(banker's rounding would give 14).
"""

from __future__ import annotations

from repro.core import bitstring as _bitstring
from repro.core.bitstring import EMPTY, BitString
from repro.core.middle import assign_middle_binary_string
from repro.errors import InvalidCodeError

__all__ = [
    "vcdbs_encode",
    "fcdbs_encode",
    "vcdbs_position",
    "vbinary_encode",
    "fbinary_encode",
    "max_code_bits",
]


def max_code_bits(count: int) -> int:
    """The longest code length produced by encoding ``1..count``.

    Both V-Binary and V-CDBS peak at ``ceil(log2(count + 1))`` bits —
    the length of the binary expansion of ``count``.
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    return count.bit_length()


def vcdbs_encode(count: int) -> list[BitString]:
    """Algorithm 2: the V-CDBS codes of ``1..count``, in order.

    The recursion of the paper's ``SubEncoding`` procedure is unrolled
    into an explicit stack so that pathological ``count`` values cannot
    hit Python's recursion limit; the visit order is immaterial because a
    midpoint's code depends only on the codes at its enclosing gap
    endpoints, which are always assigned before the gap is pushed.

    Bulk encoding runs on the packed batch kernel
    (:func:`repro.core.bitstring.encode_run` with both sentinels empty —
    Algorithm 2's imaginary positions 0 and ``count + 1``), which mints
    every code as raw ``(value, length)`` arithmetic in one pass while
    preserving the per-code fault-site hits and ledger charges of the
    sequential middle-assignment chain.
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    return _bitstring.encode_run(count)


def fcdbs_encode(count: int) -> list[BitString]:
    """The F-CDBS codes of ``1..count``: V-CDBS right-padded with zeros.

    Section 4 of the paper: "when representing our CDBS using fixed
    length, we concatenate 0s *after* the V-CDBS codes".  Right padding
    preserves lexicographical order because every V-CDBS code ends with
    ``1``.
    """
    width = max_code_bits(count)
    return [code.pad_right(width) for code in vcdbs_encode(count)]


def vbinary_encode(count: int) -> list[BitString]:
    """V-Binary: plain variable-length binary numbers (Table 1, column 2)."""
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    return [BitString.from_int_binary(i) for i in range(1, count + 1)]


def fbinary_encode(count: int) -> list[BitString]:
    """F-Binary: binary numbers left-padded with zeros (Table 1, column 4)."""
    width = max_code_bits(count)
    return [code.pad_left(width) for code in vbinary_encode(count)]


def vcdbs_position(code: BitString, count: int) -> int:
    """The 1-based rank of a bulk-encoded V-CDBS code (Section 5.1).

    The paper notes that "based on an inverse processing of Algorithm 2,
    we can get the exact position of each V-CDBS code by calculations
    only".  This replays the bisection: at every step the midpoint's code
    is recomputed and compared with the target, descending left or right,
    so the cost is O(log²(count)) bit work and no table is needed.

    Only codes produced by ``vcdbs_encode(count)`` have a rank; anything
    else raises :class:`InvalidCodeError`.
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    if not code.ends_with_one():
        raise InvalidCodeError(
            f"{code.to01()!r} is not a V-CDBS code (must end with '1')"
        )
    lo, hi = 0, count + 1
    lo_code, hi_code = EMPTY, EMPTY
    while lo + 1 < hi:
        mid = (lo + hi + 1) // 2
        mid_code = assign_middle_binary_string(lo_code, hi_code)
        if code == mid_code:
            return mid
        if code < mid_code:
            hi, hi_code = mid, mid_code
        else:
            lo, lo_code = mid, mid_code
    raise InvalidCodeError(
        f"{code.to01()!r} is not among the V-CDBS codes of 1..{count}"
    )
