"""Dynamic order-statistic sequences for the update hot path.

The update engine needs three queries that a plain Python list answers
only in O(N): *where* in document order a node sits (``list.index``),
*splice* a run of nodes in or out at a position, and *prefix sums* over
per-record byte sizes (the page store's offset map).  The paper takes
these for granted — CDBS makes the *labels* cheap to update, and the
surrounding bookkeeping must not re-introduce a linear term, or measured
"update time" scales with document size for reasons the paper never had.

:class:`OrderStatisticTree` answers all three in O(log N) expected time.
It is an implicit treap (randomised balanced BST ordered by position,
heap-ordered by priority) augmented with two subtree aggregates:

* ``size`` — element counts, giving rank/select (position ↔ item);
* ``wsum`` — an integer *weight* per element, giving prefix sums over
  arbitrary weights (byte offsets when the weights are record sizes).

A Fenwick tree gives the same aggregates over a *fixed* universe, but
both clients here insert and delete in the middle of the sequence —
which shifts every later ordinal, exactly the operation Fenwick trees
cannot absorb — so the order-statistic tree is the Fenwick generalised
to a dynamic universe.  With ``track_identity=True`` the tree also keeps
an ``id(item) -> node`` map so :meth:`position` can walk parent pointers
from the item itself: rank-of-item without any search or hashing of
item *values* (tree nodes are mutable and unhashable by content).

All operations are iterative — no recursion limits to trip on large
documents — and priorities come from a seeded PRNG so sequences are
reproducible run to run.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Iterator

from repro.obs import OBS

__all__ = ["OrderStatisticTree"]


class _TreapNode:
    """One element: its payload, weight, and augmented subtree sums."""

    __slots__ = (
        "item",
        "weight",
        "prio",
        "left",
        "right",
        "parent",
        "size",
        "wsum",
    )

    def __init__(self, item: Any, weight: int, prio: float) -> None:
        self.item = item
        self.weight = weight
        self.prio = prio
        self.left: _TreapNode | None = None
        self.right: _TreapNode | None = None
        self.parent: _TreapNode | None = None
        self.size = 1
        self.wsum = weight


def _size(node: _TreapNode | None) -> int:
    return node.size if node is not None else 0


def _wsum(node: _TreapNode | None) -> int:
    return node.wsum if node is not None else 0


class OrderStatisticTree:
    """A positional sequence with O(log N) rank, select, splice and
    weight-prefix queries.

    Args:
        items: initial elements, in sequence order (bulk-built in O(N)).
        weights: optional per-item integer weights (defaults to 1 each);
            :meth:`prefix_weight` sums them by position.
        track_identity: keep an ``id(item) -> node`` map so
            :meth:`position` / ``in`` work; requires every item to be a
            distinct live object (document nodes are; small interned
            ints are *not*, so weight-only clients leave this off).
        seed: PRNG seed for treap priorities (determinism only).
    """

    def __init__(
        self,
        items: Iterable[Any] = (),
        *,
        weights: Iterable[int] | None = None,
        track_identity: bool = False,
        seed: int = 0x0D0C,
    ) -> None:
        self._rng = random.Random(seed)
        self._track = track_identity
        self._where: dict[int, _TreapNode] = {}
        self._root: _TreapNode | None = None
        self._bulk_build(items, weights)

    # -- construction ------------------------------------------------------

    @staticmethod
    def _paired(
        items: Iterable[Any], weights: Iterable[int]
    ) -> Iterable[tuple[Any, int]]:
        try:
            yield from zip(items, weights, strict=True)
        except ValueError:
            raise ValueError("items and weights differ in length") from None

    def _bulk_build(
        self, items: Iterable[Any], weights: Iterable[int] | None
    ) -> None:
        """Cartesian-tree build from a sequence: O(N) via a right spine."""
        rand = self._rng.random
        spine: list[_TreapNode] = []
        if weights is None:
            pairs: Iterable[tuple[Any, int]] = ((item, 1) for item in items)
        else:
            pairs = self._paired(items, weights)
        for item, weight in pairs:
            node = _TreapNode(item, self._checked_weight(weight), rand())
            last: _TreapNode | None = None
            while spine and spine[-1].prio < node.prio:
                last = spine.pop()
            node.left = last
            if last is not None:
                last.parent = node
            if spine:
                spine[-1].right = node
                node.parent = spine[-1]
            spine.append(node)
            if self._track:
                self._where[id(item)] = node
        self._root = spine[0] if spine else None
        self._refresh_aggregates()

    def _refresh_aggregates(self) -> None:
        """Recompute size/wsum bottom-up over the whole tree (build only)."""
        if self._root is None:
            return
        stack: list[tuple[_TreapNode, bool]] = [(self._root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                node.size = 1 + _size(node.left) + _size(node.right)
                node.wsum = node.weight + _wsum(node.left) + _wsum(node.right)
                continue
            stack.append((node, True))
            if node.left is not None:
                stack.append((node.left, False))
            if node.right is not None:
                stack.append((node.right, False))

    @staticmethod
    def _checked_weight(weight: int) -> int:
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        return weight

    # -- size and membership -----------------------------------------------

    def __len__(self) -> int:
        return _size(self._root)

    def __contains__(self, item: Any) -> bool:
        if not self._track:
            raise TypeError(
                "membership requires track_identity=True at construction"
            )
        return id(item) in self._where

    def total_weight(self) -> int:
        """Sum of every element's weight (total bytes for a size map)."""
        return _wsum(self._root)

    # -- rank / select -----------------------------------------------------

    def position(self, item: Any) -> int:
        """Rank of ``item`` in the sequence — O(log N), no scanning.

        Walks parent pointers from the item's tree node, accumulating
        the sizes of subtrees that precede it.  Raises :class:`ValueError`
        (matching ``list.index``) when the item is not in the sequence.
        """
        if not self._track:
            raise TypeError(
                "position() requires track_identity=True at construction"
            )
        node = self._where.get(id(item))
        if node is None:
            raise ValueError("item is not in the sequence")
        rank = _size(node.left)
        while node.parent is not None:
            parent = node.parent
            if node is parent.right:
                rank += _size(parent.left) + 1
            node = parent
        return rank

    def index(self, item: Any) -> int:
        """Alias of :meth:`position` (list-compatible spelling)."""
        return self.position(item)

    def _node_at(self, position: int) -> _TreapNode:
        node = self._root
        remaining = position
        while node is not None:
            left_size = _size(node.left)
            if remaining < left_size:
                node = node.left
            elif remaining == left_size:
                return node
            else:
                remaining -= left_size + 1
                node = node.right
        raise IndexError(f"position {position} out of range 0..{len(self) - 1}")

    def __getitem__(self, key: int | slice) -> Any:
        if isinstance(key, slice):
            start, stop, step = key.indices(len(self))
            if step == 1:
                span = max(0, stop - start)
                out: list[Any] = []
                for item in self.iter_from(start):
                    if len(out) == span:
                        break
                    out.append(item)
                return out
            return [self[i] for i in range(start, stop, step)]
        position = key
        if position < 0:
            position += len(self)
        if not 0 <= position < len(self):
            raise IndexError(
                f"position {key} out of range for {len(self)} items"
            )
        return self._node_at(position).item

    # -- iteration ---------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        stack: list[_TreapNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.item
            node = node.right

    def iter_from(self, position: int) -> Iterator[Any]:
        """Iterate items starting at ``position`` — O(log N) to locate,
        O(1) amortised per step (parent-pointer successor walk)."""
        total = len(self)
        if not 0 <= position <= total:
            raise IndexError(f"position {position} out of range 0..{total}")
        if position == total:
            return
        node: _TreapNode | None = self._node_at(position)
        while node is not None:
            yield node.item
            if node.right is not None:
                node = node.right
                while node.left is not None:
                    node = node.left
            else:
                child = node
                node = node.parent
                while node is not None and child is node.right:
                    child = node
                    node = node.parent

    # -- mutation ----------------------------------------------------------

    def insert_run(
        self,
        position: int,
        items: Iterable[Any],
        weights: Iterable[int] | None = None,
    ) -> None:
        """Insert ``items`` so the first lands at ``position``.

        O(K log N) for a K-item run: each element is threaded in with a
        positional descent plus rotations that restore the heap order.
        """
        total = len(self)
        if not 0 <= position <= total:
            raise IndexError(f"position {position} out of range 0..{total}")
        if weights is None:
            pairs: Iterable[tuple[Any, int]] = ((item, 1) for item in items)
        else:
            pairs = self._paired(items, weights)
        offset = position
        for item, weight in pairs:
            self._insert_one(offset, item, self._checked_weight(weight))
            offset += 1

    def _insert_one(self, position: int, item: Any, weight: int) -> None:
        node = _TreapNode(item, weight, self._rng.random())
        if self._track:
            if id(item) in self._where:
                raise ValueError("item is already in the sequence")
            self._where[id(item)] = node
        if self._root is None:
            self._root = node
            return
        current = self._root
        remaining = position
        while True:
            current.size += 1
            current.wsum += weight
            left_size = _size(current.left)
            if remaining <= left_size:
                if current.left is None:
                    current.left = node
                    node.parent = current
                    break
                current = current.left
            else:
                remaining -= left_size + 1
                if current.right is None:
                    current.right = node
                    node.parent = current
                    break
                current = current.right
        rotations = 0
        while node.parent is not None and node.prio > node.parent.prio:
            self._rotate_up(node)
            rotations += 1
        if OBS.enabled and rotations:
            OBS.charge("orderindex.rotations", rotations)

    def delete_run(self, position: int, count: int) -> list[Any]:
        """Remove ``count`` items starting at ``position``; returns them.

        O(K log N) for a K-item run.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        total = len(self)
        if not 0 <= position <= total or position + count > total:
            raise IndexError(
                f"range [{position}, {position + count}) exceeds {total} items"
            )
        removed: list[Any] = []
        for _ in range(count):
            removed.append(self._delete_at(position))
        return removed

    def _delete_at(self, position: int) -> Any:
        node = self._node_at(position)
        rotations = 0
        while node.left is not None or node.right is not None:
            left, right = node.left, node.right
            if right is None or (left is not None and left.prio >= right.prio):
                self._rotate_up(left)
            else:
                self._rotate_up(right)
            rotations += 1
        if OBS.enabled and rotations:
            OBS.charge("orderindex.rotations", rotations)
        parent = node.parent
        if parent is None:
            self._root = None
        else:
            if parent.left is node:
                parent.left = None
            else:
                parent.right = None
            ancestor: _TreapNode | None = parent
            while ancestor is not None:
                ancestor.size -= 1
                ancestor.wsum -= node.weight
                ancestor = ancestor.parent
        node.parent = None
        if self._track:
            del self._where[id(node.item)]
        return node.item

    def _rotate_up(self, node: _TreapNode) -> None:
        """Rotate ``node`` above its parent, preserving in-order sequence
        and recomputing the two disturbed aggregates."""
        parent = node.parent
        if parent is None:
            raise ValueError("cannot rotate the root")
        grand = parent.parent
        if parent.left is node:
            parent.left = node.right
            if node.right is not None:
                node.right.parent = parent
            node.right = parent
        else:
            parent.right = node.left
            if node.left is not None:
                node.left.parent = parent
            node.left = parent
        parent.parent = node
        node.parent = grand
        if grand is None:
            self._root = node
        elif grand.left is parent:
            grand.left = node
        else:
            grand.right = node
        parent.size = 1 + _size(parent.left) + _size(parent.right)
        parent.wsum = (
            parent.weight + _wsum(parent.left) + _wsum(parent.right)
        )
        node.size = 1 + _size(node.left) + _size(node.right)
        node.wsum = node.weight + _wsum(node.left) + _wsum(node.right)

    # -- weight prefix sums ------------------------------------------------

    def prefix_weight(self, position: int) -> int:
        """Sum of the weights of the first ``position`` items — O(log N).

        With record sizes as weights this is the byte offset of record
        ``position``; ``prefix_weight(len(self))`` is the total size.
        """
        total = len(self)
        if not 0 <= position <= total:
            raise IndexError(f"position {position} out of range 0..{total}")
        node = self._root
        remaining = position
        acc = 0
        while node is not None and remaining > 0:
            left_size = _size(node.left)
            if remaining <= left_size:
                node = node.left
            else:
                acc += _wsum(node.left) + node.weight
                remaining -= left_size + 1
                node = node.right
        return acc

    def __repr__(self) -> str:
        return (
            f"<OrderStatisticTree {len(self)} items, "
            f"weight {self.total_weight()}>"
        )
