"""The reference bit-string codec: per-bit, obviously correct, slow.

This module is the *differential oracle* for :mod:`repro.core.bitstring`.
Where the packed codec turns Definition 3.1's lexicographical order into
one aligned machine-integer compare, :class:`BitStringRef` stores its
bits as a tuple of ``0``/``1`` ints and implements every operation as
the literal per-bit transcription of the paper's definitions:

* comparison walks bit by bit from the left and falls back to "the
  shorter (a proper prefix) is smaller" (Definition 3.1, verbatim);
* concatenation is tuple concatenation;
* slicing is tuple slicing;
* ``encode_run`` is Algorithm 2's bisection calling the two-case middle
  rule one code at a time.

Nothing here is shared with the packed implementation — no int payloads,
no shift/mask arithmetic — so agreement between the two codecs on random
programs (``tests/core/test_codec_differential.py``, the
``codec-differential`` CI lane) is evidence of correctness rather than
of both calling the same kernel.  The reference is also what the update
benchmark's ``refcodec`` mode swaps in process-wide
(``REPRO_BITSTRING_IMPL=ref``) to measure what the packed rewrite buys.

The public surface mirrors ``repro.core.bitstring`` exactly, including
the PR-7 contract that ordering against ``str`` raises ``TypeError``
while concatenation coerces, and the hashing rule that leading zeros are
significant (``0`` and ``00`` are distinct labels with distinct hashes).
Hashes and equality agree *across* the two implementations: both hash
``(value, length)`` where ``value`` is the bits read as a big-endian
unsigned integer.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["BitStringRef", "EMPTY_REF", "encode_run", "compare_many"]


class BitStringRef:
    """Per-bit reference implementation of the ``BitString`` contract."""

    __slots__ = ("_bits",)

    #: Cross-implementation marker: the packed codec's ``__eq__`` accepts
    #: any object exposing ``bitstring_key`` (see satellite regression
    #: tests — packed and reference forms of one bit pattern must agree
    #: under ``==`` and ``hash``).
    is_bitstring_like = True

    def __init__(self, value: int = 0, length: int = 0) -> None:
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        if value.bit_length() > length:
            raise ValueError(f"value {value:#x} does not fit in {length} bits")
        bits = []
        for shift in range(length - 1, -1, -1):
            bits.append((value >> shift) & 1)
        self._bits = tuple(bits)

    @classmethod
    def _from_bits_tuple(cls, bits: tuple[int, ...]) -> "BitStringRef":
        fresh = object.__new__(cls)
        fresh._bits = bits
        return fresh

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_str(cls, bits: str) -> "BitStringRef":
        if bits and set(bits) - {"0", "1"}:
            raise ValueError(f"not a binary string: {bits!r}")
        return cls._from_bits_tuple(tuple(1 if c == "1" else 0 for c in bits))

    @classmethod
    def from_bits(cls, bits: Iterator[int]) -> "BitStringRef":
        collected = []
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"not a bit: {bit!r}")
            collected.append(bit)
        return cls._from_bits_tuple(tuple(collected))

    @classmethod
    def from_int_binary(cls, number: int) -> "BitStringRef":
        if number < 1:
            raise ValueError(f"V-Binary encodes positive integers, got {number}")
        return cls(number, number.bit_length())

    # -- basic protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._bits)

    def __bool__(self) -> bool:
        return len(self._bits) > 0

    def __iter__(self) -> Iterator[int]:
        return iter(self._bits)

    def __getitem__(self, index: int | slice) -> "int | BitStringRef":
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self._bits))
            if step != 1:
                raise ValueError("BitString slices must be contiguous")
            return BitStringRef._from_bits_tuple(self._bits[start:stop])
        return self._bits[index]

    @property
    def bitstring_key(self) -> tuple[int, int]:
        """``(value, length)`` — the canonical identity of a bit pattern.

        Leading zeros are significant: ``0`` has key ``(0, 1)``, ``00``
        has ``(0, 2)``.  Both codecs hash and compare this key, which is
        what keeps a packed and a reference rendering of one pattern
        equal and co-hashing.
        """
        value = 0
        for bit in self._bits:
            value = (value << 1) | bit
        return (value, len(self._bits))

    @property
    def value(self) -> int:
        return self.bitstring_key[0]

    def __hash__(self) -> int:
        return hash(self.bitstring_key)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitStringRef):
            return self._bits == other._bits
        if getattr(other, "is_bitstring_like", False):
            return self.bitstring_key == other.bitstring_key
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def _compare(self, other: "BitStringRef") -> int:
        """Definition 3.1, bit by bit: -1, 0 or +1."""
        if isinstance(other, str):
            raise TypeError(
                f"ordering not supported between BitString and str: wrap "
                f"the text with BitString.from_str({other!r:.32}) — only "
                f"concatenation (+) accepts raw '0'/'1' text"
            )
        if not getattr(other, "is_bitstring_like", False) and not isinstance(
            other, BitStringRef
        ):
            return NotImplemented  # type: ignore[return-value]
        mine = self._bits
        theirs = tuple(iter(other))
        for a, b in zip(mine, theirs):
            if a < b:
                return -1
            if a > b:
                return 1
        if len(mine) == len(theirs):
            return 0
        # One ran out while matching the other: the prefix is smaller.
        return -1 if len(mine) < len(theirs) else 1

    def __lt__(self, other: "BitStringRef") -> bool:
        decided = self._compare(other)
        return NotImplemented if decided is NotImplemented else decided < 0

    def __le__(self, other: "BitStringRef") -> bool:
        decided = self._compare(other)
        return NotImplemented if decided is NotImplemented else decided <= 0

    def __gt__(self, other: "BitStringRef") -> bool:
        decided = self._compare(other)
        return NotImplemented if decided is NotImplemented else decided > 0

    def __ge__(self, other: "BitStringRef") -> bool:
        decided = self._compare(other)
        return NotImplemented if decided is NotImplemented else decided >= 0

    def __add__(self, other: "BitStringRef | str") -> "BitStringRef":
        if isinstance(other, str):
            other = BitStringRef.from_str(other)
        return BitStringRef._from_bits_tuple(self._bits + tuple(iter(other)))

    def __repr__(self) -> str:
        return f"BitString({self.to01()!r})"

    def __str__(self) -> str:
        return self.to01()

    # -- inspection ------------------------------------------------------

    def to01(self) -> str:
        return "".join("1" if bit else "0" for bit in self._bits)

    def ends_with_one(self) -> bool:
        return len(self._bits) > 0 and self._bits[-1] == 1

    def is_prefix_of(self, other: "BitStringRef") -> bool:
        theirs = tuple(iter(other))
        if len(self._bits) > len(theirs):
            return False
        return theirs[: len(self._bits)] == self._bits

    def common_prefix_length(self, other: "BitStringRef") -> int:
        shared = 0
        for a, b in zip(self._bits, tuple(iter(other))):
            if a != b:
                break
            shared += 1
        return shared

    # -- derivation ------------------------------------------------------

    def append_bit(self, bit: int) -> "BitStringRef":
        if bit not in (0, 1):
            raise ValueError(f"not a bit: {bit!r}")
        return BitStringRef._from_bits_tuple(self._bits + (bit,))

    def drop_last(self) -> "BitStringRef":
        if not self._bits:
            raise ValueError("cannot drop a bit from the empty string")
        return BitStringRef._from_bits_tuple(self._bits[:-1])

    def pad_right(self, width: int) -> "BitStringRef":
        if width < len(self._bits):
            raise ValueError(
                f"cannot pad {len(self._bits)}-bit string down to {width} bits"
            )
        return BitStringRef._from_bits_tuple(
            self._bits + (0,) * (width - len(self._bits))
        )

    def pad_left(self, width: int) -> "BitStringRef":
        if width < len(self._bits):
            raise ValueError(
                f"cannot pad {len(self._bits)}-bit string down to {width} bits"
            )
        return BitStringRef._from_bits_tuple(
            (0,) * (width - len(self._bits)) + self._bits
        )

    def strip_trailing_zeros(self) -> "BitStringRef":
        bits = self._bits
        end = len(bits)
        while end > 0 and bits[end - 1] == 0:
            end -= 1
        return BitStringRef._from_bits_tuple(bits[:end])

    # -- storage ---------------------------------------------------------

    def storage_bits(self) -> int:
        return len(self._bits)

    def to_bytes(self) -> bytes:
        if not self._bits:
            return b""
        padded = self._bits + (0,) * ((-len(self._bits)) % 8)
        out = bytearray()
        for start in range(0, len(padded), 8):
            byte = 0
            for bit in padded[start : start + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


EMPTY_REF = BitStringRef(0, 0)
"""The empty reference string — Algorithm 2's ``S_L``/``S_R`` sentinel."""


def _middle(left: BitStringRef, right: BitStringRef) -> BitStringRef:
    """Algorithm 1's two cases, on per-bit tuples."""
    if len(left) >= len(right):
        return left.append_bit(1)
    return right.drop_last().append_bit(0).append_bit(1)


def encode_run(
    count: int,
    left: BitStringRef = EMPTY_REF,
    right: BitStringRef = EMPTY_REF,
) -> list[BitStringRef]:
    """Algorithm 2's bisection, one per-bit middle call per code.

    Mirrors :func:`repro.core.bitstring.encode_run` (same visit order,
    same sentinel convention) so differential programs can compare the
    two code lists element-wise.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    codes: list[BitStringRef] = [EMPTY_REF] * (count + 2)
    codes[0] = left
    codes[count + 1] = right
    stack: list[tuple[int, int]] = [(0, count + 1)]
    while stack:
        lo, hi = stack.pop()
        if lo + 1 >= hi:
            continue
        mid = (lo + hi + 1) // 2
        codes[mid] = _middle(codes[lo], codes[hi])
        stack.append((lo, mid))
        stack.append((mid, hi))
    return codes[1 : count + 1]


def compare_many(
    keys: "list[BitStringRef]", probe: BitStringRef
) -> list[int]:
    """Per-key three-way compare against ``probe`` (-1, 0 or +1)."""
    return [key._compare(probe) for key in keys]
